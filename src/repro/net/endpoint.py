"""Sender/receiver endpoints: the adaptation loop across two processes.

These wire a :class:`~repro.core.partitioned.PartitionedMethod` to the
TCP layer so the paper's whole feedback loop runs between *real OS
processes*:

* :class:`NetSenderEndpoint` — owns the modulator and a
  :class:`~repro.core.runtime.feedback.RemoteProfilingProxy`; every
  published event is modulated, the continuation ships as a CONT frame,
  and buffered sender-side observations flush as FEEDBACK frames every
  ``feedback_period`` messages (monitoring traffic pays real bytes, as
  in the paper).  Inbound PLAN frames flip the modulator's split flags
  — adaptation actuation over the wire.
* :class:`NetReceiverEndpoint` — owns the demodulator, the
  authoritative Profiling Unit and the (receiver-located)
  Reconfiguration Unit behind a :class:`~repro.net.tcp.FrameServer`.
  Every demodulated message and every ingested feedback batch gives the
  trigger a chance to fire; a recomputed plan that differs from the one
  the sender is running ships back as a PLAN frame on the same
  connection.

Both sides build the *same* partitioned method deterministically (same
handler source → same PSE ids and edges), which is what makes shipping
plans as bare edge sets sound — the paper's assumption that modulator
and demodulator share the program text.

Endpoint state is keyed by subscription, **not** by connection: a
dropped and re-established connection (see ``drop_after``) resumes with
the profiling history, current plan and sequence bookkeeping intact —
no plan state is lost across reconnects.
"""

from __future__ import annotations

import asyncio
import threading
import time
import uuid
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.partitioned import PartitionedMethod
from repro.errors import TransportError
from repro.core.plan import PartitioningPlan, sender_heavy_plan
from repro.core.runtime.feedback import RemoteProfilingProxy, ingest
from repro.core.runtime.triggers import FeedbackTrigger, RateTrigger
from repro.jecho.events import (
    ContinuationEnvelope,
    EventEnvelope,
    FeedbackEnvelope,
    PlanEnvelope,
)
from repro.net.framing import (
    FEATURE_ELECTION,
    FEATURE_TELEMETRY,
    Bye,
    Election,
    NetEnvelopeCodec,
    Telemetry,
)
from repro.net.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerConfig,
    CircuitBreaker,
    ElectionConfig,
    ElectionMember,
)
from repro.net.tcp import FrameServer, ServerConnection, TcpPeer, TcpTransport
from repro.obs.health import WEDGED, HealthConfig, HealthMonitor
from repro.obs.trace import ContinuationShipped

__all__ = ["NetSenderEndpoint", "NetReceiverEndpoint"]

#: wire size charged for a plan update (a handful of edge flags)
_PLAN_UPDATE_BYTES = 64.0

#: relative change below which a recalibrated rate is considered noise
RATE_HYSTERESIS = 0.25


def _adopt_rate(current: float, fresh: Optional[float]) -> float:
    """Adopt a recalibrated seconds-per-cycle only on a material change.

    Successive timed calibrations of an unchanged host land within
    timer noise of each other, but adopting every measurement rescales
    all subsequently profiled sender costs — after each plan transition
    the cost model shifts a little, which can flap a knife-edge min-cut
    on every recompute.  A fresh rate within :data:`RATE_HYSTERESIS` of
    the current one is "same host, same speed" and is discarded; a
    material change (the actual staleness the post-transition refresh
    guards against) is adopted as measured.
    """
    if fresh is None or fresh <= 0.0:
        return current
    if abs(fresh - current) <= RATE_HYSTERESIS * current:
        return current
    return fresh


class NetSenderEndpoint:
    """Modulator side of a live subscription.

    ``publish`` runs on the caller's thread; inbound PLAN frames arrive
    on the transport's loop thread — one lock serializes the two around
    the modulator (``apply_plan`` flips the flags the interpreter
    consults mid-run).
    """

    def __init__(
        self,
        partitioned: PartitionedMethod,
        transport: TcpTransport,
        peer: TcpPeer,
        *,
        subscription_id: int = 1,
        plan: Optional[PartitioningPlan] = None,
        sample_period: int = 1,
        feedback_period: int = 8,
        rate_override: Optional[float] = None,
        recalibrate: Optional[Callable[[], float]] = None,
        obs=None,
        health_config: Optional[HealthConfig] = None,
        breaker_config: Optional[BreakerConfig] = None,
        resilience: bool = True,
    ) -> None:
        """``rate_override`` records a *calibrated* seconds-per-cycle
        instead of the raw per-message wall clock.  Raw measurements are
        fixed-overhead dominated when the modulator's share of work is
        tiny (an early split leaves it a handful of cycles), which
        inflates the apparent sender rate by orders of magnitude; a rate
        calibrated against the full handler (see
        :func:`repro.net.live._calibrate`) measures the host, not the
        per-message overhead.

        A calibration is only valid under the conditions it was taken:
        when a plan transition changes the modulator's share of the
        handler, feedback priced with the old number would misstate the
        new split's sender cost.  Every *applied* plan therefore marks
        the override stale, and the next publish refreshes it — via
        ``recalibrate`` (a callable returning a fresh seconds-per-cycle,
        e.g. ``lambda: _calibrate(...)``) when provided, otherwise by
        timing one full-handler run on the incoming event (same
        amortize-the-overhead rationale as the startup calibration)."""
        if feedback_period < 1:
            raise ValueError("feedback_period must be >= 1")
        self.partitioned = partitioned
        self.transport = transport
        self.peer = peer
        self.subscription_id = subscription_id
        self.feedback_period = feedback_period
        self.rate_override = rate_override
        self.recalibrate = recalibrate
        self.recalibrations = 0
        #: set on plan apply; the next publish re-grounds the calibration
        self._rate_stale = False
        self.obs = obs
        # Publish-path phase timers, same metric family as the broker's
        # (and as TcpTransport._deliver's encode/enqueue phases).
        if obs is not None:
            self._h_phase_modulate = obs.metrics.histogram(
                'net.publish.phase_seconds{phase="modulate"}'
            )
            self._h_phase_ship = obs.metrics.histogram(
                'net.publish.phase_seconds{phase="ship"}'
            )
        else:
            self._h_phase_modulate = None
            self._h_phase_ship = None
        self.proxy = RemoteProfilingProxy(
            partitioned.cut, sample_period=sample_period, obs=obs
        )
        # Rates are measured here (real wall clock per process call), so
        # the modulator's own cycle-based rate recording stays off.
        self.modulator = partitioned.make_modulator(
            plan=plan,
            profiling=self.proxy,
            record_rates=False,
            obs=obs,
        )
        self.lock = threading.Lock()
        self.published = 0
        self.shipped = 0
        self.completed_locally = 0
        self.feedback_flushes = 0
        self.plan_updates_applied = 0
        self.plan_duplicates_ignored = 0
        #: highest plan version applied; versioned frames at or below
        #: this are duplicates and must not re-run the apply path
        self.plan_version_applied = 0
        self.plans_seen: List[str] = []
        self.exposer = None
        #: per-peer health machine fed from transport state on every
        #: publish and from inbound TELEMETRY frames; no thread of its
        #: own — a bare endpoint behaves exactly as before.
        self.health = HealthMonitor(obs=obs, config=health_config)
        self.peer_health = self.health.peer(peer.name)
        self.telemetry_seen = 0
        self.last_telemetry: Optional[dict] = None
        self._drift_reported = 0
        self._last_rtt_fed: Optional[float] = None
        #: circuit breaker over the single peer: wedged health or send
        #: failures trip it, and while it is not closed the endpoint
        #: *retracts the split* — the modulator runs the sender-heavy
        #: plan, continuations complete in-process (via a lazily built
        #: local demodulator for the one already in hand), and inbound
        #: PLAN frames are deferred until the breaker re-closes.
        self.resilience = resilience
        self.breaker: Optional[CircuitBreaker] = None
        self._retraction_plan = sender_heavy_plan(partitioned.cut)
        self._local_demod = None
        self.absorbed = 0
        self.retractions = 0
        self.resplits = 0
        self.retracted = False
        self.saved_plan: Optional[PartitioningPlan] = None
        self.saved_plan_version = 0
        self.pending_plan: Optional[PlanEnvelope] = None
        self.plans_deferred = 0
        if resilience:
            self.breaker = CircuitBreaker(
                peer.name,
                breaker_config,
                on_transition=self._on_breaker_transition,
            )
            self.health.add_listener(self._on_health_transition)
        transport.inbound_handler = self._on_inbound

    def _tracer(self):
        return self.obs.tracing if self.obs is not None else None

    def expose_metrics(self, host: str = "127.0.0.1", port: int = 0):
        """Serve this process's observability over HTTP (OpenMetrics).

        Returns the running :class:`~repro.obs.exposition.MetricsExposer`
        (``.port`` reports the bound port when 0 was requested); closed
        by :meth:`close_exposer` or process exit.
        """
        if self.obs is None:
            raise ValueError("expose_metrics requires an attached obs")
        from repro.obs.exposition import start_http_exposer

        self.exposer = start_http_exposer(
            self.obs.to_dict,
            host=host,
            port=port,
            health_source=self.health.to_dict,
        )
        return self.exposer

    def close_exposer(self) -> None:
        if self.exposer is not None:
            self.exposer.close()
            self.exposer = None

    def publish(self, event: object) -> None:
        """Modulate one event and ship the continuation (if any)."""
        with self.lock:
            if self._rate_stale:
                self._rate_stale = False
                if self.rate_override is not None:
                    fresh = (
                        self.recalibrate()
                        if self.recalibrate is not None
                        else self._recalibrate_against(event)
                    )
                    self.rate_override = _adopt_rate(
                        self.rate_override, fresh
                    )
                    self.recalibrations += 1
            started = time.perf_counter()
            result = self.modulator.process(event)
            elapsed = time.perf_counter() - started
            if self._h_phase_modulate is not None:
                self._h_phase_modulate.observe(elapsed)
            if result.cycles > 0:
                seconds = (
                    result.cycles * self.rate_override
                    if self.rate_override is not None
                    else elapsed
                )
                self.proxy.record_sender_rate(seconds, result.cycles)
            self.published += 1
            message = result.message
            br = self.breaker
            if message is None:
                self.completed_locally += 1
            elif br is not None and not br.is_closed and not br.allow():
                # Breaker open (or half-open with the probe budget
                # spent): the continuation completes in-process instead
                # of shipping toward a peer known to be in trouble.
                self._absorb(message)
            else:
                ship_started = (
                    time.perf_counter()
                    if self._h_phase_ship is not None
                    else None
                )
                size = float(self.partitioned.codec.size(message))
                envelope = ContinuationEnvelope(
                    continuation=message,
                    subscription_id=self.subscription_id,
                )
                if self.obs is not None:
                    self.obs.trace.record(
                        ContinuationShipped(
                            pse_id=str(message.pse_id), bytes=size
                        )
                    )
                    tracer = self.obs.tracing
                    if tracer is not None:
                        tracer.observe_pse(str(message.pse_id), size=size)
                try:
                    self.transport.send(self.peer, envelope, size)
                except TransportError as exc:
                    # The send path failing is a breaker signal *and*
                    # must not lose the message: absorb it locally.
                    if br is not None:
                        br.record_failure(f"send failed: {exc}")
                    self._absorb(message)
                else:
                    self.shipped += 1
                    if ship_started is not None:
                        self._h_phase_ship.observe(
                            time.perf_counter() - ship_started
                        )
            if (
                self.published % self.feedback_period == 0
                and self.proxy.pending > 0
            ):
                self._flush_feedback()
            self._feed_peer_health()
            if br is not None:
                self._resilience_tick()

    def _feed_peer_health(self) -> None:
        """Refresh the peer's health signals from transport state (lock held)."""
        peer = self.peer
        ph = self.peer_health
        ph.note_connected(peer.connected)
        if peer.last_heard is not None:
            ph.note_signal(peer.last_heard)
        rtt = peer.last_rtt
        if rtt is not None and rtt != self._last_rtt_fed:
            self._last_rtt_fed = rtt
            ph.note_rtt(rtt)
        ph.note_sheds(peer.dropped_frames)
        ph.evaluate()

    # -- resilience (breaker + split retraction; all lock held) ----------------

    def _absorb(self, message) -> None:
        """Complete a continuation in-process instead of shipping it.

        The local demodulator is this process's copy of the receiver
        tail — both sides build the same partitioned method from the
        same program text, so resuming here is semantically identical
        to resuming across the wire, minus the bytes.  Counted into
        ``completed_locally`` so the conservation identity
        ``shipped + completed_locally == published`` holds regardless
        of breaker state.
        """
        if self._local_demod is None:
            self._local_demod = self.partitioned.make_demodulator(
                record_rates=False
            )
        self._local_demod.process(message)
        self.absorbed += 1
        self.completed_locally += 1

    def _on_health_transition(self, ph, record: dict) -> None:
        """HealthMonitor listener: the peer going wedged trips the breaker."""
        if self.breaker is None or ph is not self.peer_health:
            return
        if record["to"] == WEDGED:
            self.breaker.trip(f"health wedged: {record['reason']}")

    def _on_breaker_transition(
        self, breaker: CircuitBreaker, record: dict
    ) -> None:
        """Breaker edges actuate the split (fires under ``self.lock``)."""
        from repro.obs.flight import get_global_recorder

        flight = get_global_recorder()
        if flight is not None:
            flight.record(
                "breaker.transition",
                peer=self.peer.name,
                frm=record["from"],
                to=record["to"],
                reason=record["reason"],
            )
        if record["to"] == BREAKER_OPEN:
            self._retract()
        elif record["to"] == BREAKER_CLOSED:
            self._restore_split()

    def _retract(self) -> None:
        """Swap the modulator to the sender-heavy plan (lock held).

        Unlike the broker there is no receiver-side queue to drain — the
        modulator *is* the only producer, and the caller already holds
        the lock that serializes it, so the swap is immediate: every
        message from the next ``process`` on completes locally.
        """
        if self.retracted:
            return
        plan = self.modulator.plan_runtime.current_plan
        self.saved_plan = plan
        self.saved_plan_version = self.plan_version_applied
        self.modulator.apply_plan(self._retraction_plan)
        self.retracted = True
        self.retractions += 1

    def _restore_split(self) -> None:
        """Breaker closed: re-apply the best plan known (lock held).

        A PLAN frame deferred during retraction supersedes the saved
        plan when its version is fresher — the receiver recomputed
        while we were retracted, and its view wins, exactly as it would
        have had the breaker never opened.
        """
        if not self.retracted:
            return
        self.retracted = False
        pending = self.pending_plan
        self.pending_plan = None
        if (
            pending is not None
            and pending.version > self.saved_plan_version
        ):
            self.modulator.apply_plan(pending.plan)
            self.plan_version_applied = pending.version
            self.plan_updates_applied += 1
        elif self.saved_plan is not None:
            self.modulator.apply_plan(self.saved_plan)
        self.saved_plan = None
        self.resplits += 1
        self._refresh_rate_override()

    def _resilience_tick(self) -> None:
        """Feed the breaker's probe verdicts from transport state (lock held)."""
        br = self.breaker
        now = time.monotonic()
        if br.state == BREAKER_OPEN:
            # Past the backoff the next allow() flips to half-open; the
            # publish path consults allow() anyway, so nothing to do.
            return
        if br.state == BREAKER_HALF_OPEN:
            peer = self.peer
            if not peer.connected or self.peer_health.state == WEDGED:
                br.record_failure("probe: peer unhealthy")
                return
            heard = peer.last_heard
            if (
                heard is not None
                and now - heard < self.health.config.stale_degraded
            ):
                br.record_success()

    def resilience_dump(self) -> dict:
        """Breaker + retraction state for dashboards and dumps."""
        return {
            "breaker": (
                self.breaker.to_dict() if self.breaker is not None else None
            ),
            "absorbed": self.absorbed,
            "retracted": self.retracted,
            "retractions": self.retractions,
            "resplits": self.resplits,
            "plans_deferred": self.plans_deferred,
        }

    def _flush_feedback(self) -> None:
        """Ship buffered observations as a FEEDBACK frame (lock held)."""
        payload, size = self.proxy.flush()
        envelope = FeedbackEnvelope(
            subscription_id=self.subscription_id,
            demod_stats=payload,
        )
        tracer = self._tracer()
        if tracer is not None:
            trace_id = tracer.start_trace(force=True)
            flush_span = tracer.record(
                "feedback.flush",
                trace_id=trace_id,
                start=tracer.clock(),
                end=tracer.clock(),
                attrs={"records": len(payload), "bytes": size},
            )
            envelope.trace = (trace_id, flush_span.span_id)
        self.transport.send(self.peer, envelope, size)
        self.feedback_flushes += 1

    def finish(self) -> None:
        """Flush the tail of the profiling buffer and say goodbye."""
        with self.lock:
            if self.proxy.pending > 0:
                self._flush_feedback()
            self.transport.send(self.peer, Bye(sent=self.shipped), 8.0)

    # -- control plane (runs on the transport's loop thread) -------------------

    def _on_inbound(self, envelope: object, peer: TcpPeer) -> None:
        if isinstance(envelope, Telemetry):
            with self.lock:
                self._ingest_telemetry(envelope)
            return
        if not isinstance(envelope, PlanEnvelope):
            return
        tracer = self._tracer()
        with self.lock:
            if (
                envelope.version
                and envelope.version <= self.plan_version_applied
            ):
                # Idempotency: a duplicated or retransmitted PLAN frame
                # (at-least-once head-frame delivery across a reconnect)
                # must not re-run the apply path.
                self.plan_duplicates_ignored += 1
                return
            if self.retracted:
                # Split is retracted while the breaker is open: park the
                # plan (newest version wins) and apply it on re-split —
                # actuating now would ship toward a peer in trouble.
                if (
                    self.pending_plan is None
                    or envelope.version > self.pending_plan.version
                ):
                    self.pending_plan = envelope
                self.plans_deferred += 1
                return
            self.modulator.apply_plan(envelope.plan)
            if envelope.version:
                self.plan_version_applied = envelope.version
            self.plan_updates_applied += 1
            self.plans_seen.append(
                ",".join(
                    str(e) for e in sorted(envelope.plan.active)
                )
            )
            self._refresh_rate_override()
        if tracer is not None and envelope.trace is not None:
            now = tracer.clock()
            tracer.record(
                "plan.apply",
                trace_id=envelope.trace[0],
                parent_id=envelope.trace[1],
                start=now,
                end=now,
                attrs={"plan": envelope.plan.name},
            )

    def _ingest_telemetry(self, envelope: Telemetry) -> None:
        """Fold a pushed telemetry report into the peer's health (lock held)."""
        self.telemetry_seen += 1
        self.last_telemetry = envelope.payload
        ph = self.peer_health
        ph.note_telemetry()
        payload = envelope.payload
        counters = payload.get("counters") or {}
        dupes = counters.get("duplicates_skipped")
        if isinstance(dupes, (int, float)):
            ph.note_duplicates(int(dupes))
        drift = payload.get("drift_events")
        if isinstance(drift, (int, float)) and drift > self._drift_reported:
            ph.note_drift(int(drift) - self._drift_reported)
            self._drift_reported = int(drift)
        ph.evaluate()

    def _refresh_rate_override(self) -> None:
        """Mark the calibrated rate stale after a plan transition (lock held).

        The old calibration was taken under the old split; pricing the
        new split's cycles with it misreports the sender's rate until
        the EWMA happens to wash it out.  The actual refresh happens
        lazily on the next :meth:`publish` — recalibration needs a
        representative event to run the handler on, and the publish
        path is where one arrives.
        """
        if self.rate_override is None:
            return
        self._rate_stale = True

    def _recalibrate_against(self, event: object, repeats: int = 5) -> float:
        """Timed full-handler runs → fresh seconds-per-cycle (lock held).

        Mirrors the startup calibration (:func:`repro.net.live._calibrate`)
        on the event in hand: the full handler runs enough cycles to
        amortize the fixed per-call overhead that dominates raw
        per-message timings.  The reported rate is the *minimum* over
        the repeats — timing noise (GC pauses, scheduler preemption)
        only ever inflates a run, so the fastest run is the least-noise
        estimate, and a stable estimate keeps successive recomputes
        from flapping a knife-edge min-cut.  The runs' deliveries land
        in this process's local sink, which the sender role never reads.
        """
        from repro.ir.interpreter import CycleMeter

        best = None
        for _ in range(repeats):
            meter = CycleMeter()
            started = time.perf_counter()
            self.partitioned.interpreter.run(
                self.partitioned.function, (event,), meter=meter
            )
            elapsed = time.perf_counter() - started
            if meter.cycles > 0:
                rate = elapsed / meter.cycles
                best = rate if best is None else min(best, rate)
        if best is None:
            return self.rate_override  # nothing measurable; keep the old rate
        return best

    @property
    def current_plan_edges(self) -> Tuple[Tuple[int, int], ...]:
        with self.lock:
            plan = self.modulator.plan_runtime.current_plan
            return tuple(sorted(plan.active)) if plan is not None else ()


class NetReceiverEndpoint:
    """Demodulator + Profiling Unit + Reconfiguration Unit behind a socket.

    All handler work runs on the server's event-loop thread, so the
    demodulator and the profiling unit need no locking.  ``rate_scale``
    multiplies the measured receiver seconds-per-cycle before recording
    — the live harness uses it to emulate a loaded receiver host
    (paper's perturbation experiments) and force the min-cut away from
    the initial plan, proving a plan ships over the wire.

    ``drop_after`` injects a fault: the connection is hard-dropped
    (TCP reset) right after the Nth continuation frame is processed,
    exactly once.  The sender's reconnect machinery — and the fact that
    endpoint state survives connections — is what the live experiment
    asserts on.
    """

    def __init__(
        self,
        partitioned: PartitionedMethod,
        *,
        plan: Optional[PartitioningPlan] = None,
        trigger: Optional[FeedbackTrigger] = None,
        sample_period: int = 1,
        rate_scale: float = 1.0,
        rate_override: Optional[float] = None,
        drop_after: Optional[int] = None,
        codec: Optional[NetEnvelopeCodec] = None,
        name: str = "receiver",
        obs=None,
        telemetry_interval: float = 0.25,
        health_config: Optional[HealthConfig] = None,
        election_priority: Optional[int] = None,
        election_config: Optional[ElectionConfig] = None,
    ) -> None:
        """``telemetry_interval`` paces the TELEMETRY push loop started
        by :meth:`start` — every interval the receiver pushes its
        metrics delta, drift/fallback/ring-drop counts and health state
        to each connection whose hello advertised the ``telemetry``
        feature.  0 disables the loop (pushes can still be driven
        manually via :meth:`push_telemetry`)."""
        if rate_scale <= 0:
            raise ValueError("rate_scale must be positive")
        if telemetry_interval < 0:
            raise ValueError("telemetry_interval must be >= 0")
        self.partitioned = partitioned
        self.rate_scale = rate_scale
        self.rate_override = rate_override
        self.drop_after = drop_after
        self.obs = obs
        # Receive-side phase timer, same labeled family as the sender's
        # modulate/ship and the transport's encode/enqueue phases — one
        # table covers the whole message pipeline.
        self._h_phase_demodulate = (
            obs.metrics.histogram(
                'net.publish.phase_seconds{phase="demodulate"}'
            )
            if obs is not None
            else None
        )
        #: cumulative seconds spent building telemetry payloads —
        #: observability cost, surfaced as an ``obs.overhead.*`` gauge
        self.telemetry_encode_seconds = 0.0
        self.profiling = partitioned.make_profiling_unit(
            sample_period=sample_period, obs=obs
        )
        self.demodulator = partitioned.make_demodulator(
            profiling=self.profiling, record_rates=False, obs=obs
        )
        # Adaptation-quality layer (regret + drift): only when the
        # attached Observability opted in via obs.quality_config.
        self.quality = partitioned.make_quality(obs)
        effective_trigger = trigger or RateTrigger(period=10)
        if self.quality is not None and obs.quality_config.feed_trigger:
            from repro.core.runtime.triggers import (
                CompositeTrigger,
                DriftTrigger,
            )

            effective_trigger = CompositeTrigger(
                effective_trigger, DriftTrigger(self.quality.drift)
            )
        self.reconfig = partitioned.make_reconfiguration_unit(
            trigger=effective_trigger,
            location="receiver",
            obs=obs,
            quality=self.quality,
        )
        self.exposer = None
        self.server = FrameServer(
            codec or NetEnvelopeCodec(), name=name, obs=obs
        )
        self.server.handler = self._handle
        #: the plan currently believed to run on the sender
        self.sender_plan: Optional[PartitioningPlan] = plan
        self.demodulated = 0
        self.raw_events = 0
        self.feedback_batches = 0
        self.plan_ships = 0
        #: monotone idempotency key for shipped plans; burned per ship
        #: *attempt* so a failed attempt's retry uses a strictly fresher
        #: version (the sender ignores versions it has already applied)
        self.plan_version = 0
        self.drops_injected = 0
        self.duplicates_skipped = 0
        self.sender_reported_sent: Optional[int] = None
        self.done = threading.Event()
        #: wall-clock window of demodulation activity (for msgs/s)
        self.first_demod_at: Optional[float] = None
        self.last_demod_at: Optional[float] = None
        #: one-way latency samples per PSE id (same-host wall clocks)
        self.latencies: Dict[str, List[float]] = {}
        #: per-source high-water sequence marks, keyed by (sender
        #: instance, subscription).  Endpoint-level (survives reconnect)
        #: but per *peer*: two senders' sequence spaces never collide,
        #: and a restarted sender (fresh instance token, sequences
        #: beginning again) is never mistaken for a resumed one — its
        #: first frame must not be dropped as a "duplicate".  O(1)
        #: memory per source, unlike a grow-forever seen-set.
        self._dedupe_high: Dict[Tuple[str, int], int] = {}
        self.name = name
        #: one token per endpoint lifetime, same semantics as
        #: Hello.instance: telemetry from a restarted receiver is
        #: distinguishable from a resumed one.
        self.instance = uuid.uuid4().hex
        self.telemetry_interval = telemetry_interval
        self.telemetry_pushes = 0
        self.telemetry_sent = 0
        self._telemetry_task: Optional[asyncio.Task] = None
        self._telemetry_prev: Optional[dict] = None
        #: this process's own health, exposed on /healthz and pushed in
        #: every telemetry report; live.py forces it around injected
        #: wedges so the fault is visible on both ends.
        self.self_health = HealthMonitor(obs=obs, config=health_config)
        self.self_health.peer("self")
        #: bully election among the receivers of one sender, relayed
        #: frame-by-frame through the broker (receivers share no direct
        #: link).  With no priority configured the endpoint runs solo —
        #: it *is* the leader, exactly the pre-election behaviour.
        self.election: Optional[ElectionMember] = None
        self.election_frames = 0
        self._election_task: Optional[asyncio.Task] = None
        self._election_outbox: List[Tuple[str, int]] = []
        if election_priority is not None:
            self.election = ElectionMember(
                f"{name}#{self.instance[:6]}",
                election_priority,
                send=self._queue_election,
                config=election_config,
            )

    def _tracer(self):
        return self.obs.tracing if self.obs is not None else None

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        bound = await self.server.start(host, port)
        if self.telemetry_interval > 0 and self._telemetry_task is None:
            self._telemetry_task = asyncio.get_running_loop().create_task(
                self._telemetry_loop()
            )
        if self.election is not None and self._election_task is None:
            self._election_task = asyncio.get_running_loop().create_task(
                self._election_loop()
            )
        return bound

    async def stop(self) -> None:
        for attr in ("_telemetry_task", "_election_task"):
            task = getattr(self, attr)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                setattr(self, attr, None)
        await self.server.stop()
        if self.exposer is not None:
            self.exposer.close()
            self.exposer = None

    # -- telemetry push (event-loop thread) ------------------------------------

    async def _telemetry_loop(self) -> None:
        while True:
            await asyncio.sleep(self.telemetry_interval)
            await self.push_telemetry()

    def _telemetry_payload(self) -> dict:
        """One push's payload: metrics delta + adaptation counters.

        Counters/histograms travel as deltas against the previous push
        (Prometheus-style reset handling via ``snapshot_delta``) so the
        aggregator can fold per-interval rates without re-diffing; the
        first push carries the full snapshot.
        """
        build_started = time.perf_counter()
        payload: dict = {
            "counters": {
                "demodulated": self.demodulated,
                "duplicates_skipped": self.duplicates_skipped,
                "plan_ships": self.plan_ships,
                "feedback_batches": self.feedback_batches,
            },
            "health": self.self_health.peer("self").state,
            "leader": self.is_leader,
        }
        if self.election is not None:
            payload["election"] = self.election.to_dict()
        from repro.ir import codegen

        payload["codegen_fallbacks"] = dict(codegen.fallback_counts)
        if self.obs is not None:
            from repro.obs.metrics import snapshot_delta

            current = self.obs.metrics.to_dict()
            prev = self._telemetry_prev
            payload["metrics"] = (
                current if prev is None else snapshot_delta(prev, current)
            )
            self._telemetry_prev = current
            payload["drift_events"] = self.obs.trace.count("DriftDetected")
            payload["trace_ring_dropped"] = self.obs.trace.dropped
            tracer = self.obs.tracing
            if tracer is not None:
                payload["tracer_ring_dropped"] = tracer.dropped
        self.telemetry_encode_seconds += (
            time.perf_counter() - build_started
        )
        if self.obs is not None:
            # Observability's own cost: telemetry payload builds walk
            # the full metric registry, so their time is accounted in
            # the same obs.overhead family as tracer/profiler time.
            self.obs.metrics.gauge(
                "obs.overhead.telemetry_encode_seconds"
            ).set(self.telemetry_encode_seconds)
        return payload

    async def push_telemetry(self) -> int:
        """Push one telemetry report to every negotiated connection.

        Returns the number of connections the report went to (0 when no
        live peer advertised the feature — the payload is then not even
        built)."""
        conns = [
            c
            for c in self.server.connections
            if not c.closed
            and c.hello is not None
            and FEATURE_TELEMETRY in c.hello.features
        ]
        # The push loop running *is* this process's proof of life; an
        # injected wedge pins the state via force() instead.
        self.self_health.peer("self").note_signal()
        self.self_health.evaluate_all()
        if not conns:
            return 0
        self.telemetry_pushes += 1
        envelope = Telemetry(
            source=self.name,
            instance=self.instance,
            seq=self.telemetry_pushes,
            sent_at=time.time(),
            payload=self._telemetry_payload(),
        )
        sent = 0
        for conn in conns:
            try:
                await conn.send(envelope)
                sent += 1
            except TransportError:
                continue  # connection died mid-push; reconnect handles it
        self.telemetry_sent += sent
        return sent

    # -- leader election (event-loop thread) -----------------------------------

    @property
    def is_leader(self) -> bool:
        """Whether this receiver owns the ReconfigurationUnit.

        Solo receivers (no election configured) always lead; in a fleet
        exactly one member holds the coordinator role at a time, so only
        one process recomputes and ships plans for the shared sender.
        """
        if self.election is None:
            return True
        return self.election.is_leader

    def _queue_election(self, op: str, term: int) -> None:
        """ElectionMember's send hook: park the frame for async flush.

        ``tick()`` and ``on_message()`` are synchronous; connection
        writes are not — the outbox decouples the state machine from
        the wire without threading (everything runs on the loop).
        """
        self._election_outbox.append((op, term))

    async def _flush_election(self) -> None:
        member = self.election
        if member is None or not self._election_outbox:
            return
        outbox, self._election_outbox = self._election_outbox, []
        conns = [
            c
            for c in self.server.connections
            if not c.closed
            and c.hello is not None
            and FEATURE_ELECTION in c.hello.features
        ]
        for op, term in outbox:
            envelope = Election(
                op=op,
                term=term,
                member=member.member_id,
                priority=member.priority,
            )
            for conn in conns:
                try:
                    await conn.send(envelope)
                except TransportError:
                    continue  # reconnect machinery owns dead conns

    async def _election_loop(self) -> None:
        member = self.election
        interval = min(
            member.config.challenge_timeout,
            member.config.coordinator_interval,
        ) / 2.0
        while True:
            await asyncio.sleep(interval)
            member.tick()
            await self._flush_election()

    def expose_metrics(self, host: str = "127.0.0.1", port: int = 0):
        """Serve this process's observability over HTTP (OpenMetrics).

        The endpoint stays up until :meth:`stop`; scrape ``/metrics``
        for the OpenMetrics text, ``/metrics.json`` for the full dump
        (what :mod:`repro.tools.monitor` polls).
        """
        if self.obs is None:
            raise ValueError("expose_metrics requires an attached obs")
        from repro.obs.exposition import start_http_exposer

        self.exposer = start_http_exposer(
            self.obs.to_dict,
            host=host,
            port=port,
            health_source=lambda: self.self_health.peer("self").to_dict(),
        )
        return self.exposer

    # -- frame routing (event-loop thread) -------------------------------------

    async def _handle(
        self, envelope: object, sent_at: float, conn: ServerConnection
    ) -> None:
        if isinstance(envelope, ContinuationEnvelope):
            await self._handle_continuation(envelope, sent_at, conn)
        elif isinstance(envelope, FeedbackEnvelope):
            self._handle_feedback(envelope)
            await self._maybe_reconfigure(conn)
        elif isinstance(envelope, Election):
            self.election_frames += 1
            if self.election is not None:
                self.election.on_message(
                    envelope.op,
                    envelope.term,
                    envelope.member,
                    envelope.priority,
                )
                await self._flush_election()
        elif isinstance(envelope, EventEnvelope):
            self.raw_events += 1
        elif isinstance(envelope, Bye):
            self.sender_reported_sent = envelope.sent
            self.done.set()

    def _dedupe_key(
        self, envelope: ContinuationEnvelope, conn: ServerConnection
    ) -> Tuple[str, int]:
        """Dedupe state key: the sending *process* plus the subscription.

        Falls back to the per-connection peername when the sender's
        hello carried no instance token (older builds): dedupe then
        degrades to per-connection — it cannot wrongly drop a fresh
        frame, only miss a cross-reconnect duplicate.
        """
        hello = conn.hello
        instance = hello.instance if hello is not None else ""
        return (instance or conn.peername, envelope.subscription_id)

    async def _handle_continuation(
        self,
        envelope: ContinuationEnvelope,
        sent_at: float,
        conn: ServerConnection,
    ) -> None:
        source = self._dedupe_key(envelope, conn)
        if envelope.seq <= self._dedupe_high.get(source, -1):
            # The frame at the head of the sender's queue when a
            # connection dies is retransmitted (at-least-once); frames
            # within one source are FIFO, so a high-water mark per
            # source keeps delivery effectively-once.
            self.duplicates_skipped += 1
            return
        self._dedupe_high[source] = envelope.seq
        started = time.perf_counter()
        outcome = self.demodulator.process(envelope.continuation)
        elapsed = time.perf_counter() - started
        if self._h_phase_demodulate is not None:
            self._h_phase_demodulate.observe(elapsed)
        if outcome.cycles > 0:
            seconds = (
                outcome.cycles * self.rate_override
                if self.rate_override is not None
                else elapsed
            )
            self.profiling.record_receiver_rate(
                seconds * self.rate_scale, outcome.cycles
            )
            if self.quality is not None and outcome.edge is not None:
                # Observed demod seconds in the same (scaled) units the
                # profiling unit derives t_demod predictions from.
                self.quality.observe_demod_time(
                    outcome.edge,
                    seconds * self.rate_scale,
                    self.profiling.messages_seen,
                )
        if self.quality is not None and outcome.edge is not None:
            self.quality.observe_message(outcome.edge, self.profiling)
            self.quality.observe_ship_bytes(
                outcome.edge,
                float(self.partitioned.codec.size(envelope.continuation)),
                self.profiling.messages_seen,
            )
        self.demodulated += 1
        now = time.time()
        if self.first_demod_at is None:
            self.first_demod_at = now
        self.last_demod_at = now
        pse_id = str(envelope.continuation.pse_id)
        if sent_at > 0:
            latency = time.time() - sent_at
            if latency >= 0:
                self.latencies.setdefault(pse_id, []).append(latency)
                tracer = self._tracer()
                if tracer is not None:
                    tracer.observe_pse(pse_id, latency=latency)
        if (
            self.drop_after is not None
            and self.drops_injected == 0
            and self.demodulated >= self.drop_after
        ):
            # Fault injection: processed, *then* reset — the experiment
            # loses the connection, not the message.
            self.drops_injected += 1
            conn.abort()
            return
        await self._maybe_reconfigure(conn)

    def _handle_feedback(self, envelope: FeedbackEnvelope) -> None:
        stats = envelope.demod_stats
        if isinstance(stats, (list, tuple)):
            ingest(self.profiling, list(stats))
            self.feedback_batches += 1

    async def _maybe_reconfigure(self, conn: ServerConnection) -> None:
        if not self.is_leader:
            # Only the elected leader owns the ReconfigurationUnit:
            # followers keep profiling (their observations still count)
            # but never race the leader with conflicting plan ships.
            return
        plan = self.reconfig.consider(self.profiling)
        if plan is None:
            return
        if (
            self.sender_plan is not None
            and plan.active == self.sender_plan.active
        ):
            return  # the sender already runs this plan; nothing to ship
        previous = self.sender_plan
        self.sender_plan = plan
        # The version is burned per ship *attempt*, not per success: a
        # send that errors after its bytes reached the wire may still be
        # applied by the sender, so reusing the version on the retry
        # would get the retried (possibly different) plan ignored as a
        # duplicate — permanent sender/receiver divergence.
        self.plan_version += 1
        envelope = PlanEnvelope(
            subscription_id=1, plan=plan, version=self.plan_version
        )
        tracer = self._tracer()
        if tracer is not None and self.reconfig.last_trace_ctx is not None:
            ctx = self.reconfig.last_trace_ctx
            now = tracer.clock()
            ship_span = tracer.record(
                "plan.ship",
                trace_id=ctx[0],
                parent_id=ctx[1],
                start=now,
                end=now,
                attrs={"bytes": _PLAN_UPDATE_BYTES, "plan": plan.name},
            )
            envelope.trace = (ctx[0], ship_span.span_id)
        if conn.closed:
            # The triggering connection just dropped (fault injection):
            # ship on the next live one, if any.
            live = [c for c in self.server.connections if not c.closed]
            if not live:
                # No connection to ship on: forget the optimistic update
                # so the next trigger fire re-ships after reconnect.
                self.sender_plan = previous
                return
            conn = live[-1]
        try:
            await conn.send(envelope)
        except TransportError:
            # Revert the optimistic update so the next trigger fire
            # re-ships; the burned version keeps the retry fresh.
            self.sender_plan = previous
            return
        self.plan_ships += 1

    # -- results ----------------------------------------------------------------

    def latency_quantiles(self) -> Dict[str, Dict[str, float]]:
        """p50/p95 one-way latency per PSE, from the raw samples."""
        out: Dict[str, Dict[str, float]] = {}
        for pse_id, samples in sorted(self.latencies.items()):
            ordered = sorted(samples)
            n = len(ordered)
            out[pse_id] = {
                "count": n,
                "p50": ordered[int(0.50 * (n - 1))],
                "p95": ordered[int(0.95 * (n - 1))],
            }
        return out
