"""Asyncio TCP transport and frame server.

:class:`TcpTransport` implements the synchronous
:class:`~repro.jecho.transport.Transport` interface over real sockets:
``send(destination, envelope, size)`` encodes the envelope as one frame
and enqueues it on the destination peer's bounded outbound queue; an
asyncio machinery (either a background thread owning its own event
loop — the default, so ordinary synchronous code can use it — or an
externally provided running loop) drains the queues onto sockets.

Reliability model, chosen to match what the adaptation loop needs:

* **Per-peer connection pooling** — one pooled connection per
  ``(host, port)``, created lazily by :meth:`TcpTransport.peer` and
  reused by every send to that peer.
* **Reconnect with exponential backoff + jitter** — a lost or refused
  connection is retried at ``base * 2^attempt`` seconds, capped, with
  deterministic per-peer jitter so herds of senders do not thunder.
  Queued frames survive the outage; the frame being written when the
  connection died is retransmitted first (at-least-once for the head
  frame, at-most-once for everything behind it).
* **Bounded queues with drop-oldest backpressure** — when the outbound
  queue is full the *oldest* frame is dropped (freshest data wins, the
  right call for sensor streams) and counted in ``obs.metrics`` under
  ``<name>.dropped_frames``.
* **Connect/send timeouts** — a peer that accepts but never reads must
  not wedge the writer; a timed-out send raises
  :class:`~repro.errors.SendTimeoutError` internally and is treated as
  a lost connection.
* **Heartbeats** — each pooled connection emits a heartbeat frame every
  ``heartbeat_interval`` seconds; the server echoes it back with the
  original timestamp, giving both sides liveness (``last_heard``) and
  the client an RTT sample.
* **Negotiated frame batching** — when both ends advertise the
  ``"batch"`` feature in their hellos, the write loop gathers the run
  of batchable frames (events, continuations, feedback) at the head of
  the queue into one ``KIND_BATCH`` frame, paying a single
  write+drain event-loop round trip for many logical frames.  Control
  frames (hello, heartbeat, plan, bye) are never batched and never
  wait behind one: a run stops at the first non-batchable frame.
  Batching is *opportunistic* by default (``flush_interval=0``): a
  lone frame ships immediately, batches only form from genuine
  backlog, so an idle stream sees no added latency.  The whole batch
  is popped only after a successful drain, so a connection loss
  retransmits it intact (at-least-once; the receiver's dedupe
  high-water marks absorb the duplicates).

:class:`FrameServer` is the listening side: it accepts connections,
runs the handshake (rejecting protocol-version mismatches), decodes
frames incrementally, and hands every application envelope to a router
callback.  It exposes per-connection ``send`` for the reverse control
plane (plan-ship) and ``abort`` for fault injection in tests.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import threading
import time
import uuid
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import (
    ConnectionLostError,
    FramingError,
    ProtocolError,
    SendTimeoutError,
    TransportError,
)
from repro.jecho.transport import Destination, Transport
from repro.net.framing import (
    BATCHABLE_KINDS,
    DEFAULT_MAX_FRAME,
    FEATURE_BATCH,
    LOCAL_FEATURES,
    SUB_HEADER_SIZE,
    BufferPool,
    FrameDecoder,
    Bye,
    Heartbeat,
    Hello,
    NetEnvelopeCodec,
    Telemetry,
    encode_batch_parts,
)

__all__ = ["TcpPeer", "TcpTransport", "FrameServer", "ServerConnection"]

_READ_CHUNK = 65536

#: decode-side payload pool geometry: most envelopes (continuations,
#: events, telemetry) fit a few KB; oversized payloads fall back to
#: plain bytes inside the decoder.  One pool per connection — the pool
#: is only touched from that connection's read loop, so no locking.
_PAYLOAD_POOL_SIZE = 4096
_PAYLOAD_POOL_CAPACITY = 64

#: a queued frame: (kind, header bytes, payload bytes) — kept apart so
#: the write loop can gather them into batches without re-encoding
_QueuedFrame = Tuple[int, bytes, bytes]


class TcpPeer:
    """One pooled connection to a remote endpoint.

    All mutable state is owned by the transport's event loop; the only
    cross-thread entry point is :meth:`_enqueue_threadsafe`.
    """

    def __init__(
        self,
        transport: "TcpTransport",
        host: str,
        port: int,
        *,
        name: Optional[str] = None,
        queue_limit: Optional[int] = None,
    ) -> None:
        if queue_limit is not None and queue_limit < 1:
            raise TransportError("queue_limit must be >= 1")
        self.transport = transport
        self.host = host
        self.port = port
        self.name = name or f"{host}:{port}"
        #: per-peer outbound bound; None inherits the transport's limit.
        #: A fan-out broker caps each subscriber independently so one
        #: slow peer sheds its own backlog without shrinking the others'.
        self.queue_limit = queue_limit
        self.connections = 0
        self.reconnects = 0
        self.dropped_frames = 0
        self.frames_sent = 0
        self.frame_bytes_sent = 0
        self.heartbeats_sent = 0
        self.heartbeats_seen = 0
        self.send_timeouts = 0
        self.batches_sent = 0
        self.batched_frames_sent = 0
        self.last_heard: Optional[float] = None
        self.last_rtt: Optional[float] = None
        self.connected = False
        #: features the remote's hello advertised (per connection)
        self.peer_features: frozenset = frozenset()
        self._batch_ok = False
        self.telemetry_frames_seen = 0
        self._g_queue = None
        self._subpool = BufferPool()
        self._outbound: Deque[_QueuedFrame] = deque()
        self._wake = asyncio.Event()
        self._conn_lost = asyncio.Event()
        self._drained = asyncio.Event()
        self._drained.set()
        self._closed = False
        self._task: Optional[asyncio.Task] = None
        # Deterministic per-peer jitter stream: reproducible backoff
        # schedules in tests, decorrelated schedules across peers.
        self._jitter_rng = random.Random(
            (hash((host, port)) ^ transport.jitter_seed) & 0xFFFFFFFF
        )

    def is_alive(self, timeout: float) -> bool:
        """True when the peer answered within the last *timeout* seconds."""
        return (
            self.last_heard is not None
            and (time.monotonic() - self.last_heard) < timeout
        )

    @property
    def queued(self) -> int:
        return len(self._outbound)

    @property
    def telemetry_negotiated(self) -> bool:
        """True when this connection's server hello offered telemetry."""
        from repro.net.framing import FEATURE_TELEMETRY

        return FEATURE_TELEMETRY in self.peer_features

    # -- loop-side internals ---------------------------------------------------

    def _set_queue_gauge(self) -> None:
        gauge = self._g_queue
        if gauge is None:
            metrics = self.transport._metrics
            if metrics is None:
                return
            gauge = self._g_queue = metrics.gauge(
                f'{self.transport._obs_name}.queue_depth'
                f'{{peer="{self.name}"}}'
            )
        gauge.set(len(self._outbound))

    def _enqueue(self, frame: _QueuedFrame) -> None:
        if self._closed:
            return
        limit = (
            self.queue_limit
            if self.queue_limit is not None
            else self.transport.queue_limit
        )
        if len(self._outbound) >= limit:
            self._outbound.popleft()
            self.dropped_frames += 1
            if self.transport._c_dropped is not None:
                self.transport._c_dropped.inc()
            # Sheds happen at line rate when a peer wedges; record the
            # first of every 64 so the flight ring shows the burst
            # without being flooded by it.
            if self.dropped_frames == 1 or self.dropped_frames % 64 == 0:
                flight = self.transport._flight()
                if flight is not None:
                    flight.record(
                        "net.shed",
                        peer=self.name,
                        dropped_total=self.dropped_frames,
                        queue_limit=limit,
                    )
        self._outbound.append(frame)
        self._drained.clear()
        self._wake.set()
        self._set_queue_gauge()

    def _backoff_delay(self, attempt: int) -> float:
        base = self.transport.backoff_base * (2 ** min(attempt, 16))
        delay = min(base, self.transport.backoff_cap)
        jitter = 1.0 + self.transport.backoff_jitter * self._jitter_rng.random()
        return delay * jitter

    async def _run(self) -> None:
        """Connect/reconnect loop: lives for the peer's whole lifetime."""
        attempt = 0
        while not self._closed:
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port),
                    self.transport.connect_timeout,
                )
            except (OSError, asyncio.TimeoutError):
                if self.transport._c_connect_failures is not None:
                    self.transport._c_connect_failures.inc()
                attempt += 1
                await asyncio.sleep(self._backoff_delay(attempt))
                continue
            self.connections += 1
            if self.connections > 1:
                self.reconnects += 1
                if self.transport._c_reconnects is not None:
                    self.transport._c_reconnects.inc()
                flight = self.transport._flight()
                if flight is not None:
                    flight.record(
                        "net.reconnect",
                        peer=self.name,
                        reconnects=self.reconnects,
                        queued=len(self._outbound),
                    )
            self.connected = True
            # Batching is negotiated per connection: off until this
            # connection's server hello advertises the feature.
            self.peer_features = frozenset()
            self._batch_ok = False
            self._conn_lost.clear()
            reader_task = asyncio.ensure_future(self._read_loop(reader))
            heartbeat_task = (
                asyncio.ensure_future(self._heartbeat_loop())
                if self.transport.heartbeat_interval
                else None
            )
            try:
                # Handshake first: a peer speaking another protocol
                # version must be rejected before any data frame.
                self._outbound.appendleft(
                    self.transport.codec.encode_frame_parts(
                        Hello(
                            role="sender",
                            name=self.transport.name,
                            instance=self.transport.instance,
                        )
                    )
                )
                await self._write_loop(writer)
                attempt = 0
            except (
                ConnectionLostError,
                SendTimeoutError,
                OSError,
                asyncio.TimeoutError,
            ):
                attempt += 1
            finally:
                self.connected = False
                for task in (reader_task, heartbeat_task):
                    if task is not None:
                        task.cancel()
                writer.close()
                try:
                    await writer.wait_closed()
                except (OSError, asyncio.CancelledError):
                    pass
            if self._closed:
                break
            await asyncio.sleep(self._backoff_delay(max(attempt, 1)))

    def _collect_run(self) -> List[_QueuedFrame]:
        """The prefix of the queue that ships as one wire write.

        Without negotiated batching (or with a non-batchable head) the
        run is just the head frame.  Otherwise it is the contiguous run
        of batchable frames, capped by the transport's
        ``flush_max_count`` / ``flush_max_bytes`` thresholds.
        """
        head = self._outbound[0]
        if not self._batch_ok or head[0] not in BATCHABLE_KINDS:
            return [head]
        run = [head]
        total = SUB_HEADER_SIZE + len(head[2])
        for entry in itertools.islice(
            self._outbound, 1, self.transport.flush_max_count
        ):
            if entry[0] not in BATCHABLE_KINDS:
                break
            cost = SUB_HEADER_SIZE + len(entry[2])
            if total + cost > self.transport.flush_max_bytes:
                break
            run.append(entry)
            total += cost
        return run

    def _wire_parts(
        self, run: List[_QueuedFrame]
    ) -> Tuple[List[bytes], List[bytes]]:
        """(buffers to write, pooled buffers to release afterwards)."""
        if len(run) == 1:
            _, header, payload = run[0]
            return [header, payload], []
        parts = encode_batch_parts(
            [(kind, payload) for kind, _, payload in run],
            pool=self._subpool,
        )
        return parts, parts[1::2]

    async def _linger(self) -> None:
        """Wait up to ``flush_interval`` for company before flushing."""
        self._wake.clear()
        wake = asyncio.ensure_future(self._wake.wait())
        lost = asyncio.ensure_future(self._conn_lost.wait())
        _, pending = await asyncio.wait(
            (wake, lost),
            timeout=self.transport.flush_interval,
            return_when=asyncio.FIRST_COMPLETED,
        )
        for task in pending:
            task.cancel()

    async def _write_loop(self, writer: asyncio.StreamWriter) -> None:
        while not self._closed:
            while self._outbound:
                if self._conn_lost.is_set():
                    raise ConnectionLostError(
                        f"peer {self.name} closed the connection"
                    )
                run = self._collect_run()
                if (
                    len(run) == 1
                    and len(self._outbound) == 1
                    and self._batch_ok
                    and run[0][0] in BATCHABLE_KINDS
                    and self.transport.flush_interval > 0
                ):
                    # A lone batchable frame may be joined by more
                    # within the flush window; control frames and
                    # deeper queues never wait.
                    await self._linger()
                    if self._conn_lost.is_set():
                        raise ConnectionLostError(
                            f"peer {self.name} closed the connection"
                        )
                    run = self._collect_run()
                buffers, pooled = self._wire_parts(run)
                wire_bytes = sum(len(b) for b in buffers)
                try:
                    writer.writelines(buffers)
                    await asyncio.wait_for(
                        writer.drain(), self.transport.send_timeout
                    )
                except asyncio.TimeoutError:
                    self.send_timeouts += 1
                    if self.transport._c_send_timeouts is not None:
                        self.transport._c_send_timeouts.inc()
                    raise SendTimeoutError(
                        f"send to {self.name} exceeded "
                        f"{self.transport.send_timeout}s"
                    ) from None
                except (ConnectionError, OSError) as exc:
                    raise ConnectionLostError(
                        f"connection to {self.name} lost: {exc}"
                    ) from exc
                finally:
                    # asyncio copies buffers before write returns, so
                    # the pooled sub-headers recycle even on failure.
                    for buf in pooled:
                        self._subpool.release(buf)
                # Popped only after a successful drain, so a run that
                # was mid-write when the link died is retransmitted
                # whole (receiver dedupe absorbs the duplicates).
                for _ in run:
                    self._outbound.popleft()
                self._set_queue_gauge()
                self.frames_sent += len(run)
                self.frame_bytes_sent += wire_bytes
                if len(run) > 1:
                    self.batches_sent += 1
                    self.batched_frames_sent += len(run)
                if self.transport._c_frame_bytes is not None:
                    self.transport._c_frame_bytes.inc(wire_bytes)
            if not self._outbound:
                self._drained.set()
            self._wake.clear()
            if self._conn_lost.is_set():
                raise ConnectionLostError(
                    f"peer {self.name} closed the connection"
                )
            wake = asyncio.ensure_future(self._wake.wait())
            lost = asyncio.ensure_future(self._conn_lost.wait())
            done, pending = await asyncio.wait(
                (wake, lost), return_when=asyncio.FIRST_COMPLETED
            )
            for task in pending:
                task.cancel()

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        decoder = FrameDecoder(
            max_frame=self.transport.max_frame,
            payload_pool=BufferPool(
                size=_PAYLOAD_POOL_SIZE,
                capacity=_PAYLOAD_POOL_CAPACITY,
            ),
        )
        seen_compactions = 0
        seen_batches = 0
        seen_pooled = 0
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                try:
                    frames = decoder.feed(data)
                except FramingError:
                    if self.transport._c_framing_errors is not None:
                        self.transport._c_framing_errors.inc()
                    break
                finally:
                    # Decoder stats are cumulative per connection; the
                    # registry counters aggregate deltas across every
                    # connection this transport ever held.
                    if self.transport._c_decoder_compactions is not None:
                        delta = decoder.compactions - seen_compactions
                        if delta:
                            self.transport._c_decoder_compactions.inc(delta)
                        seen_compactions = decoder.compactions
                        delta = decoder.batches_decoded - seen_batches
                        if delta:
                            self.transport._c_batches_decoded.inc(delta)
                        seen_batches = decoder.batches_decoded
                        delta = decoder.pooled_payloads - seen_pooled
                        if delta and (
                            self.transport._c_pooled_payloads is not None
                        ):
                            self.transport._c_pooled_payloads.inc(delta)
                        seen_pooled = decoder.pooled_payloads
                for kind, payload in frames:
                    self.last_heard = time.monotonic()
                    try:
                        envelope, _ = self.transport.codec.decode(
                            kind, payload
                        )
                    except (ProtocolError, Exception) as exc:  # noqa: BLE001
                        if self.transport._c_decode_errors is not None:
                            self.transport._c_decode_errors.inc()
                        if not isinstance(exc, ProtocolError):
                            raise
                        continue
                    if isinstance(envelope, Heartbeat):
                        self.heartbeats_seen += 1
                        rtt = time.time() - envelope.sent_at
                        self.last_rtt = rtt
                        if self.transport._h_rtt is not None and rtt >= 0:
                            self.transport._h_rtt.observe(rtt)
                        continue
                    if isinstance(envelope, Hello):
                        # Server hello: adopt its advertised features.
                        # Batching turns on only when both ends opt in.
                        self.peer_features = frozenset(envelope.features)
                        self._batch_ok = (
                            self.transport.batching
                            and FEATURE_BATCH in self.peer_features
                        )
                        continue
                    if isinstance(envelope, Bye):
                        continue
                    if isinstance(envelope, Telemetry):
                        self.telemetry_frames_seen += 1
                    handler = self.transport.inbound_handler
                    if handler is not None:
                        handler(envelope, self)
                # Envelopes own their decoded values; the raw payload
                # buffers can go back to the pool.
                decoder.recycle(frames)
        finally:
            self._conn_lost.set()

    async def _heartbeat_loop(self) -> None:
        interval = self.transport.heartbeat_interval
        while not self._closed:
            await asyncio.sleep(interval)
            self._enqueue(
                self.transport.codec.encode_frame_parts(
                    Heartbeat(sent_at=time.time())
                )
            )
            self.heartbeats_sent += 1
            if self.transport._c_heartbeats is not None:
                self.transport._c_heartbeats.inc()

    async def _wait_drained(self) -> None:
        await self._drained.wait()

    def _close(self) -> None:
        self._closed = True
        self._conn_lost.set()
        self._wake.set()
        if self._task is not None:
            self._task.cancel()


class TcpTransport(Transport):
    """A :class:`Transport` whose destinations are TCP peers.

    ``send(destination, envelope, size)`` accepts a :class:`TcpPeer`
    (from :meth:`peer`) or a ``(host, port)`` tuple.  Inherited traffic
    accounting and ship-span tracing apply unchanged; the bytes then
    cross a real socket instead of a simulated link.
    """

    def __init__(
        self,
        codec: Optional[NetEnvelopeCodec] = None,
        *,
        name: str = "tcp",
        connect_timeout: float = 5.0,
        send_timeout: float = 5.0,
        queue_limit: int = 1024,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        backoff_jitter: float = 0.2,
        heartbeat_interval: Optional[float] = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        jitter_seed: int = 0,
        batching: bool = True,
        flush_max_bytes: int = 64 * 1024,
        flush_max_count: int = 32,
        flush_interval: float = 0.0,
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ) -> None:
        super().__init__()
        if queue_limit < 1:
            raise TransportError("queue_limit must be >= 1")
        if connect_timeout <= 0 or send_timeout <= 0:
            raise TransportError("timeouts must be positive")
        if flush_max_count < 1:
            raise TransportError("flush_max_count must be >= 1")
        if flush_max_bytes < SUB_HEADER_SIZE + 1:
            raise TransportError(
                f"flush_max_bytes must be > {SUB_HEADER_SIZE}"
            )
        if flush_interval < 0:
            raise TransportError("flush_interval must be >= 0")
        if backoff_base <= 0 or backoff_cap < backoff_base:
            raise TransportError(
                "backoff_base must be positive and <= backoff_cap"
            )
        if not (0.0 <= backoff_jitter <= 1.0):
            raise TransportError("backoff_jitter must be in [0, 1]")
        self.codec = codec or NetEnvelopeCodec()
        self.name = name
        self.connect_timeout = connect_timeout
        self.send_timeout = send_timeout
        self.queue_limit = queue_limit
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.backoff_jitter = backoff_jitter
        self.heartbeat_interval = heartbeat_interval
        self.max_frame = max_frame
        self.jitter_seed = jitter_seed
        #: master switch for wire batching; the peer must also advertise
        #: the "batch" feature in its hello before batches are sent.
        self.batching = batching
        self.flush_max_bytes = flush_max_bytes
        self.flush_max_count = flush_max_count
        self.flush_interval = flush_interval
        # One token per transport lifetime: reconnects present the same
        # identity, a restarted process a fresh one (see Hello.instance).
        self.instance = uuid.uuid4().hex
        self.inbound_handler: Optional[Callable[[object, TcpPeer], None]] = None
        self._trace_host = name
        self._peers: Dict[Tuple[str, int], TcpPeer] = {}
        self._loop = loop
        self._own_loop = loop is None
        self._thread: Optional[threading.Thread] = None
        self._c_dropped = None
        self._c_reconnects = None
        self._c_connect_failures = None
        self._c_send_timeouts = None
        self._c_heartbeats = None
        self._c_frame_bytes = None
        self._c_framing_errors = None
        self._c_decode_errors = None
        self._c_decoder_compactions = None
        self._c_batches_decoded = None
        self._c_pooled_payloads = None
        self._h_rtt = None
        self._h_phase_encode = None
        self._h_phase_enqueue = None
        self._metrics = None
        self._obs = None
        self._obs_name = "transport.tcp"

    # -- observability ---------------------------------------------------------

    def attach_observability(self, obs, *, name: str = "transport.tcp") -> None:
        super().attach_observability(obs, name=name)
        metrics = obs.metrics
        self._c_dropped = metrics.counter(f"{name}.dropped_frames")
        self._c_reconnects = metrics.counter(f"{name}.reconnects")
        self._c_connect_failures = metrics.counter(
            f"{name}.connect_failures"
        )
        self._c_send_timeouts = metrics.counter(f"{name}.send_timeouts")
        self._c_heartbeats = metrics.counter(f"{name}.heartbeats_sent")
        self._c_frame_bytes = metrics.counter(f"{name}.frame_bytes")
        self._c_framing_errors = metrics.counter(
            f"{name}.framing_errors"
        )
        self._c_decode_errors = metrics.counter(f"{name}.decode_errors")
        self._c_decoder_compactions = metrics.counter(
            f"{name}.decoder_compactions"
        )
        self._c_batches_decoded = metrics.counter(
            f"{name}.decoder_batches_decoded"
        )
        self._c_pooled_payloads = metrics.counter(
            f"{name}.decoder_pooled_payloads"
        )
        self._h_rtt = metrics.histogram(f"{name}.heartbeat_rtt")
        # Publish-path phase timers (same family as the broker's
        # modulate/fork/ship phases): the caller-thread encode and the
        # threadsafe handoff to the loop, the two halves of _deliver.
        self._h_phase_encode = metrics.histogram(
            'net.publish.phase_seconds{phase="encode"}'
        )
        self._h_phase_enqueue = metrics.histogram(
            'net.publish.phase_seconds{phase="enqueue"}'
        )
        self._metrics = metrics
        self._obs = obs
        self._obs_name = name
        # Re-attach invalidates per-peer gauge handles bound to the old
        # registry (same rule as the counters above).
        for peer in self._peers.values():
            peer._g_queue = None

    def _flight(self):
        """The attached Observability's flight recorder, if any."""
        return getattr(self._obs, "flight", None)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "TcpTransport":
        """Spin up the background event-loop thread (no-op when an
        external loop was provided or the thread already runs)."""
        if self._loop is not None:
            return self
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name=f"tcp-transport-{self.name}",
            daemon=True,
        )
        self._thread.start()
        return self

    def _require_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise TransportError(
                "TcpTransport not started: call start() (threaded) or "
                "pass loop= (embedded)"
            )
        return self._loop

    def peer(
        self,
        host: str,
        port: int,
        *,
        name: Optional[str] = None,
        queue_limit: Optional[int] = None,
    ) -> TcpPeer:
        """The pooled peer for ``(host, port)``, connecting it if new."""
        if self.closed:
            raise ConnectionLostError("transport is closed")
        loop = self._require_loop()
        key = (host, int(port))
        existing = self._peers.get(key)
        if existing is not None:
            return existing
        peer = TcpPeer(
            self, host, int(port), name=name, queue_limit=queue_limit
        )
        self._peers[key] = peer

        def _spawn() -> None:
            peer._task = loop.create_task(peer._run())

        loop.call_soon_threadsafe(_spawn)
        return peer

    @property
    def peers(self) -> List[TcpPeer]:
        return list(self._peers.values())

    # -- Transport interface ---------------------------------------------------

    def _resolve(self, destination: Destination) -> TcpPeer:
        if isinstance(destination, TcpPeer):
            return destination
        if (
            isinstance(destination, tuple)
            and len(destination) == 2
            and isinstance(destination[0], str)
        ):
            return self.peer(destination[0], destination[1])
        raise TransportError(
            f"TcpTransport destinations are TcpPeer or (host, port), "
            f"got {type(destination).__name__}"
        )

    def _deliver(
        self, destination: Destination, envelope: object, size: float
    ) -> None:
        peer = self._resolve(destination)
        # Encoding happens on the caller's thread (after the base class
        # restamped the trace context) so the loop thread only does IO;
        # header and payload stay separate so the write loop can gather
        # runs of frames into one batch without re-encoding.
        h_encode = self._h_phase_encode
        if h_encode is None:
            parts = self.codec.encode_frame_parts(
                envelope, sent_at=time.time()
            )
            self._require_loop().call_soon_threadsafe(peer._enqueue, parts)
            return
        t0 = time.perf_counter()
        parts = self.codec.encode_frame_parts(envelope, sent_at=time.time())
        t1 = time.perf_counter()
        h_encode.observe(t1 - t0)
        self._require_loop().call_soon_threadsafe(peer._enqueue, parts)
        self._h_phase_enqueue.observe(time.perf_counter() - t1)

    # -- draining / shutdown ---------------------------------------------------

    async def adrain(self, timeout: float = 10.0) -> bool:
        """Await every peer queue empty; False on timeout."""
        try:
            await asyncio.wait_for(
                asyncio.gather(
                    *(p._wait_drained() for p in self._peers.values())
                ),
                timeout,
            )
        except asyncio.TimeoutError:
            return False
        return True

    def drain(self, timeout: float = 10.0) -> bool:
        """Block until every queue is flushed (threaded mode only)."""
        loop = self._require_loop()
        future = asyncio.run_coroutine_threadsafe(
            self.adrain(timeout), loop
        )
        try:
            return future.result(timeout + 1.0)
        except Exception:  # noqa: BLE001 - timeout or loop shutdown
            return False

    async def aclose(self) -> None:
        for peer in self._peers.values():
            peer._close()
        await asyncio.sleep(0)
        self.closed = True

    def close(self, timeout: float = 5.0) -> None:
        """Stop every peer, the loop thread (if owned), and the transport."""
        if self.closed:
            return
        loop = self._loop
        if loop is not None and self._thread is not None:
            future = asyncio.run_coroutine_threadsafe(self.aclose(), loop)
            try:
                future.result(timeout)
            except Exception:  # noqa: BLE001 - shutdown is best-effort
                pass
            loop.call_soon_threadsafe(loop.stop)
            self._thread.join(timeout)
        super().close()


class ServerConnection:
    """One accepted connection inside a :class:`FrameServer`."""

    def __init__(
        self,
        server: "FrameServer",
        writer: asyncio.StreamWriter,
        peername: str,
    ) -> None:
        self.server = server
        self.writer = writer
        self.peername = peername
        self.hello: Optional[Hello] = None
        self.frames_received = 0
        self.last_heard: Optional[float] = None
        self.closed = False

    async def send(self, envelope: object) -> None:
        """Ship an envelope back to this connection's client."""
        if self.closed:
            raise ConnectionLostError(
                f"connection from {self.peername} is closed"
            )
        frame = self.server.codec.encode_frame(
            envelope, sent_at=time.time()
        )
        try:
            self.writer.write(frame)
            await asyncio.wait_for(
                self.writer.drain(), self.server.send_timeout
            )
        except asyncio.TimeoutError:
            raise SendTimeoutError(
                f"send to {self.peername} exceeded "
                f"{self.server.send_timeout}s"
            ) from None
        except (ConnectionError, OSError) as exc:
            raise ConnectionLostError(
                f"connection from {self.peername} lost: {exc}"
            ) from exc
        self.server.frames_sent += 1

    def abort(self) -> None:
        """Hard-drop the connection (fault injection).

        Safe to call from any thread: asyncio transports are not
        thread-safe, so the abort is marshalled onto the server's loop.
        """
        self.closed = True
        transport = self.writer.transport
        if transport is None:
            return
        loop = self.server._loop
        if loop is not None:
            loop.call_soon_threadsafe(transport.abort)
        else:
            transport.abort()


class FrameServer:
    """Listening side: accept, handshake, decode, route.

    ``handler(envelope, sent_at, connection)`` is called for every
    application envelope (data, continuation, feedback, plan, bye);
    hello and heartbeat frames are handled by the server itself
    (version check, echo).  The handler may be a plain function or a
    coroutine function.
    """

    def __init__(
        self,
        codec: Optional[NetEnvelopeCodec] = None,
        *,
        name: str = "server",
        send_timeout: float = 5.0,
        max_frame: int = DEFAULT_MAX_FRAME,
        features: Tuple[str, ...] = LOCAL_FEATURES,
        obs=None,
    ) -> None:
        self.codec = codec or NetEnvelopeCodec()
        self.name = name
        self.send_timeout = send_timeout
        self.max_frame = max_frame
        #: features this server's hello reply advertises; pass () to
        #: emulate a legacy (pre-batching) receiver.
        self.features = tuple(features)
        self.handler: Optional[Callable] = None
        self.connections: List[ServerConnection] = []
        self.accepted = 0
        self.frames_received = 0
        self.frames_sent = 0
        self.heartbeats_seen = 0
        self.protocol_rejects = 0
        self.framing_errors = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.obs = obs
        if obs is not None:
            metrics = obs.metrics
            self._c_accepted = metrics.counter(f"{name}.accepted")
            self._c_frames = metrics.counter(f"{name}.frames_received")
            self._c_heartbeats = metrics.counter(
                f"{name}.heartbeats_seen"
            )
            self._c_rejects = metrics.counter(
                f"{name}.protocol_rejects"
            )
            self._c_decoder_compactions = metrics.counter(
                f"{name}.decoder_compactions"
            )
            self._c_batches_decoded = metrics.counter(
                f"{name}.decoder_batches_decoded"
            )
            self._c_pooled_payloads = metrics.counter(
                f"{name}.decoder_pooled_payloads"
            )
        else:
            self._c_accepted = None
            self._c_frames = None
            self._c_heartbeats = None
            self._c_rejects = None
            self._c_decoder_compactions = None
            self._c_batches_decoded = None
            self._c_pooled_payloads = None

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Bind and listen; returns the actual ``(host, port)``."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_client, host, port
        )
        sock = self._server.sockets[0]
        bound = sock.getsockname()
        return bound[0], bound[1]

    async def stop(self) -> None:
        for conn in list(self.connections):
            try:
                conn.abort()
            except Exception:  # noqa: BLE001 - already gone
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        peername = str(writer.get_extra_info("peername"))
        conn = ServerConnection(self, writer, peername)
        self.connections.append(conn)
        self.accepted += 1
        if self._c_accepted is not None:
            self._c_accepted.inc()
        decoder = FrameDecoder(
            max_frame=self.max_frame,
            payload_pool=BufferPool(
                size=_PAYLOAD_POOL_SIZE,
                capacity=_PAYLOAD_POOL_CAPACITY,
            ),
        )
        seen_compactions = 0
        seen_batches = 0
        seen_pooled = 0
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                try:
                    frames = decoder.feed(data)
                except FramingError:
                    self.framing_errors += 1
                    break
                finally:
                    if self._c_decoder_compactions is not None:
                        delta = decoder.compactions - seen_compactions
                        if delta:
                            self._c_decoder_compactions.inc(delta)
                        seen_compactions = decoder.compactions
                        delta = decoder.batches_decoded - seen_batches
                        if delta:
                            self._c_batches_decoded.inc(delta)
                        seen_batches = decoder.batches_decoded
                        delta = decoder.pooled_payloads - seen_pooled
                        if delta and self._c_pooled_payloads is not None:
                            self._c_pooled_payloads.inc(delta)
                        seen_pooled = decoder.pooled_payloads
                for kind, payload in frames:
                    conn.frames_received += 1
                    conn.last_heard = time.monotonic()
                    self.frames_received += 1
                    if self._c_frames is not None:
                        self._c_frames.inc()
                    envelope, sent_at = self.codec.decode(kind, payload)
                    if isinstance(envelope, Hello):
                        try:
                            self.codec.check_hello(envelope)
                        except ProtocolError:
                            self.protocol_rejects += 1
                            if self._c_rejects is not None:
                                self._c_rejects.inc()
                            return  # finally-block closes the socket
                        conn.hello = envelope
                        # Reply with our own hello so the client learns
                        # which features (e.g. batching) this side
                        # supports; legacy clients just skip it.
                        try:
                            await conn.send(
                                Hello(
                                    role="server",
                                    name=self.name,
                                    features=self.features,
                                )
                            )
                        except (SendTimeoutError, ConnectionLostError):
                            return
                        continue
                    if isinstance(envelope, Heartbeat):
                        self.heartbeats_seen += 1
                        if self._c_heartbeats is not None:
                            self._c_heartbeats.inc()
                        try:
                            await conn.send(envelope)  # echo, same stamp
                        except (SendTimeoutError, ConnectionLostError):
                            return
                        continue
                    if self.handler is not None:
                        result = self.handler(envelope, sent_at, conn)
                        if asyncio.iscoroutine(result):
                            await result
                decoder.recycle(frames)
        finally:
            conn.closed = True
            if conn in self.connections:
                self.connections.remove(conn)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass
