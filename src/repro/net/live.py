"""Per-process halves of the live network experiment.

Run the receiver first; it binds an ephemeral port and announces it::

    python -m repro.net.live receiver --messages 120 --out recv.json

    LISTENING 54321

then the sender connects and streams the figure-7 sensor workload::

    python -m repro.net.live sender --port 54321 --messages 120 \
        --out send.json

Both processes build the *same* partitioned sensor handler (same source
→ same PSEs), start from the same receiver-heavy plan, and run the
paper's adaptation loop over the socket: the receiver's ``rate_scale``
emulates a loaded consumer host (figure 7's perturbation axis), the
min-cut moves the split toward the sender, and the new plan ships back
as a PLAN frame mid-stream.  ``--drop-after N`` injects a TCP reset
after the Nth delivered continuation, exercising reconnect-with-backoff
while the endpoint state (plan, profiling history) survives.

A third role fans out::

    python -m repro.net.live broker --ports 54321,54322,54323 ...

one modulator publishing to N receivers (each started with ``--name
receiverI --index I`` so their trace dumps merge cleanly), sharing
modulation up to the deepest common split and applying each receiver's
shipped plans per peer; ``--wedge-after`` on one receiver makes it go
dark mid-stream, exercising the broker's drop-oldest load leveling.

Each process writes one JSON result file: counters, per-PSE latency
quantiles, the plan timeline, transport statistics and a full
observability dump (whose tracer spans — allocated from disjoint
``id_base`` ranges, stamped with a shared wall clock — merge into one
causal tree; see :mod:`repro.tools.liveexp`).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
import time
from typing import Dict, Optional

from repro.apps.sensor.data import make_reading
from repro.apps.sensor.pipeline import build_partitioned_process
from repro.core.plan import receiver_heavy_plan
from repro.core.runtime.triggers import RateTrigger
from repro.net.broker import NetBrokerEndpoint
from repro.net.endpoint import NetReceiverEndpoint, NetSenderEndpoint
from repro.net.framing import NetEnvelopeCodec
from repro.net.tcp import TcpTransport
from repro.obs import Observability, wide_event
from repro.obs.health import WEDGED, HealthConfig

__all__ = ["run_sender", "run_receiver", "run_broker", "main"]

#: disjoint tracer id ranges so merged dumps never collide
SENDER_ID_BASE = 1 << 40
RECEIVER_ID_BASE = 2 << 40
#: per-receiver-index stride inside the receiver range (fan-out mode);
#: runs record a few thousand spans, so 2^38 ids of headroom is plenty
RECEIVER_ID_STRIDE = 1 << 38


def _calibrate(partitioned, sink, n_samples: int, repeats: int = 5) -> float:
    """Measure this host's seconds-per-cycle against the full handler.

    Per-message overhead (envelope handling, profiling observers,
    trace bookkeeping) amortizes over the handler's whole work here,
    so the rate characterizes the host rather than the split choice —
    a raw per-message measurement on the side holding a sliver of the
    work would be overhead-dominated and inflate that host's apparent
    slowness by orders of magnitude.  The reported rate is the
    *minimum* over the repeats (noise only inflates a run), matching
    the endpoints' post-transition recalibration so that an unchanged
    host re-measures inside the adoption hysteresis band.
    """
    from repro.ir.interpreter import CycleMeter

    # Warm up interpreter/compiled-closure caches before timing.
    partitioned.run_reference(make_reading(0, n_samples))
    best = None
    for i in range(repeats):
        meter = CycleMeter()
        started = time.perf_counter()
        partitioned.interpreter.run(
            partitioned.function,
            (make_reading(i, n_samples),),
            meter=meter,
        )
        elapsed = time.perf_counter() - started
        if meter.cycles > 0:
            rate = elapsed / meter.cycles
            best = rate if best is None else min(best, rate)
    sink.clear()  # calibration deliveries are not experiment results
    return best if best is not None else 1e-7


def _observability(
    host: str,
    id_base: int,
    out: Optional[str] = None,
    *,
    profile: bool = False,
    profile_interval: Optional[float] = None,
) -> Observability:
    obs = Observability()
    # Wall clock: both processes run on one machine, so timestamps are
    # directly comparable in the merged trace.
    obs.enable_tracing(clock=time.time, host=host, id_base=id_base)
    # Always-on flight recorder: structured wide events ride along in
    # the result JSON's obs dump, and a SIGTERM (the harness killing a
    # stuck process) still leaves a crash dump next to --out.
    obs.enable_flight(host=host)
    if out:
        obs.flight.install_signal_dump(out + ".flight.json")
    if profile:
        # Continuous sampling profiler: the dump rides in the result
        # JSON's obs dump and liveexp merges the per-process profiles.
        obs.enable_profiler(
            interval=profile_interval, host=host, autostart=True
        )
    return obs


def _obs_args(args: argparse.Namespace) -> Dict[str, object]:
    return {
        "profile": getattr(args, "profile", False),
        "profile_interval": getattr(args, "profile_interval", None),
    }


def _finish_profile(obs: Observability) -> None:
    """Stop sampling before the dump so the result JSON is stable."""
    if obs.profiler is not None:
        obs.profiler.stop()


def _health_config(args: argparse.Namespace) -> Optional[HealthConfig]:
    """Build a HealthConfig from ``--stale-*`` overrides, if any.

    The chaos harness shortens the staleness thresholds so a partition
    trips the breaker within a sub-second window instead of the
    production-paced defaults.
    """
    degraded = getattr(args, "stale_degraded", None)
    wedged = getattr(args, "stale_wedged", None)
    if degraded is None and wedged is None:
        return None
    kwargs = {}
    if degraded is not None:
        kwargs["stale_degraded"] = degraded
    if wedged is not None:
        kwargs["stale_wedged"] = wedged
    return HealthConfig(**kwargs)


def run_receiver(args: argparse.Namespace) -> Dict[str, object]:
    name = getattr(args, "name", None) or "receiver"
    index = getattr(args, "index", 0)
    obs = _observability(
        name,
        RECEIVER_ID_BASE + index * RECEIVER_ID_STRIDE,
        args.out,
        **_obs_args(args),
    )
    if args.quality:
        # Small window so regret windows close within a short stream.
        obs.enable_quality(regret_window=16)
    partitioned, sink = build_partitioned_process(
        n_stages=args.n_stages, backend=args.backend
    )
    plan = receiver_heavy_plan(partitioned.cut)
    rate = _calibrate(partitioned, sink, args.samples)
    endpoint = NetReceiverEndpoint(
        partitioned,
        plan=plan,
        trigger=RateTrigger(period=args.trigger_period),
        rate_scale=args.rate_scale,
        rate_override=rate,
        drop_after=args.drop_after if args.drop_after > 0 else None,
        codec=NetEnvelopeCodec(partitioned.serializer_registry),
        name=name,
        obs=obs,
        telemetry_interval=args.telemetry_interval,
        election_priority=getattr(args, "election_priority", None),
    )
    wedge_after = getattr(args, "wedge_after", 0)
    wedge_seconds = getattr(args, "wedge_seconds", 2.0)
    wedge_state = {"injected": 0}
    kill_after_plan_ships = getattr(args, "kill_after_plan_ships", 0)

    async def amain() -> None:
        _, port = await endpoint.start(args.host, args.port)
        print(f"LISTENING {port}", flush=True)
        if args.expose is not None:
            exposer = endpoint.expose_metrics(args.host, args.expose)
            print(f"EXPOSING {exposer.port}", flush=True)
        started = time.time()
        last_progress = started
        last_count = -1
        while not endpoint.done.is_set():
            if (
                kill_after_plan_ships > 0
                and endpoint.plan_ships >= kill_after_plan_ships
            ):
                # Chaos fault: die without any goodbye, the hardest way,
                # right inside the plan-apply window — the just-shipped
                # PLAN frame is in flight toward the sender when the
                # process vanishes.  No flight dump happens here; the
                # surviving processes' recorders are the evidence.
                wide_event(
                    "fault.kill", role=name, plan_ships=endpoint.plan_ships
                )
                sys.stdout.flush()
                os.kill(os.getpid(), signal.SIGKILL)
            if (
                wedge_after > 0
                and wedge_state["injected"] == 0
                and endpoint.demodulated >= wedge_after
            ):
                # Fault injection for the fan-out experiment: go dark —
                # stop the listener, drop the connection, stay down.
                # The broker's bounded per-peer queue must shed this
                # peer's backlog (drop-oldest) while the other peers
                # keep streaming untouched.
                wedge_state["injected"] = 1
                endpoint.self_health.peer("self").force(
                    WEDGED, "injected wedge"
                )
                wide_event(
                    "fault.wedge",
                    role=name,
                    at_message=endpoint.demodulated,
                    seconds=wedge_seconds,
                )
                await endpoint.server.stop()
                await asyncio.sleep(wedge_seconds)
                await endpoint.server.start(args.host, port)
                endpoint.self_health.peer("self").force(None)
                wide_event(
                    "fault.wedge.clear",
                    role=name,
                    at_message=endpoint.demodulated,
                )
                last_progress = time.time()
            now = time.time()
            if endpoint.demodulated != last_count:
                last_count = endpoint.demodulated
                last_progress = now
            if now - last_progress > args.idle_timeout:
                print("IDLE TIMEOUT", file=sys.stderr, flush=True)
                wide_event(
                    "run.idle_timeout",
                    role=name,
                    demodulated=endpoint.demodulated,
                    idle_seconds=now - last_progress,
                )
                break
            if now - started > args.timeout:
                print("DEADLINE EXCEEDED", file=sys.stderr, flush=True)
                wide_event(
                    "run.deadline_exceeded",
                    role=name,
                    demodulated=endpoint.demodulated,
                    elapsed=now - started,
                )
                break
            await asyncio.sleep(0.05)
        # Let a plan frame triggered by the last messages flush out.
        await asyncio.sleep(0.1)
        await endpoint.stop()

    asyncio.run(amain())
    _finish_profile(obs)

    window = (
        endpoint.last_demod_at - endpoint.first_demod_at
        if endpoint.first_demod_at is not None
        and endpoint.last_demod_at is not None
        else 0.0
    )
    return {
        "role": "receiver",
        "name": name,
        "index": index,
        "wedges_injected": wedge_state["injected"],
        "demodulated": endpoint.demodulated,
        "delivered": len(sink.results),
        "duplicates_skipped": endpoint.duplicates_skipped,
        "feedback_batches": endpoint.feedback_batches,
        "plan_ships": endpoint.plan_ships,
        "telemetry_pushes": endpoint.telemetry_pushes,
        "telemetry_sent": endpoint.telemetry_sent,
        "leader": endpoint.is_leader,
        "election_frames": endpoint.election_frames,
        "election": (
            endpoint.election.to_dict()
            if endpoint.election is not None
            else None
        ),
        "self_health": endpoint.self_health.to_dict(),
        "drops_injected": endpoint.drops_injected,
        "sender_reported_sent": endpoint.sender_reported_sent,
        "initial_plan_edges": sorted(list(e) for e in plan.active),
        "final_plan_edges": (
            sorted(list(e) for e in endpoint.sender_plan.active)
            if endpoint.sender_plan is not None
            else []
        ),
        "reconfigurations": [
            {
                "at_message": record.at_message,
                "cut_value": record.cut_value,
                "edges": sorted(list(e) for e in record.plan.active),
            }
            for record in endpoint.reconfig.history
        ],
        "window_seconds": window,
        "msgs_per_second": (
            (endpoint.demodulated - 1) / window if window > 0 else 0.0
        ),
        "latency_by_pse": endpoint.latency_quantiles(),
        "server": {
            "accepted": endpoint.server.accepted,
            "frames_received": endpoint.server.frames_received,
            "frames_sent": endpoint.server.frames_sent,
            "heartbeats_seen": endpoint.server.heartbeats_seen,
            "protocol_rejects": endpoint.server.protocol_rejects,
        },
        "quality": (
            endpoint.quality.report()
            if endpoint.quality is not None
            else None
        ),
        "obs": obs.to_dict(),
    }


def run_sender(args: argparse.Namespace) -> Dict[str, object]:
    obs = _observability(
        "sender", SENDER_ID_BASE, args.out, **_obs_args(args)
    )
    partitioned, _sink = build_partitioned_process(
        n_stages=args.n_stages, backend=args.backend
    )
    plan = receiver_heavy_plan(partitioned.cut)
    rate = _calibrate(partitioned, _sink, args.samples)
    codec = NetEnvelopeCodec(partitioned.serializer_registry)
    transport = TcpTransport(
        codec,
        name="sender",
        heartbeat_interval=args.heartbeat,
        connect_timeout=args.timeout,
        send_timeout=5.0,
        batching=not args.no_batching,
        flush_max_bytes=args.flush_max_bytes,
        flush_max_count=args.flush_max_count,
        flush_interval=args.flush_interval,
    )
    transport.attach_observability(obs, name="transport.tcp")
    transport.start()
    peer = transport.peer(args.host, args.port)
    endpoint = NetSenderEndpoint(
        partitioned,
        transport,
        peer,
        plan=plan,
        feedback_period=args.feedback_period,
        rate_override=rate,
        recalibrate=lambda: _calibrate(partitioned, _sink, args.samples),
        obs=obs,
        health_config=_health_config(args),
    )
    if args.expose is not None:
        exposer = endpoint.expose_metrics(args.host, args.expose)
        print(f"EXPOSING {exposer.port}", flush=True)
    started = time.time()
    for i in range(args.messages):
        endpoint.publish(make_reading(i, args.samples))
        if args.interval > 0:
            time.sleep(args.interval)
    endpoint.finish()
    drained = transport.drain(args.timeout)
    _finish_profile(obs)
    # Leave a window for a PLAN frame racing the tail of the stream.
    time.sleep(0.3)
    elapsed = time.time() - started
    result = {
        "role": "sender",
        "published": endpoint.published,
        "shipped": endpoint.shipped,
        "completed_locally": endpoint.completed_locally,
        "feedback_flushes": endpoint.feedback_flushes,
        "plan_updates_applied": endpoint.plan_updates_applied,
        "plan_duplicates_ignored": endpoint.plan_duplicates_ignored,
        "telemetry_seen": endpoint.telemetry_seen,
        "resilience": endpoint.resilience_dump(),
        "peer_health": endpoint.health.to_dict(),
        "initial_plan_edges": sorted(list(e) for e in plan.active),
        "final_plan_edges": [
            list(e) for e in endpoint.current_plan_edges
        ],
        "elapsed_seconds": elapsed,
        "drained": drained,
        "transport": {
            "messages_sent": transport.messages_sent,
            "bytes_sent": transport.bytes_sent,
            "connections": peer.connections,
            "reconnects": peer.reconnects,
            "dropped_frames": peer.dropped_frames,
            "frames_sent": peer.frames_sent,
            "frame_bytes_sent": peer.frame_bytes_sent,
            "heartbeats_sent": peer.heartbeats_sent,
            "heartbeats_echoed": peer.heartbeats_seen,
            "send_timeouts": peer.send_timeouts,
            "last_rtt": peer.last_rtt,
            "batching_negotiated": peer._batch_ok,
            "telemetry_negotiated": peer.telemetry_negotiated,
            "telemetry_frames_seen": peer.telemetry_frames_seen,
            "batches_sent": peer.batches_sent,
            "batched_frames_sent": peer.batched_frames_sent,
        },
        "obs": obs.to_dict(),
    }
    endpoint.close_exposer()
    transport.close()
    return result


def run_broker(args: argparse.Namespace) -> Dict[str, object]:
    """One modulator fanning out to every ``--ports`` receiver."""
    obs = _observability(
        "broker", SENDER_ID_BASE, args.out, **_obs_args(args)
    )
    partitioned, _sink = build_partitioned_process(
        n_stages=args.n_stages, backend=args.backend
    )
    plan = receiver_heavy_plan(partitioned.cut)
    rate = _calibrate(partitioned, _sink, args.samples)
    codec = NetEnvelopeCodec(partitioned.serializer_registry)
    transport = TcpTransport(
        codec,
        name="broker",
        heartbeat_interval=args.heartbeat,
        connect_timeout=args.timeout,
        send_timeout=5.0,
        # Snappy reconnect: a wedged receiver coming back should not
        # wait out a long backoff before its backlog drains.
        backoff_base=0.05,
        backoff_cap=0.5,
        queue_limit=args.queue_limit,
        batching=not args.no_batching,
        flush_max_bytes=args.flush_max_bytes,
        flush_max_count=args.flush_max_count,
        flush_interval=args.flush_interval,
    )
    transport.attach_observability(obs, name="transport.tcp")
    transport.start()
    endpoint = NetBrokerEndpoint(
        partitioned,
        transport,
        plan=plan,
        feedback_period=args.feedback_period,
        rate_override=rate,
        recalibrate=lambda: _calibrate(partitioned, _sink, args.samples),
        queue_limit=args.queue_limit,
        obs=obs,
        health_interval=args.health_interval,
        health_config=_health_config(args),
    )
    ports = [int(p) for p in args.ports.split(",") if p.strip()]
    for i, port in enumerate(ports):
        endpoint.subscribe(args.host, port, name=f"receiver{i}")
    if args.expose is not None:
        exposer = endpoint.expose_metrics(args.host, args.expose)
        print(f"EXPOSING {exposer.port}", flush=True)
    started = time.time()
    for i in range(args.messages):
        endpoint.publish(make_reading(i, args.samples))
        if args.interval > 0:
            time.sleep(args.interval)
    endpoint.finish()
    drained = transport.drain(args.timeout)
    _finish_profile(obs)
    # Snapshot the fleet the instant the drain completes — the Bye
    # frames just delivered are about to tear every connection down,
    # and a "disconnected" wobble at exit would mask the states the
    # run actually produced.
    endpoint.close()
    with endpoint.lock:
        for sub in endpoint.subscribers:
            endpoint._feed_sub_health(sub)
        endpoint.health.evaluate_all()
        fleet_final = endpoint.health.to_dict()
    # Leave a window for PLAN frames racing the tail of the stream.
    time.sleep(0.3)
    elapsed = time.time() - started
    result = {
        "role": "broker",
        "ports": ports,
        "initial_plan_edges": sorted(list(e) for e in plan.active),
        "elapsed_seconds": elapsed,
        "drained": drained,
        **endpoint.to_dict(),
        "fleet": fleet_final,
        "transport_totals": {
            "messages_sent": transport.messages_sent,
            "bytes_sent": transport.bytes_sent,
        },
        "obs": obs.to_dict(),
    }
    endpoint.close_exposer()
    transport.close()
    return result


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--messages", type=int, default=120)
    parser.add_argument("--samples", type=int, default=64,
                        help="samples per sensor reading")
    parser.add_argument("--n-stages", type=int, default=20)
    parser.add_argument("--backend", default="compiled",
                        choices=("tree", "compiled", "codegen"))
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="overall per-process deadline (seconds)")
    parser.add_argument("--out", default=None,
                        help="write the JSON result here (default stdout)")
    parser.add_argument("--expose", type=int, default=None, metavar="PORT",
                        help="serve /metrics on this port (0 = ephemeral; "
                        "announced as 'EXPOSING <port>')")
    parser.add_argument("--profile", action="store_true",
                        help="run the continuous sampling profiler; the "
                        "dump rides in the result JSON's obs section")
    parser.add_argument("--profile-interval", type=float, default=None,
                        help="seconds between profiler samples (default "
                        "0.01 = 100 Hz)")


def _add_health_overrides(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--stale-degraded", type=float, default=None,
                        help="seconds of peer silence before degraded "
                        "(default: HealthConfig's)")
    parser.add_argument("--stale-wedged", type=float, default=None,
                        help="seconds of peer silence before wedged — "
                        "the breaker's trip signal (default: "
                        "HealthConfig's)")


def _add_batching(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-batching", action="store_true",
                        help="disable wire batching even when the "
                        "receiver advertises it (baseline runs)")
    parser.add_argument("--flush-max-bytes", type=int, default=64 * 1024,
                        help="batch payload budget before a flush")
    parser.add_argument("--flush-max-count", type=int, default=32,
                        help="max frames gathered into one batch")
    parser.add_argument("--flush-interval", type=float, default=0.0,
                        help="seconds a lone frame lingers hoping for "
                        "company (0 = ship immediately)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.live",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="role", required=True)

    recv = sub.add_parser("receiver", help="listen and demodulate")
    _add_common(recv)
    recv.add_argument("--port", type=int, default=0,
                      help="0 binds an ephemeral port (announced on stdout)")
    recv.add_argument("--rate-scale", type=float, default=4.0,
                      help="receiver slowdown factor (emulated load)")
    recv.add_argument("--trigger-period", type=int, default=10)
    recv.add_argument("--drop-after", type=int, default=0,
                      help="inject a TCP reset after the Nth delivery")
    recv.add_argument("--idle-timeout", type=float, default=10.0)
    recv.add_argument("--quality", action="store_true",
                      help="enable regret/drift accounting on the "
                      "authoritative (receiver-side) adaptation loop")
    recv.add_argument("--name", default="receiver",
                      help="host label for this receiver's trace spans")
    recv.add_argument("--index", type=int, default=0,
                      help="fan-out slot: offsets the tracer id range so "
                      "N receiver dumps merge without span collisions")
    recv.add_argument("--wedge-after", type=int, default=0,
                      help="go dark (stop listening) after the Nth "
                      "delivery, for --wedge-seconds (0 disables)")
    recv.add_argument("--wedge-seconds", type=float, default=2.0)
    recv.add_argument("--telemetry-interval", type=float, default=0.25,
                      help="seconds between pushed TELEMETRY frames "
                      "(0 disables the push loop)")
    recv.add_argument("--election-priority", type=int, default=None,
                      help="join the receiver-side bully election with "
                      "this rank (omitted = run solo, always leader)")
    recv.add_argument("--kill-after-plan-ships", type=int, default=0,
                      help="chaos fault: SIGKILL this process right "
                      "after its Nth shipped plan (0 disables)")

    send = sub.add_parser("sender", help="connect and modulate")
    _add_common(send)
    send.add_argument("--port", type=int, required=True)
    send.add_argument("--feedback-period", type=int, default=8)
    send.add_argument("--interval", type=float, default=0.005,
                      help="pause between published messages (seconds)")
    send.add_argument("--heartbeat", type=float, default=0.5)
    _add_health_overrides(send)
    _add_batching(send)

    broker = sub.add_parser(
        "broker", help="connect to N receivers and fan out"
    )
    _add_common(broker)
    broker.add_argument("--ports", required=True,
                        help="comma-separated receiver ports")
    broker.add_argument("--feedback-period", type=int, default=8)
    broker.add_argument("--interval", type=float, default=0.005)
    broker.add_argument("--heartbeat", type=float, default=0.5)
    broker.add_argument("--queue-limit", type=int, default=64,
                        help="per-subscriber outbound frame bound "
                        "(drop-oldest beyond it)")
    broker.add_argument("--health-interval", type=float, default=0.1,
                        help="background health-evaluator cadence; keeps "
                        "staleness ticking through the drain phase "
                        "(0 disables the thread)")
    _add_health_overrides(broker)
    _add_batching(broker)

    args = parser.parse_args(argv)
    runners = {
        "receiver": run_receiver,
        "sender": run_sender,
        "broker": run_broker,
    }
    result = runners[args.role](args)
    text = json.dumps(result, indent=2, default=str)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
