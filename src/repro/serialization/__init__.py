"""Custom serialization substrate: wire format, sizing, self-sizing.

* :class:`Serializer` / :class:`SerializerRegistry` — encode/decode values
  (continuation messages, events) in a compact tag-prefixed format with
  back-references for shared objects.
* :func:`measure_size` — exact serialized size without serializing (the
  paper's "customized object serialization algorithm" for size profiling).
* :class:`SelfSizedObject` / :func:`generate_self_sizing` /
  :func:`is_self_sized` — the paper's compiler-generated size
  self-description (Appendix B, Table 1).
* :mod:`repro.serialization.format` — wire constants
  (``STRING_HEADER_SIZE`` etc.).
"""

from repro.serialization.registry import SerializableClass, SerializerRegistry
from repro.serialization.serializer import Serializer
from repro.serialization.sizing import (
    SelfSizedObject,
    generate_self_sizing,
    is_self_sized,
    measure_size,
    object_header_size,
    self_size,
)

__all__ = [
    "Serializer",
    "SerializerRegistry",
    "SerializableClass",
    "measure_size",
    "SelfSizedObject",
    "is_self_sized",
    "generate_self_sizing",
    "object_header_size",
    "self_size",
]
