"""Wire-format constants for the continuation-message serializer.

The format is a compact tag-prefixed binary encoding with back-references
for shared objects.  Sizes here define the "cost" the data-size cost model
optimizes: the paper defines a PSE's cost as "the total runtime size of the
unique objects reachable from any of the variables in [the INTER] set, plus
the total number of duplicated references to those unique objects"
(section 4.1).
"""

from __future__ import annotations

# Type tags (1 byte each).
TAG_NONE = 0x00
TAG_TRUE = 0x01
TAG_FALSE = 0x02
TAG_INT = 0x03
TAG_FLOAT = 0x04
TAG_STR = 0x05
TAG_BYTES = 0x06
TAG_BYTEARRAY = 0x07
TAG_LIST = 0x08
TAG_TUPLE = 0x09
TAG_DICT = 0x0A
TAG_SET = 0x0B
TAG_REF = 0x0C
TAG_OBJ = 0x0D
TAG_INT_ARRAY = 0x0E
TAG_FLOAT_ARRAY = 0x0F
#: typed array.array('q') — the analogue of Java's int[]
TAG_TYPED_INT_ARRAY = 0x10
#: typed array.array('d') — the analogue of Java's double[]
TAG_TYPED_FLOAT_ARRAY = 0x11

#: bytes of a type tag
TAG_SIZE = 1
#: bytes of a length/count prefix
LEN_SIZE = 4
#: bytes of an encoded int payload
INT_SIZE = 8
#: bytes of an encoded float payload
FLOAT_SIZE = 8
#: bytes of a back-reference payload
REF_SIZE = 4

# Header sizes exposed to self-sizing methods, mirroring the paper's
# Appendix B (``ObjectSize.STRING_HEADER_SIZE`` etc.).
STRING_HEADER_SIZE = TAG_SIZE + LEN_SIZE
OBJECT_HEADER_SIZE = TAG_SIZE + LEN_SIZE  # tag + field count; class name extra
ARRAY_HEADER_SIZE = TAG_SIZE + LEN_SIZE
INT_VALUE_SIZE = TAG_SIZE + INT_SIZE
FLOAT_VALUE_SIZE = TAG_SIZE + FLOAT_SIZE
BOOL_VALUE_SIZE = TAG_SIZE
NONE_VALUE_SIZE = TAG_SIZE
