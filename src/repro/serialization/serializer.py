"""Binary serializer for continuation messages and events.

A from-scratch encoder/decoder with:

* a tag-prefixed compact format (see :mod:`repro.serialization.format`),
* back-references for shared/duplicated objects, so the encoded size
  matches the paper's cost definition ("unique objects ... plus the total
  number of duplicated references", section 4.1),
* a fast path for primitive arrays (``bytes``/``bytearray`` and homogeneous
  int/float lists registered as arrays).

Cycles through containers are supported via the same back-reference
mechanism.
"""

from __future__ import annotations

import array
import struct
from typing import Dict, List, Optional, Tuple

from repro.errors import SerializationError
from repro.serialization import format as wf
from repro.serialization.registry import SerializerRegistry

_INT_PACK = struct.Struct(">q")
_FLOAT_PACK = struct.Struct(">d")
_LEN_PACK = struct.Struct(">I")


class Serializer:
    """Encode/decode Python values against a :class:`SerializerRegistry`."""

    def __init__(self, registry: Optional[SerializerRegistry] = None) -> None:
        self.registry = registry or SerializerRegistry()

    # -- encoding ---------------------------------------------------------

    def serialize(self, value: object) -> bytes:
        out: List[bytes] = []
        memo: Dict[int, int] = {}
        self._encode(value, out, memo)
        return b"".join(out)

    def _encode(self, value: object, out: List[bytes], memo: Dict[int, int]) -> None:
        if value is None:
            out.append(bytes((wf.TAG_NONE,)))
            return
        if value is True:
            out.append(bytes((wf.TAG_TRUE,)))
            return
        if value is False:
            out.append(bytes((wf.TAG_FALSE,)))
            return
        if isinstance(value, int):
            out.append(bytes((wf.TAG_INT,)))
            try:
                out.append(_INT_PACK.pack(value))
            except struct.error:
                raise SerializationError(
                    f"integer {value} exceeds 64-bit wire range"
                ) from None
            return
        if isinstance(value, float):
            out.append(bytes((wf.TAG_FLOAT,)))
            out.append(_FLOAT_PACK.pack(value))
            return
        if isinstance(value, str):
            data = value.encode("utf-8")
            out.append(bytes((wf.TAG_STR,)))
            out.append(_LEN_PACK.pack(len(data)))
            out.append(data)
            return

        # Shared-object handling from here down.
        oid = id(value)
        if oid in memo:
            out.append(bytes((wf.TAG_REF,)))
            out.append(_LEN_PACK.pack(memo[oid]))
            return

        if isinstance(value, array.array):
            memo[oid] = len(memo)
            out.append(_pack_typed_array(value))
            return
        if isinstance(value, bytes):
            memo[oid] = len(memo)
            out.append(bytes((wf.TAG_BYTES,)))
            out.append(_LEN_PACK.pack(len(value)))
            out.append(value)
            return
        if isinstance(value, bytearray):
            memo[oid] = len(memo)
            out.append(bytes((wf.TAG_BYTEARRAY,)))
            out.append(_LEN_PACK.pack(len(value)))
            out.append(bytes(value))
            return
        if isinstance(value, list):
            memo[oid] = len(memo)
            packed = _pack_primitive_array(value)
            if packed is not None:
                out.append(packed)
                return
            out.append(bytes((wf.TAG_LIST,)))
            out.append(_LEN_PACK.pack(len(value)))
            for item in value:
                self._encode(item, out, memo)
            return
        if isinstance(value, tuple):
            memo[oid] = len(memo)
            out.append(bytes((wf.TAG_TUPLE,)))
            out.append(_LEN_PACK.pack(len(value)))
            for item in value:
                self._encode(item, out, memo)
            return
        if isinstance(value, dict):
            memo[oid] = len(memo)
            out.append(bytes((wf.TAG_DICT,)))
            out.append(_LEN_PACK.pack(len(value)))
            for k, v in value.items():
                self._encode(k, out, memo)
                self._encode(v, out, memo)
            return
        if isinstance(value, (set, frozenset)):
            memo[oid] = len(memo)
            out.append(bytes((wf.TAG_SET,)))
            out.append(_LEN_PACK.pack(len(value)))
            for item in sorted(value, key=repr):
                self._encode(item, out, memo)
            return

        # Registered application object.
        entry = self.registry.by_class(type(value))
        memo[oid] = len(memo)
        fields = self.registry.fields_of(value)
        name = entry.name.encode("utf-8")
        out.append(bytes((wf.TAG_OBJ,)))
        out.append(_LEN_PACK.pack(len(name)))
        out.append(name)
        out.append(_LEN_PACK.pack(len(fields)))
        for f in fields:
            fname = f.encode("utf-8")
            out.append(_LEN_PACK.pack(len(fname)))
            out.append(fname)
            try:
                attr = getattr(value, f)
            except AttributeError:
                raise SerializationError(
                    f"{entry.name}.{f} missing on instance during serialization"
                ) from None
            self._encode(attr, out, memo)

    # -- decoding ---------------------------------------------------------

    def deserialize(self, data: bytes) -> object:
        try:
            value, offset = self._decode(data, 0, [])
        except SerializationError:
            raise
        except (
            struct.error,
            IndexError,
            UnicodeDecodeError,
            OverflowError,
            ValueError,
            TypeError,
            RecursionError,
        ) as exc:
            # Corrupt or truncated wire data must surface as the library's
            # own error type, never a low-level decoding exception.
            raise SerializationError(
                f"malformed wire data: {type(exc).__name__}: {exc}"
            ) from exc
        if offset != len(data):
            raise SerializationError(
                f"{len(data) - offset} trailing bytes after deserialization"
            )
        return value

    def _decode(self, data: bytes, offset: int, memo: List[object]) -> Tuple[object, int]:
        try:
            tag = data[offset]
        except IndexError:
            raise SerializationError("truncated wire data") from None
        offset += 1
        if tag == wf.TAG_NONE:
            return None, offset
        if tag == wf.TAG_TRUE:
            return True, offset
        if tag == wf.TAG_FALSE:
            return False, offset
        if tag == wf.TAG_INT:
            (value,) = _INT_PACK.unpack_from(data, offset)
            return value, offset + wf.INT_SIZE
        if tag == wf.TAG_FLOAT:
            (value,) = _FLOAT_PACK.unpack_from(data, offset)
            return value, offset + wf.FLOAT_SIZE
        if tag == wf.TAG_STR:
            (n,) = _LEN_PACK.unpack_from(data, offset)
            offset += wf.LEN_SIZE
            # str() decodes any buffer-protocol object (bytes,
            # bytearray, pooled memoryview payloads) identically.
            return str(data[offset : offset + n], "utf-8"), offset + n
        if tag == wf.TAG_REF:
            (idx,) = _LEN_PACK.unpack_from(data, offset)
            offset += wf.REF_SIZE
            try:
                return memo[idx], offset
            except IndexError:
                raise SerializationError(
                    f"dangling back-reference {idx}"
                ) from None
        if tag == wf.TAG_BYTES:
            (n,) = _LEN_PACK.unpack_from(data, offset)
            offset += wf.LEN_SIZE
            value = data[offset : offset + n]
            if type(value) is not bytes:
                # Slicing a memoryview (pooled frame payload) yields a
                # view that would alias the recycled buffer; decoded
                # values must own their bytes.
                value = bytes(value)
            memo.append(value)
            return value, offset + n
        if tag == wf.TAG_BYTEARRAY:
            (n,) = _LEN_PACK.unpack_from(data, offset)
            offset += wf.LEN_SIZE
            value = bytearray(data[offset : offset + n])
            memo.append(value)
            return value, offset + n
        if tag == wf.TAG_TYPED_INT_ARRAY:
            (n,) = _LEN_PACK.unpack_from(data, offset)
            offset += wf.LEN_SIZE
            value = array.array(
                "q", struct.unpack_from(f">{n}q", data, offset)
            )
            memo.append(value)
            return value, offset + n * wf.INT_SIZE
        if tag == wf.TAG_TYPED_FLOAT_ARRAY:
            (n,) = _LEN_PACK.unpack_from(data, offset)
            offset += wf.LEN_SIZE
            value = array.array(
                "d", struct.unpack_from(f">{n}d", data, offset)
            )
            memo.append(value)
            return value, offset + n * wf.FLOAT_SIZE
        if tag == wf.TAG_INT_ARRAY:
            (n,) = _LEN_PACK.unpack_from(data, offset)
            offset += wf.LEN_SIZE
            value = list(struct.unpack_from(f">{n}q", data, offset))
            memo.append(value)
            return value, offset + n * wf.INT_SIZE
        if tag == wf.TAG_FLOAT_ARRAY:
            (n,) = _LEN_PACK.unpack_from(data, offset)
            offset += wf.LEN_SIZE
            value = list(struct.unpack_from(f">{n}d", data, offset))
            memo.append(value)
            return value, offset + n * wf.FLOAT_SIZE
        if tag == wf.TAG_LIST:
            (n,) = _LEN_PACK.unpack_from(data, offset)
            offset += wf.LEN_SIZE
            value: List[object] = []
            memo.append(value)
            for _ in range(n):
                item, offset = self._decode(data, offset, memo)
                value.append(item)
            return value, offset
        if tag == wf.TAG_TUPLE:
            (n,) = _LEN_PACK.unpack_from(data, offset)
            offset += wf.LEN_SIZE
            # Tuples are immutable: decode into a list first.  A cycle
            # through a tuple cannot be reconstructed; reject it.
            slot = len(memo)
            memo.append(None)
            items: List[object] = []
            for _ in range(n):
                item, offset = self._decode(data, offset, memo)
                items.append(item)
            value_t = tuple(items)
            memo[slot] = value_t
            return value_t, offset
        if tag == wf.TAG_DICT:
            (n,) = _LEN_PACK.unpack_from(data, offset)
            offset += wf.LEN_SIZE
            value_d: Dict[object, object] = {}
            memo.append(value_d)
            for _ in range(n):
                k, offset = self._decode(data, offset, memo)
                v, offset = self._decode(data, offset, memo)
                value_d[k] = v
            return value_d, offset
        if tag == wf.TAG_SET:
            (n,) = _LEN_PACK.unpack_from(data, offset)
            offset += wf.LEN_SIZE
            items = []
            slot = len(memo)
            memo.append(None)
            for _ in range(n):
                item, offset = self._decode(data, offset, memo)
                items.append(item)
            value_s = set(items)
            memo[slot] = value_s
            return value_s, offset
        if tag == wf.TAG_OBJ:
            (n,) = _LEN_PACK.unpack_from(data, offset)
            offset += wf.LEN_SIZE
            name = str(data[offset : offset + n], "utf-8")
            offset += n
            entry = self.registry.by_name(name)
            obj = entry.cls.__new__(entry.cls)
            memo.append(obj)
            (nfields,) = _LEN_PACK.unpack_from(data, offset)
            offset += wf.LEN_SIZE
            for _ in range(nfields):
                (fn,) = _LEN_PACK.unpack_from(data, offset)
                offset += wf.LEN_SIZE
                fname = str(data[offset : offset + fn], "utf-8")
                offset += fn
                fval, offset = self._decode(data, offset, memo)
                object.__setattr__(obj, fname, fval)
            return obj, offset
        raise SerializationError(f"unknown wire tag 0x{tag:02x}")


def _pack_typed_array(value: "array.array") -> bytes:
    """Encode a typed numeric array; integer codes widen to 64-bit."""
    code = value.typecode
    n = len(value)
    if code in ("b", "B", "h", "H", "i", "I", "l", "L", "q"):
        body = struct.pack(f">{n}q", *value)
        return (
            bytes((wf.TAG_TYPED_INT_ARRAY,)) + _LEN_PACK.pack(n) + body
        )
    if code in ("f", "d"):
        body = struct.pack(f">{n}d", *value)
        return (
            bytes((wf.TAG_TYPED_FLOAT_ARRAY,)) + _LEN_PACK.pack(n) + body
        )
    raise SerializationError(
        f"unsupported array typecode {code!r}"
    )


def _pack_primitive_array(value: list) -> Optional[bytes]:
    """Fast-path encoding for homogeneous int/float lists; None if mixed."""
    if not value:
        return None
    kinds = set(map(type, value))
    if kinds == {int}:
        try:
            body = struct.pack(f">{len(value)}q", *value)
        except struct.error:
            return None
        return (
            bytes((wf.TAG_INT_ARRAY,)) + _LEN_PACK.pack(len(value)) + body
        )
    if kinds == {float}:
        body = struct.pack(f">{len(value)}d", *value)
        return (
            bytes((wf.TAG_FLOAT_ARRAY,)) + _LEN_PACK.pack(len(value)) + body
        )
    return None
