"""Size calculation for the data-size cost model (paper section 4.1).

Three mechanisms, matching the paper's Table 1 columns:

1. **Serialization** — ``len(serializer.serialize(obj))``: pays for actually
   producing the bytes.
2. **Generic size calculation** — :func:`measure_size`: walks the object
   graph with the same traversal as the serializer but only *counts* bytes.
   Primitive arrays (``bytes``/``bytearray``/homogeneous numeric lists) are
   sized without per-element encoding, which is why the paper notes the
   customized algorithm "is fast for variables referencing primitive
   arrays".
3. **Self-describing size methods** — classes with a ``size_of()`` method
   report their own wire size; no traversal at all.
   :func:`generate_self_sizing` plays the role of the paper's compiler:
   given a static field-type spec it synthesizes and attaches ``size_of``.

All three agree byte-for-byte when the self-sizing spec is accurate; the
test suite enforces ``measure_size(x) == len(serialize(x))`` as an
invariant.
"""

from __future__ import annotations

import array
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.errors import UnsizedObjectError
from repro.serialization import format as wf
from repro.serialization.registry import SerializerRegistry


class SelfSizedObject:
    """Optional base class mirroring the paper's ``SelfSizedObject``.

    The contract: ``size_of()`` returns the number of bytes
    :func:`measure_size` would compute for the object's *contents* —
    everything after the object's own header (tag + class name + field
    count + field names).  Inheriting is optional; any class with a
    ``size_of`` method is treated as self-sized (see :func:`is_self_sized`).
    """

    def size_of(self) -> int:
        raise NotImplementedError


def is_self_sized(value: object) -> bool:
    """True when *value*'s class defines a callable ``size_of`` method."""
    return callable(getattr(type(value), "size_of", None))


def object_header_size(name: str, fields: Tuple[str, ...]) -> int:
    """Wire bytes of an object's header: tag, class name, field names."""
    size = wf.TAG_SIZE + wf.LEN_SIZE + len(name.encode("utf-8")) + wf.LEN_SIZE
    for f in fields:
        size += wf.LEN_SIZE + len(f.encode("utf-8"))
    return size


def measure_size(
    value: object,
    registry: Optional[SerializerRegistry] = None,
    *,
    use_self_sizing: bool = False,
) -> int:
    """Compute the exact serialized size of *value* without serializing.

    With ``use_self_sizing=True``, self-sized objects short-circuit the
    traversal via their ``size_of`` method.
    """
    registry = registry or SerializerRegistry()
    memo: Dict[int, int] = {}
    return _measure(value, registry, memo, use_self_sizing)


def _measure(
    value: object,
    registry: SerializerRegistry,
    memo: Dict[int, int],
    self_sizing: bool,
) -> int:
    if value is None or value is True or value is False:
        return wf.TAG_SIZE
    if isinstance(value, int):
        return wf.TAG_SIZE + wf.INT_SIZE
    if isinstance(value, float):
        return wf.TAG_SIZE + wf.FLOAT_SIZE
    if isinstance(value, str):
        return wf.TAG_SIZE + wf.LEN_SIZE + len(value.encode("utf-8"))

    oid = id(value)
    if oid in memo:
        return wf.TAG_SIZE + wf.REF_SIZE

    if isinstance(value, array.array):
        # O(1): the typed-array analogue of Java's int[] — length alone
        # determines the wire size (integer codes widen to 64-bit).
        memo[oid] = len(memo)
        if value.typecode in ("f", "d"):
            return wf.TAG_SIZE + wf.LEN_SIZE + len(value) * wf.FLOAT_SIZE
        return wf.TAG_SIZE + wf.LEN_SIZE + len(value) * wf.INT_SIZE
    if isinstance(value, (bytes, bytearray)):
        memo[oid] = len(memo)
        return wf.TAG_SIZE + wf.LEN_SIZE + len(value)
    if isinstance(value, list):
        memo[oid] = len(memo)
        prim = _primitive_array_size(value)
        if prim is not None:
            return prim
        size = wf.TAG_SIZE + wf.LEN_SIZE
        for item in value:
            size += _measure(item, registry, memo, self_sizing)
        return size
    if isinstance(value, tuple):
        memo[oid] = len(memo)
        size = wf.TAG_SIZE + wf.LEN_SIZE
        for item in value:
            size += _measure(item, registry, memo, self_sizing)
        return size
    if isinstance(value, dict):
        memo[oid] = len(memo)
        size = wf.TAG_SIZE + wf.LEN_SIZE
        for k, v in value.items():
            size += _measure(k, registry, memo, self_sizing)
            size += _measure(v, registry, memo, self_sizing)
        return size
    if isinstance(value, (set, frozenset)):
        memo[oid] = len(memo)
        size = wf.TAG_SIZE + wf.LEN_SIZE
        for item in value:
            size += _measure(item, registry, memo, self_sizing)
        return size

    # Application object.
    entry = registry.by_class(type(value))
    memo[oid] = len(memo)
    fields = registry.fields_of(value)
    header = object_header_size(entry.name, fields)
    if self_sizing and is_self_sized(value):
        return header + value.size_of()
    size = header
    for f in fields:
        try:
            attr = getattr(value, f)
        except AttributeError:
            raise UnsizedObjectError(
                f"{entry.name}.{f} missing on instance during size calculation"
            ) from None
        size += _measure(attr, registry, memo, self_sizing)
    return size


def _primitive_array_size(value: list) -> Optional[int]:
    """Sizing for homogeneous numeric lists without per-element encoding.

    The checks run at C speed (set/map/min/max), which is what makes the
    customized algorithm "fast for variables referencing primitive arrays"
    (paper section 4.1): no per-element Python loop, no encoding.
    """
    if not value:
        return None
    kinds = set(map(type, value))
    if kinds == {int}:
        if min(value) >= -(2 ** 63) and max(value) < 2 ** 63:
            return wf.TAG_SIZE + wf.LEN_SIZE + len(value) * wf.INT_SIZE
        return None
    if kinds == {float}:
        return wf.TAG_SIZE + wf.LEN_SIZE + len(value) * wf.FLOAT_SIZE
    return None


#: Field-type atoms accepted by :func:`generate_self_sizing`, mapped to a
#: content-size function over the field value.
_FIELD_SIZERS: Dict[str, Callable[[object], int]] = {
    "int": lambda v: wf.INT_VALUE_SIZE,
    "float": lambda v: wf.FLOAT_VALUE_SIZE,
    "bool": lambda v: wf.BOOL_VALUE_SIZE,
    "none": lambda v: wf.NONE_VALUE_SIZE,
    "str": lambda v: wf.STRING_HEADER_SIZE + len(v.encode("utf-8")),
    "bytes": lambda v: wf.ARRAY_HEADER_SIZE + len(v),
    "int_array": lambda v: wf.ARRAY_HEADER_SIZE + len(v) * wf.INT_SIZE,
    "float_array": lambda v: wf.ARRAY_HEADER_SIZE + len(v) * wf.FLOAT_SIZE,
}


def self_size(value: object, registry: SerializerRegistry) -> int:
    """Fast full-object size via the self-describing method.

    Equivalent to ``measure_size(value, registry, use_self_sizing=True)``
    for a self-sized object, but skips the generic dispatcher: one cached
    header constant plus the generated ``size_of``.
    """
    entry = registry.by_class(type(value))
    if entry.fields is None:
        raise UnsizedObjectError(
            f"{entry.name} has no fixed field spec; register via "
            f"generate_self_sizing"
        )
    header = getattr(entry, "_header_size", None)
    if header is None:
        header = object_header_size(entry.name, entry.fields)
        entry._header_size = header
    return header + value.size_of()


def _nested_object_size(value: object, registry: SerializerRegistry) -> int:
    """Size of a nested object field inside a generated size_of."""
    if is_self_sized(value):
        return self_size(value, registry)
    return measure_size(value, registry, use_self_sizing=True)


def generate_self_sizing(
    cls: type,
    field_types: Mapping[str, str],
    registry: SerializerRegistry,
) -> type:
    """Synthesize and attach a ``size_of`` method to *cls*.

    This is the paper's "compiler-generated, self-defined size calculation
    method" (section 4.1 / Appendix B): the method is generated as source
    code with every statically-known contribution folded into one constant
    — exactly like the paper's hand-shown ``sizeOf`` bodies — then
    compiled.  ``field_types`` maps each serialized field to an atom from
    ``int, float, bool, none, str, bytes, int_array, float_array``, or
    ``object`` for a nested registered object (sized via its own
    ``size_of`` when available, else a generic walk).

    The class is also registered with *registry* with its fields in spec
    order.  Returns *cls* for decorator-style use.
    """
    fields = tuple(field_types)
    registry.register(cls, fields=fields)

    constant = 0
    terms = []
    for fname, ftype in field_types.items():
        if ftype == "int":
            constant += wf.INT_VALUE_SIZE
        elif ftype == "float":
            constant += wf.FLOAT_VALUE_SIZE
        elif ftype == "bool":
            constant += wf.BOOL_VALUE_SIZE
        elif ftype == "none":
            constant += wf.NONE_VALUE_SIZE
        elif ftype == "str":
            constant += wf.STRING_HEADER_SIZE
            terms.append(f"len(self.{fname}.encode('utf-8'))")
        elif ftype == "bytes":
            constant += wf.ARRAY_HEADER_SIZE
            terms.append(f"len(self.{fname})")
        elif ftype == "int_array":
            constant += wf.ARRAY_HEADER_SIZE
            terms.append(f"len(self.{fname}) * {wf.INT_SIZE}")
        elif ftype == "float_array":
            constant += wf.ARRAY_HEADER_SIZE
            terms.append(f"len(self.{fname}) * {wf.FLOAT_SIZE}")
        elif ftype == "object":
            terms.append(f"_nested(self.{fname}, _registry)")
        else:
            raise UnsizedObjectError(
                f"unknown field type {ftype!r} for {cls.__name__}.{fname}"
            )

    body = " + ".join([str(constant)] + terms)
    source = f"def size_of(self):\n    return {body}\n"
    namespace = {"_nested": _nested_object_size, "_registry": registry}
    exec(source, namespace)  # the "compiler" emitting the method
    size_of = namespace["size_of"]
    size_of.__generated_source__ = source
    cls.size_of = size_of
    return cls
