"""Registration of application classes with the serializer.

The paper's prototype serializes application objects (e.g. ``ImageData``)
with either reflection (slow) or compiler-generated self-describing methods
(fast).  Here, a class becomes serializable by registration; the entry
records which attributes travel on the wire.  When ``fields`` is omitted,
the instance ``__dict__`` is used — the reflective slow path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Type

from repro.errors import SerializationError


@dataclass
class SerializableClass:
    """One registered wire class."""

    name: str
    cls: type
    #: attribute names serialized, in order; None = reflect over __dict__
    fields: Optional[Tuple[str, ...]] = None


class SerializerRegistry:
    """Maps class ↔ wire name for the serializer and the sizer."""

    def __init__(self) -> None:
        self._by_name: Dict[str, SerializableClass] = {}
        self._by_cls: Dict[type, SerializableClass] = {}

    def register(
        self,
        cls: type,
        *,
        name: Optional[str] = None,
        fields: Optional[Sequence[str]] = None,
    ) -> SerializableClass:
        entry = SerializableClass(
            name=name or cls.__name__,
            cls=cls,
            fields=tuple(fields) if fields is not None else None,
        )
        self._by_name[entry.name] = entry
        self._by_cls[cls] = entry
        return entry

    def by_name(self, name: str) -> SerializableClass:
        try:
            return self._by_name[name]
        except KeyError:
            raise SerializationError(
                f"class {name!r} is not registered with the serializer"
            ) from None

    def by_class(self, cls: type) -> SerializableClass:
        try:
            return self._by_cls[cls]
        except KeyError:
            raise SerializationError(
                f"{cls.__name__} is not registered with the serializer; "
                f"register it or implement SelfSizedObject"
            ) from None

    def knows_class(self, cls: type) -> bool:
        return cls in self._by_cls

    def fields_of(self, obj: object) -> Tuple[str, ...]:
        """The attribute names serialized for *obj*."""
        entry = self.by_class(type(obj))
        if entry.fields is not None:
            return entry.fields
        return tuple(sorted(vars(obj)))
