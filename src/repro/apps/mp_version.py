"""Method Partitioning as a pipeline :class:`~repro.apps.harness.Version`.

Wires a :class:`~repro.core.PartitionedMethod` into the experiment harness
with the full adaptation loop of the paper:

* the modulator runs on the sender host (cycles paid there); INTER-set
  sizes and work counts are profiled on both sides;
* seconds-per-cycle rates are measured from *simulated* service times, so
  host speed and perturbation load flow into the execution-time model;
* the Reconfiguration Unit (receiver-located by default) re-runs min-cut
  when its trigger fires, and the new plan travels back over the feedback
  link with real latency before the modulator's flags flip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.harness import ReceiverShare, SenderShare, Version
from repro.core.partitioned import PartitionedMethod
from repro.core.plan import PartitioningPlan
from repro.core.runtime.triggers import (
    CompositeTrigger,
    DriftTrigger,
    FeedbackTrigger,
    RateTrigger,
)
from repro.obs.trace import ContinuationShipped
from repro.simnet.cluster import Testbed
from repro.simnet.simulator import Simulator

#: Wire size of a plan update: a handful of edge flags.
_PLAN_UPDATE_BYTES = 64.0


class MethodPartitioningVersion(Version):
    """The adaptive implementation of the paper's evaluations."""

    name = "Method Partitioning"

    def __init__(
        self,
        partitioned: PartitionedMethod,
        *,
        plan: Optional[PartitioningPlan] = None,
        trigger: Optional[FeedbackTrigger] = None,
        sample_period: int = 1,
        ewma_alpha: float = 0.4,
        adaptive: bool = True,
        location: str = "receiver",
        feedback_period: Optional[int] = None,
        obs=None,
    ) -> None:
        """``location`` places the Reconfiguration Unit (paper section 2.5):
        ``"sender"`` re-selects plans right after each modulator run and
        flips the flags locally (zero feedback latency — best when the
        modulator's own measurements dominate, as in the data-size model);
        ``"receiver"`` re-selects after each demodulator run and ships the
        plan back over the feedback link with real latency.

        ``feedback_period`` (receiver location only) makes profiling
        distribution explicit: the modulator records into a
        :class:`RemoteProfilingProxy` and its observations travel to the
        receiver-side unit as a feedback message every N messages, paying
        bytes and latency.  ``None`` keeps the default instantly-shared
        unit (equivalent to flushing every message at zero cost).
        """
        if location not in ("sender", "receiver"):
            raise ValueError("location must be 'sender' or 'receiver'")
        if feedback_period is not None and location != "receiver":
            raise ValueError(
                "feedback_period applies to receiver-located "
                "reconfiguration only"
            )
        self.partitioned = partitioned
        self.location = location
        self.feedback_period = feedback_period
        self.obs = obs
        if obs is not None:
            partitioned.interpreter.attach_observability(obs)
        self.profiling = partitioned.make_profiling_unit(
            sample_period=sample_period, ewma_alpha=ewma_alpha, obs=obs
        )
        self.sender_proxy = None
        modulator_profiling = self.profiling
        if feedback_period is not None:
            from repro.core.runtime.feedback import RemoteProfilingProxy

            self.sender_proxy = RemoteProfilingProxy(
                partitioned.cut, sample_period=sample_period, obs=obs
            )
            modulator_profiling = self.sender_proxy
        # Rates come from simulated service times (see on_*_done), so the
        # modulator/demodulator must not record their own cycle-based rates.
        self.modulator = partitioned.make_modulator(
            plan=plan,
            profiling=modulator_profiling,
            record_rates=False,
            obs=obs,
        )
        self.demodulator = partitioned.make_demodulator(
            profiling=self.profiling, record_rates=False, obs=obs
        )
        self.adaptive = adaptive
        # Adaptation-quality layer (regret + drift): built only when the
        # attached Observability opted in via obs.quality_config.
        self.quality = partitioned.make_quality(obs)
        effective_trigger = trigger or RateTrigger(period=10)
        if (
            self.quality is not None
            and obs.quality_config.feed_trigger
            and adaptive
        ):
            # Detected model drift forces a recompute alongside whatever
            # the configured trigger would do.
            effective_trigger = CompositeTrigger(
                effective_trigger, DriftTrigger(self.quality.drift)
            )
        self.reconfig = (
            partitioned.make_reconfiguration_unit(
                trigger=effective_trigger,
                location=location,
                obs=obs,
                quality=self.quality,
            )
            if adaptive
            else None
        )
        self.plan_updates_applied = 0
        self.feedback_bytes = 0.0
        self.feedback_messages = 0
        # Simulation context captured in prepare(); span bookkeeping for
        # retiming modulate/demodulate spans to host-execution windows.
        # The producer/consumer generators are strictly sequential per
        # side, so at most one span per side is pending at any time.
        self._sender_host: Optional[str] = None
        self._receiver_host: Optional[str] = None
        self._link_name: Optional[str] = None
        self._feedback_link_name: Optional[str] = None
        self._pending_mod_span = None
        self._pending_demod_span = None
        self._pending_ship_end: Optional[float] = None

    def _tracer(self):
        obs = self.obs
        return obs.tracing if obs is not None else None

    def prepare(self, sim: Simulator, testbed: Testbed) -> None:
        self._sender_host = testbed.sender.name
        self._receiver_host = testbed.receiver.name
        self._link_name = testbed.link.name
        self._feedback_link_name = testbed.feedback_link.name
        if self.obs is not None:
            # Aligns an attached tracer's clock to simulated time.
            sim.attach_observability(self.obs)
            testbed.sender.attach_observability(self.obs)
            testbed.receiver.attach_observability(self.obs)
            testbed.link.attach_observability(self.obs)
            testbed.feedback_link.attach_observability(self.obs)

    # -- Version interface -----------------------------------------------------

    def sender_share(self, event: object) -> SenderShare:
        result = self.modulator.process(event)
        self._pending_mod_span = result.span
        if result.completed:
            return SenderShare(
                payload=None, size=0.0, cycles=result.cycles, info=None
            )
        if result.message is None:  # filtered at the sender
            return SenderShare(
                payload=None, size=0.0, cycles=result.cycles, info=None
            )
        size = float(self.partitioned.codec.size(result.message))
        if self.quality is not None:
            # Hindsight pricing of the split this message actually took,
            # plus the wire-bytes drift channel (predicted INTER size vs.
            # the continuation's real serialized size).
            self.quality.observe_message(result.edge, self.profiling)
            self.quality.observe_ship_bytes(
                result.edge, size, self.profiling.messages_seen
            )
        if self.obs is not None:
            self.obs.trace.record(
                ContinuationShipped(
                    pse_id=str(result.message.pse_id), bytes=size
                )
            )
            tracer = self.obs.tracing
            if tracer is not None:
                tracer.observe_pse(str(result.message.pse_id), size=size)
        return SenderShare(
            payload=result.message,
            size=size,
            cycles=result.cycles,
            info=result.edge,
        )

    def receiver_share(self, payload: object) -> ReceiverShare:
        outcome = self.demodulator.process(payload)
        self._pending_demod_span = outcome.span
        return ReceiverShare(cycles=outcome.cycles, info=outcome.edge)

    def on_sender_done(
        self,
        share: SenderShare,
        service_time: float,
        sim: Simulator,
        testbed: Testbed,
    ) -> None:
        recorder = self.sender_proxy or self.profiling
        if share.cycles > 0:
            recorder.record_sender_rate(service_time, share.cycles)
        if (
            self.quality is not None
            and share.info is not None
            and share.cycles > 0
        ):
            self.quality.observe_mod_time(
                share.info, service_time, self.profiling.messages_seen
            )
        span = self._pending_mod_span
        if span is not None:
            self._pending_mod_span = None
            # Snap the modulate span to the host's actual service window.
            self._tracer().retime(
                span,
                sim.now - service_time,
                sim.now,
                host=self._sender_host,
            )
        if self.sender_proxy is not None:
            self._maybe_flush_feedback(sim, testbed)
        if self.location == "sender":
            self._maybe_reconfigure(sim, testbed)

    def _maybe_flush_feedback(self, sim: Simulator, testbed: Testbed) -> None:
        """Ship buffered sender-side observations over the feedback link."""
        proxy = self.sender_proxy
        if proxy.messages_seen == 0 or (
            proxy.messages_seen % self.feedback_period != 0
        ):
            return
        if proxy.pending == 0:
            return
        from repro.core.runtime.feedback import ingest

        payload, size = proxy.flush()
        self.feedback_bytes += size
        self.feedback_messages += 1
        # Sender-side observations travel WITH the data (forward link),
        # sharing its bandwidth — monitoring traffic is not free.
        arrival = testbed.link.delivery_time(size)
        tracer = self._tracer()
        ingest_ctx = None
        if tracer is not None:
            trace_id = tracer.start_trace(force=True)
            flush_span = tracer.record(
                "feedback.flush",
                trace_id=trace_id,
                start=sim.now,
                end=sim.now,
                host=self._sender_host,
                attrs={"records": len(payload), "bytes": size},
            )
            ship_span = tracer.record(
                "feedback.ship",
                trace_id=trace_id,
                parent_id=flush_span.span_id,
                start=sim.now,
                end=arrival,
                host=self._link_name,
                attrs={"bytes": size},
            )
            ingest_ctx = (trace_id, ship_span.span_id)

        def _ingest(_v, p=payload, ctx=ingest_ctx, at=arrival):
            if ctx is not None:
                # Clamp to the ship span's end: rescheduling through the
                # event heap can round the fire time fractionally early.
                t = max(sim.now, at)
                tracer.record(
                    "feedback.ingest",
                    trace_id=ctx[0],
                    parent_id=ctx[1],
                    start=t,
                    end=t,
                    host=self._receiver_host,
                    attrs={"records": len(p)},
                )
            ingest(self.profiling, p)

        sim.schedule(arrival - sim.now, _ingest, None)

    def on_receiver_done(
        self,
        share: ReceiverShare,
        service_time: float,
        sim: Simulator,
        testbed: Testbed,
    ) -> None:
        if share.cycles > 0:
            self.profiling.record_receiver_rate(service_time, share.cycles)
        if (
            self.quality is not None
            and share.info is not None
            and share.cycles > 0
        ):
            self.quality.observe_demod_time(
                share.info, service_time, self.profiling.messages_seen
            )
        span = self._pending_demod_span
        if span is not None:
            self._pending_demod_span = None
            tracer = self._tracer()
            # The demodulator cannot start before the message arrived;
            # clamping absorbs the rounding in ``now - service_time``.
            start = sim.now - service_time
            if self._pending_ship_end is not None:
                start = max(start, self._pending_ship_end)
                self._pending_ship_end = None
            tracer.retime(
                span,
                start,
                sim.now,
                host=self._receiver_host,
            )
            pse_id = span.attrs.get("pse") if span.attrs else None
            if pse_id is not None:
                tracer.observe_pse(pse_id, latency=service_time)
        if self.location == "receiver":
            self._maybe_reconfigure(sim, testbed)

    def on_transfer(
        self,
        size: float,
        seconds: float,
        payload: object = None,
        sent_at: float = None,
    ) -> None:
        model = self.partitioned.cut.cost_model
        observe = getattr(model, "observe_transfer", None)
        if observe is not None:
            observe(size, seconds)
        tracer = self._tracer()
        if tracer is not None and payload is not None:
            ctx = getattr(payload, "trace", None)
            if ctx is not None:
                # The tracer's clock is the simulator's now (prepare()),
                # so the transfer window closes at pickup.  ``sent_at`` is
                # the exact departure time; deriving it as now - seconds
                # reintroduces rounding below the modulate span's end.
                now = tracer.clock()
                start = sent_at if sent_at is not None else now - seconds
                span = tracer.record(
                    "ship",
                    trace_id=ctx[0],
                    parent_id=ctx[1],
                    start=start,
                    end=now,
                    host=self._link_name,
                    attrs={"bytes": size},
                )
                # Re-parent the demodulate span under the ship span.
                payload.trace = (ctx[0], span.span_id)
                self._pending_ship_end = now

    def _maybe_reconfigure(self, sim: Simulator, testbed: Testbed) -> None:
        if self.reconfig is None:
            return
        plan = self.reconfig.consider(self.profiling)
        if plan is None:
            return
        if (
            self.modulator.plan_runtime.current_plan is not None
            and plan.active == self.modulator.plan_runtime.current_plan.active
        ):
            return  # nothing to change; no update shipped
        if self.location == "sender":
            # Co-located with the modulator: flip the flags directly.
            self.modulator.apply_plan(plan)
        else:
            # The new plan travels to the sender over the feedback link.
            arrival = testbed.feedback_link.delivery_time(_PLAN_UPDATE_BYTES)
            self.feedback_bytes += _PLAN_UPDATE_BYTES
            tracer = self._tracer()
            apply_ctx = None
            if tracer is not None and self.reconfig.last_trace_ctx is not None:
                ctx = self.reconfig.last_trace_ctx
                ship_span = tracer.record(
                    "plan.ship",
                    trace_id=ctx[0],
                    parent_id=ctx[1],
                    start=sim.now,
                    end=arrival,
                    host=self._feedback_link_name,
                    attrs={"bytes": _PLAN_UPDATE_BYTES},
                )
                apply_ctx = (ctx[0], ship_span.span_id)

            def _apply(_v, p=plan, ctx=apply_ctx, at=arrival):
                if ctx is not None:
                    t = max(sim.now, at)
                    tracer.record(
                        "plan.apply",
                        trace_id=ctx[0],
                        parent_id=ctx[1],
                        start=t,
                        end=t,
                        host=self._sender_host,
                        attrs={"plan": p.name},
                    )
                self.modulator.apply_plan(p)

            sim.schedule(arrival - sim.now, _apply, None)
        self.plan_updates_applied += 1
