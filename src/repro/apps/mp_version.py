"""Method Partitioning as a pipeline :class:`~repro.apps.harness.Version`.

Wires a :class:`~repro.core.PartitionedMethod` into the experiment harness
with the full adaptation loop of the paper:

* the modulator runs on the sender host (cycles paid there); INTER-set
  sizes and work counts are profiled on both sides;
* seconds-per-cycle rates are measured from *simulated* service times, so
  host speed and perturbation load flow into the execution-time model;
* the Reconfiguration Unit (receiver-located by default) re-runs min-cut
  when its trigger fires, and the new plan travels back over the feedback
  link with real latency before the modulator's flags flip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.harness import ReceiverShare, SenderShare, Version
from repro.core.partitioned import PartitionedMethod
from repro.core.plan import PartitioningPlan
from repro.core.runtime.triggers import FeedbackTrigger, RateTrigger
from repro.obs.trace import ContinuationShipped
from repro.simnet.cluster import Testbed
from repro.simnet.simulator import Simulator

#: Wire size of a plan update: a handful of edge flags.
_PLAN_UPDATE_BYTES = 64.0


class MethodPartitioningVersion(Version):
    """The adaptive implementation of the paper's evaluations."""

    name = "Method Partitioning"

    def __init__(
        self,
        partitioned: PartitionedMethod,
        *,
        plan: Optional[PartitioningPlan] = None,
        trigger: Optional[FeedbackTrigger] = None,
        sample_period: int = 1,
        ewma_alpha: float = 0.4,
        adaptive: bool = True,
        location: str = "receiver",
        feedback_period: Optional[int] = None,
        obs=None,
    ) -> None:
        """``location`` places the Reconfiguration Unit (paper section 2.5):
        ``"sender"`` re-selects plans right after each modulator run and
        flips the flags locally (zero feedback latency — best when the
        modulator's own measurements dominate, as in the data-size model);
        ``"receiver"`` re-selects after each demodulator run and ships the
        plan back over the feedback link with real latency.

        ``feedback_period`` (receiver location only) makes profiling
        distribution explicit: the modulator records into a
        :class:`RemoteProfilingProxy` and its observations travel to the
        receiver-side unit as a feedback message every N messages, paying
        bytes and latency.  ``None`` keeps the default instantly-shared
        unit (equivalent to flushing every message at zero cost).
        """
        if location not in ("sender", "receiver"):
            raise ValueError("location must be 'sender' or 'receiver'")
        if feedback_period is not None and location != "receiver":
            raise ValueError(
                "feedback_period applies to receiver-located "
                "reconfiguration only"
            )
        self.partitioned = partitioned
        self.location = location
        self.feedback_period = feedback_period
        self.obs = obs
        if obs is not None:
            partitioned.interpreter.attach_observability(obs)
        self.profiling = partitioned.make_profiling_unit(
            sample_period=sample_period, ewma_alpha=ewma_alpha, obs=obs
        )
        self.sender_proxy = None
        modulator_profiling = self.profiling
        if feedback_period is not None:
            from repro.core.runtime.feedback import RemoteProfilingProxy

            self.sender_proxy = RemoteProfilingProxy(
                partitioned.cut, sample_period=sample_period, obs=obs
            )
            modulator_profiling = self.sender_proxy
        # Rates come from simulated service times (see on_*_done), so the
        # modulator/demodulator must not record their own cycle-based rates.
        self.modulator = partitioned.make_modulator(
            plan=plan,
            profiling=modulator_profiling,
            record_rates=False,
            obs=obs,
        )
        self.demodulator = partitioned.make_demodulator(
            profiling=self.profiling, record_rates=False
        )
        self.adaptive = adaptive
        self.reconfig = (
            partitioned.make_reconfiguration_unit(
                trigger=trigger or RateTrigger(period=10),
                location=location,
                obs=obs,
            )
            if adaptive
            else None
        )
        self.plan_updates_applied = 0
        self.feedback_bytes = 0.0
        self.feedback_messages = 0

    def prepare(self, sim: Simulator, testbed: Testbed) -> None:
        if self.obs is not None:
            sim.attach_observability(self.obs)

    # -- Version interface -----------------------------------------------------

    def sender_share(self, event: object) -> SenderShare:
        result = self.modulator.process(event)
        if result.completed:
            return SenderShare(
                payload=None, size=0.0, cycles=result.cycles, info=None
            )
        if result.message is None:  # filtered at the sender
            return SenderShare(
                payload=None, size=0.0, cycles=result.cycles, info=None
            )
        size = float(self.partitioned.codec.size(result.message))
        if self.obs is not None:
            self.obs.trace.record(
                ContinuationShipped(
                    pse_id=str(result.message.pse_id), bytes=size
                )
            )
        return SenderShare(
            payload=result.message,
            size=size,
            cycles=result.cycles,
            info=result.edge,
        )

    def receiver_share(self, payload: object) -> ReceiverShare:
        outcome = self.demodulator.process(payload)
        return ReceiverShare(cycles=outcome.cycles, info=outcome.edge)

    def on_sender_done(
        self,
        share: SenderShare,
        service_time: float,
        sim: Simulator,
        testbed: Testbed,
    ) -> None:
        recorder = self.sender_proxy or self.profiling
        if share.cycles > 0:
            recorder.record_sender_rate(service_time, share.cycles)
        if self.sender_proxy is not None:
            self._maybe_flush_feedback(sim, testbed)
        if self.location == "sender":
            self._maybe_reconfigure(sim, testbed)

    def _maybe_flush_feedback(self, sim: Simulator, testbed: Testbed) -> None:
        """Ship buffered sender-side observations over the feedback link."""
        proxy = self.sender_proxy
        if proxy.messages_seen == 0 or (
            proxy.messages_seen % self.feedback_period != 0
        ):
            return
        if proxy.pending == 0:
            return
        from repro.core.runtime.feedback import ingest

        payload, size = proxy.flush()
        self.feedback_bytes += size
        self.feedback_messages += 1
        # Sender-side observations travel WITH the data (forward link),
        # sharing its bandwidth — monitoring traffic is not free.
        arrival = testbed.link.delivery_time(size)
        sim.schedule(
            arrival - sim.now,
            lambda _v, p=payload: ingest(self.profiling, p),
            None,
        )

    def on_receiver_done(
        self,
        share: ReceiverShare,
        service_time: float,
        sim: Simulator,
        testbed: Testbed,
    ) -> None:
        if share.cycles > 0:
            self.profiling.record_receiver_rate(service_time, share.cycles)
        if self.location == "receiver":
            self._maybe_reconfigure(sim, testbed)

    def on_transfer(self, size: float, seconds: float) -> None:
        model = self.partitioned.cut.cost_model
        observe = getattr(model, "observe_transfer", None)
        if observe is not None:
            observe(size, seconds)

    def _maybe_reconfigure(self, sim: Simulator, testbed: Testbed) -> None:
        if self.reconfig is None:
            return
        plan = self.reconfig.consider(self.profiling)
        if plan is None:
            return
        if (
            self.modulator.plan_runtime.current_plan is not None
            and plan.active == self.modulator.plan_runtime.current_plan.active
        ):
            return  # nothing to change; no update shipped
        if self.location == "sender":
            # Co-located with the modulator: flip the flags directly.
            self.modulator.apply_plan(plan)
        else:
            # The new plan travels to the sender over the feedback link.
            arrival = testbed.feedback_link.delivery_time(_PLAN_UPDATE_BYTES)
            self.feedback_bytes += _PLAN_UPDATE_BYTES
            sim.schedule(
                arrival - sim.now,
                lambda _v, p=plan: self.modulator.apply_plan(p),
                None,
            )
        self.plan_updates_applied += 1
