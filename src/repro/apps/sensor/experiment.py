"""Tables 3-4 and Figures 7-8: the compute-bound evaluation.

* Table 3 — four versions on heterogeneous platforms (PC→Sun, Sun→PC),
  no perturbation; average per-message processing time (ms).
* Table 4 — four versions on the homogeneous Intel pair under producer /
  consumer load indices {0/0, 0/0.6, 0/1.0, 0.6/0.6, 0.6/0, 1.0/0};
  expected PLen 1000 ms, AProb 0.5; averages of several seeded runs.
* Figure 7 — average time vs consumer-side AProb (PLen 1000 ms,
  LIndex 0.8, producer load-free).
* Figure 8 — Method Partitioning's stability vs consumer-side expected
  PLen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps.harness import PipelineResult, Version, run_pipeline
from repro.apps.sensor.data import DEFAULT_SAMPLES, reading_stream
from repro.apps.sensor.versions import (
    ConsumerVersion,
    DividedVersion,
    ProducerVersion,
    make_mp_sensor_version,
)
from repro.simnet.cluster import Testbed, heterogeneous_pair, intel_pair
from repro.simnet.perturbation import PerturbationSpec
from repro.simnet.simulator import Simulator

VERSION_NAMES = (
    "Consumer Version",
    "Producer Version",
    "Divided Version",
    "Method Partitioning",
)

#: the paper's expected active-period length: 1000 ms (uniform on [0, 2] s)
PAPER_PLEN = (0.0, 2.0)
#: the paper's default active probability
PAPER_APROB = 0.5


def _make_version(name: str, obs=None, backend: str = "compiled") -> Version:
    if name == "Consumer Version":
        return ConsumerVersion()
    if name == "Producer Version":
        return ProducerVersion()
    if name == "Divided Version":
        return DividedVersion()
    if name == "Method Partitioning":
        return make_mp_sensor_version(obs=obs, backend=backend)
    raise ValueError(f"unknown version {name!r}")


def _run_one(
    make_testbed: Callable[[Simulator], Testbed],
    version_name: str,
    n_messages: int,
    obs=None,
    backend: str = "compiled",
) -> PipelineResult:
    sim = Simulator()
    testbed = make_testbed(sim)
    # Observability attaches to the adaptive version only: the manual
    # versions have no decision loop to trace.
    version = _make_version(version_name, obs=obs, backend=backend)
    events = reading_stream(n_messages)
    return run_pipeline(testbed, version, events)


def _avg_ms(results: Sequence[PipelineResult]) -> float:
    return 1000.0 * sum(r.avg_processing_time for r in results) / len(results)


# -- Table 3 -----------------------------------------------------------------


def run_table3(
    *, n_messages: int = 150, obs=None, backend: str = "compiled"
) -> Dict[str, Dict[str, float]]:
    """version → direction → avg processing time (ms)."""
    table: Dict[str, Dict[str, float]] = {}
    for name in VERSION_NAMES:
        row = {}
        for direction, producer in (("PC->Sun", "pc"), ("Sun->PC", "sun")):
            result = _run_one(
                lambda sim, p=producer: heterogeneous_pair(sim, producer=p),
                name,
                n_messages,
                obs=obs,
                backend=backend,
            )
            row[direction] = 1000.0 * result.avg_processing_time
        table[name] = row
    return table


def format_table3(table: Dict[str, Dict[str, float]]) -> str:
    lines = [f"{'Implementation Versions':<22} {'PC->Sun':>10} {'Sun->PC':>10}"]
    for name in VERSION_NAMES:
        row = table[name]
        lines.append(
            f"{name:<22} {row['PC->Sun']:>10.2f} {row['Sun->PC']:>10.2f}"
        )
    return "\n".join(lines)


# -- Table 4 -----------------------------------------------------------------

#: the paper's (producer LIndex, consumer LIndex) rows
TABLE4_LOADS: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.0),
    (0.0, 0.6),
    (0.0, 1.0),
    (0.6, 0.6),
    (0.6, 0.0),
    (1.0, 0.0),
)


def _load_spec(lindex: float, aprob: float, plen) -> Optional[PerturbationSpec]:
    if lindex == 0.0:
        return None
    return PerturbationSpec(plen=plen, aprob=aprob, lindex=lindex)


def run_table4(
    *,
    n_messages: int = 150,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    aprob: float = PAPER_APROB,
    plen=PAPER_PLEN,
    obs=None,
    backend: str = "compiled",
) -> Dict[Tuple[float, float], Dict[str, float]]:
    """(producer LIndex, consumer LIndex) → version → avg ms.

    Averaged over *seeds*; every version in a cell shares each seed's
    perturbation timeline (the paper's pre-generated random arrays).
    """
    table: Dict[Tuple[float, float], Dict[str, float]] = {}
    for p_lindex, c_lindex in TABLE4_LOADS:
        row: Dict[str, float] = {}
        for name in VERSION_NAMES:
            results = []
            for seed in seeds:
                results.append(
                    _run_one(
                        lambda sim, s=seed: intel_pair(
                            sim,
                            producer_load=_load_spec(p_lindex, aprob, plen),
                            consumer_load=_load_spec(c_lindex, aprob, plen),
                            seed=s,
                        ),
                        name,
                        n_messages,
                        obs=obs,
                        backend=backend,
                    )
                )
            row[name] = _avg_ms(results)
        table[(p_lindex, c_lindex)] = row
    return table


def format_table4(table: Dict[Tuple[float, float], Dict[str, float]]) -> str:
    header = f"{'(P-LIdx)/(C-LIdx)':<18}" + "".join(
        f"{name:>22}" for name in VERSION_NAMES
    )
    lines = [header]
    for loads, row in table.items():
        label = f"{loads[0]:g}/{loads[1]:g}"
        lines.append(
            f"{label:<18}"
            + "".join(f"{row[name]:>22.2f}" for name in VERSION_NAMES)
        )
    return "\n".join(lines)


# -- Figures 7 and 8 -----------------------------------------------------------

FIGURE7_APROBS: Tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
FIGURE8_PLENS: Tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0)


def run_figure7(
    *,
    n_messages: int = 150,
    seeds: Sequence[int] = (1, 2, 3),
    lindex: float = 0.8,
    obs=None,
    backend: str = "compiled",
) -> Dict[str, List[Tuple[float, float]]]:
    """version → [(consumer AProb, avg ms)] with producer load-free."""
    curves: Dict[str, List[Tuple[float, float]]] = {
        name: [] for name in VERSION_NAMES
    }
    for aprob in FIGURE7_APROBS:
        for name in VERSION_NAMES:
            results = []
            for seed in seeds:
                load = (
                    None
                    if aprob == 0.0
                    else PerturbationSpec(
                        plen=PAPER_PLEN, aprob=aprob, lindex=lindex
                    )
                )
                results.append(
                    _run_one(
                        lambda sim, s=seed, l=load: intel_pair(
                            sim, consumer_load=l, seed=s
                        ),
                        name,
                        n_messages,
                        obs=obs,
                        backend=backend,
                    )
                )
            curves[name].append((aprob, _avg_ms(results)))
    return curves


def run_figure8(
    *,
    n_messages: int = 150,
    seeds: Sequence[int] = (1, 2, 3),
    lindex: float = 0.8,
    aprob: float = PAPER_APROB,
    versions: Sequence[str] = VERSION_NAMES,
    obs=None,
    backend: str = "compiled",
) -> Dict[str, List[Tuple[float, float]]]:
    """version → [(expected consumer PLen seconds, avg ms)]."""
    curves: Dict[str, List[Tuple[float, float]]] = {
        name: [] for name in versions
    }
    for plen_expected in FIGURE8_PLENS:
        plen = (0.0, 2.0 * plen_expected)
        for name in versions:
            results = []
            for seed in seeds:
                load = PerturbationSpec(
                    plen=plen, aprob=aprob, lindex=lindex
                )
                results.append(
                    _run_one(
                        lambda sim, s=seed, l=load: intel_pair(
                            sim, consumer_load=l, seed=s
                        ),
                        name,
                        n_messages,
                        obs=obs,
                        backend=backend,
                    )
                )
            curves[name].append((plen_expected, _avg_ms(results)))
    return curves


def format_curves(
    curves: Dict[str, List[Tuple[float, float]]], x_label: str
) -> str:
    names = list(curves)
    xs = [x for x, _ in curves[names[0]]]
    lines = [f"{x_label:<12}" + "".join(f"{name:>22}" for name in names)]
    for i, x in enumerate(xs):
        lines.append(
            f"{x:<12g}"
            + "".join(f"{curves[name][i][1]:>22.2f}" for name in names)
        )
    return "\n".join(lines)
