"""The sensor-processing handler: a chain of stages.

The handler is a straight-line chain of processing stages ending in a
receiver-pinned ``deliver``.  Every stage boundary is a candidate split
under the execution-time cost model, which is how the paper's sensor
handler ends up with 21 PSEs "almost all along the same path": Method
Partitioning can place the split at *any* stage boundary — the
fine-grained "loop distribution" that lets it out-balance the manual
Divided version.

Stage costs rise linearly along the chain (later stages are heavier), so
the stage-count midpoint is *not* the work midpoint — the Divided version
splits at stage count, Method Partitioning finds the work balance.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.apps.sensor.data import SensorReading
from repro.core.api import MethodPartitioner
from repro.core.costmodels import ExecutionTimeCostModel, NetworkParameters
from repro.core.partitioned import PartitionedMethod
from repro.ir.registry import FunctionRegistry, default_registry
from repro.serialization import SerializerRegistry

#: number of processing stages in the chain
N_STAGES = 20
#: base cycles per sample per stage
STAGE_CYCLES_PER_SAMPLE = 10.0
#: how much heavier the last stage is than the first (1.0 = uniform)
STAGE_COST_SLOPE = 1.0
#: cycles for the final delivery call
DELIVER_CYCLES = 20.0


def stage_weight(k: int, n_stages: int = N_STAGES) -> float:
    """Relative cost of stage *k*: rises linearly from 1 to 1+slope."""
    if n_stages <= 1:
        return 1.0
    return 1.0 + STAGE_COST_SLOPE * k / (n_stages - 1)


def total_work_cycles(
    n_samples: int, n_stages: int = N_STAGES
) -> float:
    """Total handler cycles for one reading (all stages)."""
    return sum(
        n_samples * STAGE_CYCLES_PER_SAMPLE * stage_weight(k, n_stages)
        for k in range(n_stages)
    )


def stage(data: List[float], k: int) -> List[float]:
    """One real processing stage: a smoothing/offset pass over the block."""
    g = 0.98 - 0.0005 * k
    b = 0.001 * (k + 1)
    return [g * x + b for x in data]


def stage_cycles(data: List[float], k: int) -> float:
    return len(data) * STAGE_CYCLES_PER_SAMPLE * stage_weight(k)


def extract(reading: SensorReading) -> List[float]:
    """Pull the sample block out of a reading."""
    return reading.samples


def finalize(data: List[float]) -> List[float]:
    """Reduce the processed block to a small summary [min, max, mean]."""
    return [min(data), max(data), sum(data) / len(data)]


class DeliverySink:
    """The client's result consumer — receiver-pinned."""

    def __init__(self) -> None:
        self.results: List[List[float]] = []

    def __call__(self, result: List[float]) -> None:
        self.results.append(result)

    def clear(self) -> None:
        self.results.clear()


def make_sensor_handler_source(n_stages: int = N_STAGES) -> str:
    """Generate the chain handler for *n_stages* stages."""
    lines = [
        "def process(event):",
        "    if isinstance(event, SensorReading):",
        "        d = extract(event)",
    ]
    for k in range(n_stages):
        lines.append(f"        d = stage(d, {k})")
    lines.append("        r = finalize(d)")
    lines.append("        deliver(r)")
    return "\n".join(lines) + "\n"


def build_sensor_registries(
    sink: Optional[DeliverySink] = None,
) -> Tuple[FunctionRegistry, SerializerRegistry, DeliverySink]:
    sink = sink or DeliverySink()
    registry = default_registry()
    registry.register_class(SensorReading)
    registry.register_function("extract", extract, pure=True,
                               cycle_cost=lambda r: 5.0)
    registry.register_function("stage", stage, pure=True,
                               cycle_cost=stage_cycles)
    registry.register_function(
        "finalize", finalize, pure=True,
        cycle_cost=lambda d: len(d) * 2.0,
    )
    registry.register_function(
        "deliver", sink, receiver_only=True, pure=False,
        cycle_cost=lambda r: DELIVER_CYCLES,
    )
    serializer_registry = SerializerRegistry()
    serializer_registry.register(SensorReading, fields=("samples", "seq"))
    return registry, serializer_registry, sink


def build_partitioned_process(
    *,
    n_stages: int = N_STAGES,
    sink: Optional[DeliverySink] = None,
    network: Optional[NetworkParameters] = None,
    backend: str = "compiled",
) -> Tuple[PartitionedMethod, DeliverySink]:
    """Partition the sensor handler under the execution-time cost model."""
    registry, serializer_registry, sink = build_sensor_registries(sink)
    partitioner = MethodPartitioner(
        registry, serializer_registry, backend=backend
    )
    # n (units) is the stream length: eq. 3's dominant term is n·max, and
    # the α + σβ + σ·min end effects amortize over the whole stream — "the
    # dominant factor in equation (3) is n·max(T_mod(1), T_demod(1))".
    model = ExecutionTimeCostModel(
        network
        or NetworkParameters(alpha=0.0002, beta=0.0004, units=100)
    )
    partitioned = partitioner.partition(
        make_sensor_handler_source(n_stages), model
    )
    return partitioned, sink
