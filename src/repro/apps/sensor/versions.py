"""The four Table 3/4 implementations of the sensor application.

* :class:`ConsumerVersion` — all processing inside the consumer.
* :class:`ProducerVersion` — all processing inside the producer.
* :class:`DividedVersion` — a fixed split "into two roughly equal parts
  that run in parallel on producer and consumer"; equal in *stage count*,
  which (stage costs rising along the chain) is not equal in work — the
  imbalance Method Partitioning's finer placement beats.
* :func:`make_mp_sensor_version` — the adaptive Method Partitioning
  implementation under the execution-time cost model.

All versions perform the same real stage computations and pay cycles from
the same cost functions, so differences isolate split placement and
adaptivity.
"""

from __future__ import annotations

from typing import List, Optional

from repro.apps.harness import ReceiverShare, SenderShare, Version
from repro.apps.mp_version import MethodPartitioningVersion
from repro.apps.sensor.data import SensorReading
from repro.apps.sensor.pipeline import (
    DELIVER_CYCLES,
    N_STAGES,
    DeliverySink,
    build_partitioned_process,
    extract,
    finalize,
    stage,
    stage_cycles,
)
from repro.core.costmodels import NetworkParameters
from repro.core.runtime.triggers import CompositeTrigger, DiffTrigger, RateTrigger
from repro.serialization import SerializerRegistry, measure_size

#: sender-side dispatch/type-check cycles in the manual versions
_DISPATCH_CYCLES = 5.0
_EXTRACT_CYCLES = 5.0
_FINALIZE_CYCLES_PER_SAMPLE = 2.0


def _reading_registry() -> SerializerRegistry:
    registry = SerializerRegistry()
    registry.register(SensorReading, fields=("samples", "seq"))
    return registry


def _run_stages(data: List[float], first: int, last: int) -> "tuple[List[float], float]":
    """Run stages [first, last) for real; return (data, cycles)."""
    cycles = 0.0
    for k in range(first, last):
        cycles += stage_cycles(data, k)
        data = stage(data, k)
    return data, cycles


class ConsumerVersion(Version):
    """Ship the raw reading; every stage runs at the consumer."""

    name = "Consumer Version"

    def __init__(
        self,
        *,
        n_stages: int = N_STAGES,
        sink: Optional[DeliverySink] = None,
    ) -> None:
        self.n_stages = n_stages
        self.sink = sink or DeliverySink()
        self._sreg = _reading_registry()

    def sender_share(self, event: object) -> SenderShare:
        if not isinstance(event, SensorReading):
            return SenderShare(payload=None, size=0.0, cycles=_DISPATCH_CYCLES)
        size = float(measure_size(event, self._sreg))
        return SenderShare(payload=event, size=size, cycles=_DISPATCH_CYCLES)

    def receiver_share(self, payload: SensorReading) -> ReceiverShare:
        data = extract(payload)
        data, cycles = _run_stages(data, 0, self.n_stages)
        result = finalize(data)
        self.sink(result)
        cycles += (
            _EXTRACT_CYCLES
            + len(data) * _FINALIZE_CYCLES_PER_SAMPLE
            + DELIVER_CYCLES
        )
        return ReceiverShare(cycles=cycles)


class ProducerVersion(Version):
    """Every stage runs at the producer; ship the small result."""

    name = "Producer Version"

    def __init__(
        self,
        *,
        n_stages: int = N_STAGES,
        sink: Optional[DeliverySink] = None,
    ) -> None:
        self.n_stages = n_stages
        self.sink = sink or DeliverySink()
        self._sreg = _reading_registry()

    def sender_share(self, event: object) -> SenderShare:
        if not isinstance(event, SensorReading):
            return SenderShare(payload=None, size=0.0, cycles=_DISPATCH_CYCLES)
        data = extract(event)
        data, cycles = _run_stages(data, 0, self.n_stages)
        result = finalize(data)
        cycles += (
            _DISPATCH_CYCLES
            + _EXTRACT_CYCLES
            + len(data) * _FINALIZE_CYCLES_PER_SAMPLE
        )
        size = float(measure_size(result, self._sreg))
        return SenderShare(payload=result, size=size, cycles=cycles)

    def receiver_share(self, payload: List[float]) -> ReceiverShare:
        self.sink(payload)
        return ReceiverShare(cycles=DELIVER_CYCLES)


class DividedVersion(Version):
    """A fixed split at the stage-count midpoint."""

    name = "Divided Version"

    def __init__(
        self,
        *,
        n_stages: int = N_STAGES,
        split_stage: Optional[int] = None,
        sink: Optional[DeliverySink] = None,
    ) -> None:
        self.n_stages = n_stages
        self.split_stage = (
            split_stage if split_stage is not None else n_stages // 2
        )
        self.sink = sink or DeliverySink()
        self._sreg = _reading_registry()

    def sender_share(self, event: object) -> SenderShare:
        if not isinstance(event, SensorReading):
            return SenderShare(payload=None, size=0.0, cycles=_DISPATCH_CYCLES)
        data = extract(event)
        data, cycles = _run_stages(data, 0, self.split_stage)
        cycles += _DISPATCH_CYCLES + _EXTRACT_CYCLES
        size = float(measure_size(data, self._sreg))
        return SenderShare(payload=data, size=size, cycles=cycles)

    def receiver_share(self, payload: List[float]) -> ReceiverShare:
        data, cycles = _run_stages(payload, self.split_stage, self.n_stages)
        result = finalize(data)
        self.sink(result)
        cycles += len(data) * _FINALIZE_CYCLES_PER_SAMPLE + DELIVER_CYCLES
        return ReceiverShare(cycles=cycles)


def make_mp_sensor_version(
    *,
    n_stages: int = N_STAGES,
    sink: Optional[DeliverySink] = None,
    network: Optional[NetworkParameters] = None,
    sample_period: int = 1,
    adaptive: bool = True,
    obs=None,
    backend: str = "compiled",
) -> MethodPartitioningVersion:
    """The Method Partitioning implementation for Tables 3-4 / Figs 7-8.

    Load changes surface in the profiled side rates, so a diff trigger on
    them drives re-balancing; a rate trigger is the safety net.
    """
    partitioned, sink = build_partitioned_process(
        n_stages=n_stages, sink=sink, network=network, backend=backend
    )
    trigger = CompositeTrigger(
        DiffTrigger(threshold=0.2, min_interval=2), RateTrigger(period=25)
    )
    version = MethodPartitioningVersion(
        partitioned,
        trigger=trigger,
        sample_period=sample_period,
        ewma_alpha=0.4,
        adaptive=adaptive,
        location="receiver",
        obs=obs,
    )
    version.sink = sink
    return version
