"""Sensor readings for the compute-bound application (paper section 5.2).

A mobile sensor captures a block of samples per message; a chain of
processing stages turns it into a small result for the client.  Only the
relative sizes matter: the raw reading is kilobytes, the final result a
few dozen bytes.
"""

from __future__ import annotations

import math
import random
from typing import List

#: samples per reading
DEFAULT_SAMPLES = 256


class SensorReading:
    """One captured data block."""

    def __init__(self, samples: List[float], seq: int = 0) -> None:
        if not samples:
            raise ValueError("a reading needs at least one sample")
        self.samples = list(samples)
        self.seq = seq

    def __repr__(self) -> str:
        return f"<SensorReading #{self.seq} n={len(self.samples)}>"


def make_reading(seq: int, n_samples: int = DEFAULT_SAMPLES) -> SensorReading:
    """A deterministic pseudo-signal: a noisy sine sweep."""
    rng = random.Random(seq)
    samples = [
        math.sin(0.05 * i + 0.1 * seq) + 0.1 * rng.random()
        for i in range(n_samples)
    ]
    return SensorReading(samples, seq=seq)


def reading_stream(
    n_messages: int, *, n_samples: int = DEFAULT_SAMPLES
) -> List[SensorReading]:
    """The message stream shared by all compared versions."""
    return [make_reading(i, n_samples) for i in range(n_messages)]
