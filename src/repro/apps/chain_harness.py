"""N-hop chain pipeline: empirical validation of the placement model.

Runs a stream along an arbitrary :class:`~repro.core.placement.StreamPath`
with the modulator at a chosen hop, measuring actual steady-state
throughput — the ground truth the analytic
:func:`~repro.core.placement.predicted_bottleneck` is tested against.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.apps.harness import PipelineResult
from repro.apps.mp_version import MethodPartitioningVersion
from repro.core.placement import StreamMeasurements, StreamPath
from repro.simnet.host import Host
from repro.simnet.link import Link
from repro.simnet.simulator import Delay, Simulator


class ChainTestbed:
    """Hosts and links realizing a StreamPath inside one simulator."""

    def __init__(self, sim: Simulator, path: StreamPath) -> None:
        self.sim = sim
        self.path = path
        self.hosts: List[Host] = [
            Host(sim, hop.name, speed=hop.cpu_speed) for hop in path.hops
        ]
        self.links: List[Link] = [
            Link(
                sim,
                f"{path[i].name}->{path[i + 1].name}",
                alpha=path[i].link_alpha,
                beta=path[i].link_beta,
            )
            for i in range(len(path) - 1)
        ]


def run_chain_pipeline(
    testbed: ChainTestbed,
    version: MethodPartitioningVersion,
    events: Sequence[object],
    event_sizes: Sequence[float],
    *,
    placement: int,
    relay_cycles: float = 10.0,
    window: int = 16,
) -> PipelineResult:
    """Push *events* along the chain with the modulator at hop *placement*.

    Hops before the placement relay the raw event; the placement hop runs
    the modulator (``version.sender_share``); downstream hops relay the
    continuation; the final hop runs the demodulator
    (``version.receiver_share``).
    """
    path = testbed.path
    if placement not in path.placements():
        raise ValueError(
            f"placement {placement} invalid for a {len(path)}-hop path"
        )
    if version.location != "sender":
        raise ValueError(
            "chain pipelines need a version with location='sender'"
        )
    sim = testbed.sim
    n_hops = len(path)
    mailboxes = [sim.store() for _ in range(n_hops - 1)]  # inbox of hop i+1
    credits = sim.store()
    for _ in range(window):
        credits.put(None)
    completions: List[Tuple[float, float]] = []
    counters = {"filtered": 0}
    start_time = sim.now

    def generator():
        host = testbed.hosts[0]
        for event, raw_size in zip(events, event_sizes):
            generated = sim.now
            if placement == 0:
                share = version.sender_share(event)
                if share.cycles > 0:
                    s, f = host.execute(share.cycles)
                    yield Delay(f - sim.now)
                    version.on_sender_done(share, f - s, sim, testbed)
                if share.payload is None:
                    counters["filtered"] += 1
                    continue
                payload, size = share, share.size
            else:
                s, f = host.execute(relay_cycles)
                yield Delay(f - sim.now)
                payload, size = event, raw_size
            yield credits.get()
            testbed.links[0].send(
                size, mailboxes[0], (generated, payload, size)
            )

    def middle(hop_index: int):
        host = testbed.hosts[hop_index]
        inbox = mailboxes[hop_index - 1]
        outbox = mailboxes[hop_index]
        while True:
            generated, payload, size = yield inbox.get()
            if hop_index == placement:
                share = version.sender_share(payload)
                if share.cycles > 0:
                    s, f = host.execute(share.cycles)
                    yield Delay(f - sim.now)
                    version.on_sender_done(share, f - s, sim, testbed)
                if share.payload is None:
                    counters["filtered"] += 1
                    credits.put(None)
                    continue
                payload, size = share, share.size
            else:
                s, f = host.execute(relay_cycles)
                yield Delay(f - sim.now)
            testbed.links[hop_index].send(
                size, outbox, (generated, payload, size)
            )

    def receiver():
        host = testbed.hosts[-1]
        inbox = mailboxes[-1]
        while True:
            generated, share, _size = yield inbox.get()
            rshare = version.receiver_share(share.payload)
            if rshare.cycles > 0:
                s, f = host.execute(rshare.cycles)
                yield Delay(f - sim.now)
                version.on_receiver_done(rshare, f - s, sim, testbed)
            completions.append((generated, sim.now))
            credits.put(None)

    sim.spawn(generator())
    for i in range(1, n_hops - 1):
        sim.spawn(middle(i))
    sim.spawn(receiver())
    sim.run()

    return PipelineResult(
        version=f"{version.name} (hop {placement}: {path[placement].name})",
        n_events=len(events),
        n_delivered=len(completions),
        n_filtered=counters["filtered"],
        start_time=start_time,
        end_time=sim.now,
        completions=completions,
        bytes_sent=sum(link.bytes_sent for link in testbed.links),
    )


def measure_stream(
    version_factory,
    sample_event: object,
    sample_size: float,
    *,
    relay_cycles: float = 10.0,
) -> StreamMeasurements:
    """Profile one event through a fresh modulator/demodulator pair to fill
    a :class:`StreamMeasurements` for the analytic placement model."""
    version = version_factory()
    share = version.sender_share(sample_event)
    if share.payload is None:
        raise ValueError("sample event was filtered; pick a passing one")
    rshare = version.receiver_share(share.payload)
    return StreamMeasurements(
        mod_cycles=share.cycles,
        demod_cycles=rshare.cycles,
        raw_size=sample_size,
        continuation_size=share.size,
        relay_cycles=relay_cycles,
    )
