"""Wireless image-streaming application (paper section 5.1, Table 2)."""

from repro.apps.imagestream.app import (
    DISPLAY_CYCLES_PER_PIXEL,
    IMAGE_HANDLER_SOURCE,
    RESAMPLE_CYCLES_PER_PIXEL,
    DisplaySink,
    build_image_registries,
    build_partitioned_push,
    display_cycles,
    resample,
    resample_cycles,
)
from repro.apps.imagestream.data import (
    DISPLAY_SIZE,
    LARGE_SIZE,
    SMALL_SIZE,
    ImageFrame,
    make_frame,
    scenario_stream,
)
from repro.apps.imagestream.experiment import (
    SCENARIOS,
    VERSION_NAMES,
    Table2Config,
    format_table2,
    run_cell,
    run_table2,
)
from repro.apps.imagestream.versions import (
    ClientTransformVersion,
    ServerTransformVersion,
    make_mp_image_version,
)

__all__ = [
    "ImageFrame",
    "make_frame",
    "scenario_stream",
    "DISPLAY_SIZE",
    "SMALL_SIZE",
    "LARGE_SIZE",
    "DisplaySink",
    "resample",
    "resample_cycles",
    "display_cycles",
    "build_image_registries",
    "build_partitioned_push",
    "IMAGE_HANDLER_SOURCE",
    "RESAMPLE_CYCLES_PER_PIXEL",
    "DISPLAY_CYCLES_PER_PIXEL",
    "ClientTransformVersion",
    "ServerTransformVersion",
    "make_mp_image_version",
    "Table2Config",
    "run_cell",
    "run_table2",
    "format_table2",
    "SCENARIOS",
    "VERSION_NAMES",
]
