"""The image-streaming handler: natives, registries, and partitioning.

The message handler mirrors the paper's ``push()`` (Appendix A / Figure 4):
check the event type, resample the frame to the display window, hand it to
the (receiver-pinned) display routine.  Under the data-size cost model the
interesting PSEs are *before* the resample (ship the raw frame) and *after*
it (ship the display-sized frame) — which one is cheaper depends on whether
the incoming frame is smaller or larger than the display window, exactly
the adaptation Table 2 exercises.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, List, Optional, Tuple

from repro.apps.imagestream.data import DISPLAY_SIZE, ImageFrame
from repro.core.api import MethodPartitioner
from repro.core.costmodels import DataSizeCostModel
from repro.core.partitioned import PartitionedMethod
from repro.ir.registry import FunctionRegistry, default_registry
from repro.serialization import SerializerRegistry

#: abstract cycles per *output* pixel of a nearest-neighbour resample
RESAMPLE_CYCLES_PER_PIXEL = 0.12
#: abstract cycles per pixel pushed to the display
DISPLAY_CYCLES_PER_PIXEL = 0.03

#: the handler compiled against the registries below
IMAGE_HANDLER_SOURCE = """
def push(event):
    if isinstance(event, ImageFrame):
        out = resample(event, DISPLAY_W, DISPLAY_H)
        display(out)
"""


@lru_cache(maxsize=64)
def _column_map(src_w: int, dst_w: int) -> Tuple[int, ...]:
    return tuple(j * src_w // dst_w for j in range(dst_w))


def resample(frame: ImageFrame, width: int, height: int) -> ImageFrame:
    """Nearest-neighbour resample of *frame* to width × height."""
    if frame.width == width and frame.height == height:
        return frame
    cols = _column_map(frame.width, width)
    src = frame.pixels
    rows: List[bytes] = []
    for i in range(height):
        base = (i * frame.height // height) * frame.width
        row = src[base : base + frame.width]
        rows.append(bytes(map(row.__getitem__, cols)))
    return ImageFrame(width, height, b"".join(rows))


def resample_cycles(frame: ImageFrame, width: int, height: int) -> float:
    """Cycle cost of :func:`resample` (per output pixel)."""
    return width * height * RESAMPLE_CYCLES_PER_PIXEL


def display_cycles(frame: ImageFrame) -> float:
    """Cycle cost of pushing *frame* to the display."""
    return frame.pixel_count * DISPLAY_CYCLES_PER_PIXEL


class DisplaySink:
    """The client's display: a receiver-pinned native with a frame log."""

    def __init__(self) -> None:
        self.frames: List[ImageFrame] = []

    def __call__(self, frame: ImageFrame) -> None:
        self.frames.append(frame)

    def clear(self) -> None:
        self.frames.clear()


def build_image_registries(
    display: Optional[DisplaySink] = None,
) -> Tuple[FunctionRegistry, SerializerRegistry, DisplaySink]:
    """Registries for the image application (IR + serializer)."""
    display = display or DisplaySink()
    registry = default_registry()
    registry.register_class(ImageFrame)
    registry.register_function(
        "resample", resample, pure=True, cycle_cost=resample_cycles
    )
    registry.register_function(
        "display",
        display,
        receiver_only=True,
        pure=False,
        cycle_cost=display_cycles,
    )
    serializer_registry = SerializerRegistry()
    serializer_registry.register(
        ImageFrame, fields=("width", "height", "pixels")
    )
    return registry, serializer_registry, display


def build_partitioned_push(
    *,
    display_size: int = DISPLAY_SIZE,
    display: Optional[DisplaySink] = None,
    backend: str = "compiled",
) -> Tuple[PartitionedMethod, DisplaySink]:
    """Partition the image handler under the data-size cost model."""
    registry, serializer_registry, sink = build_image_registries(display)
    partitioner = MethodPartitioner(
        registry, serializer_registry, backend=backend
    )
    partitioned = partitioner.partition(
        IMAGE_HANDLER_SOURCE,
        DataSizeCostModel(),
        constants={"DISPLAY_W": display_size, "DISPLAY_H": display_size},
    )
    return partitioned, sink
