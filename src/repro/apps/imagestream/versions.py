"""The three Table 2 implementations of the image application.

* :class:`ClientTransformVersion` — the paper's "Image<Display" row: a
  manual implementation optimized for frames *smaller* than the display;
  it always ships the raw frame and resamples at the client.
* :class:`ServerTransformVersion` — the "Image>Display" row: optimized for
  frames *larger* than the display; it always resamples at the server and
  ships the display-sized frame.
* :func:`make_mp_image_version` — the Method Partitioning row: the
  partitioned ``push()`` with diff-triggered runtime re-selection between
  the two split points.

The manual versions perform the same real pixel work and pay cycle costs
from the same cost functions as the partitioned handler, so the comparison
isolates *where* the work happens — the paper's variable.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.harness import ReceiverShare, SenderShare, Version
from repro.apps.imagestream.app import (
    DisplaySink,
    build_partitioned_push,
    display_cycles,
    resample,
    resample_cycles,
)
from repro.apps.imagestream.data import DISPLAY_SIZE, ImageFrame
from repro.apps.mp_version import MethodPartitioningVersion
from repro.core.runtime.triggers import CompositeTrigger, DiffTrigger, RateTrigger
from repro.serialization import SerializerRegistry, measure_size

#: sender-side cycles for type checking / dispatch in the manual versions
_DISPATCH_CYCLES = 5.0


def _frame_registry() -> SerializerRegistry:
    registry = SerializerRegistry()
    registry.register(ImageFrame, fields=("width", "height", "pixels"))
    return registry


class ClientTransformVersion(Version):
    """Ship the raw frame; resample and display at the client."""

    name = "Image<Display"

    def __init__(
        self,
        *,
        display_size: int = DISPLAY_SIZE,
        display: Optional[DisplaySink] = None,
    ) -> None:
        self.display_size = display_size
        self.display = display or DisplaySink()
        self._sreg = _frame_registry()

    def sender_share(self, event: object) -> SenderShare:
        if not isinstance(event, ImageFrame):
            return SenderShare(payload=None, size=0.0, cycles=_DISPATCH_CYCLES)
        size = float(measure_size(event, self._sreg))
        return SenderShare(payload=event, size=size, cycles=_DISPATCH_CYCLES)

    def receiver_share(self, payload: object) -> ReceiverShare:
        out = resample(payload, self.display_size, self.display_size)
        cycles = resample_cycles(
            payload, self.display_size, self.display_size
        ) + display_cycles(out)
        self.display(out)
        return ReceiverShare(cycles=cycles)


class ServerTransformVersion(Version):
    """Resample at the server; ship the display-sized frame."""

    name = "Image>Display"

    def __init__(
        self,
        *,
        display_size: int = DISPLAY_SIZE,
        display: Optional[DisplaySink] = None,
    ) -> None:
        self.display_size = display_size
        self.display = display or DisplaySink()
        self._sreg = _frame_registry()

    def sender_share(self, event: object) -> SenderShare:
        if not isinstance(event, ImageFrame):
            return SenderShare(payload=None, size=0.0, cycles=_DISPATCH_CYCLES)
        out = resample(event, self.display_size, self.display_size)
        cycles = _DISPATCH_CYCLES + resample_cycles(
            event, self.display_size, self.display_size
        )
        size = float(measure_size(out, self._sreg))
        return SenderShare(payload=out, size=size, cycles=cycles)

    def receiver_share(self, payload: object) -> ReceiverShare:
        self.display(payload)
        return ReceiverShare(cycles=display_cycles(payload))


def make_mp_image_version(
    *,
    display_size: int = DISPLAY_SIZE,
    display: Optional[DisplaySink] = None,
    sample_period: int = 1,
    adaptive: bool = True,
    backend: str = "compiled",
) -> MethodPartitioningVersion:
    """The Method Partitioning implementation for Table 2.

    Uses a diff trigger (data sizes changing signal a scenario switch) OR'd
    with a coarse rate trigger as a safety net.
    """
    partitioned, sink = build_partitioned_push(
        display_size=display_size, display=display, backend=backend
    )
    trigger = CompositeTrigger(
        DiffTrigger(threshold=0.2, min_interval=1), RateTrigger(period=50)
    )
    version = MethodPartitioningVersion(
        partitioned,
        trigger=trigger,
        sample_period=sample_period,
        ewma_alpha=0.6,
        adaptive=adaptive,
        # The data-size model's dominant measurement (the raw frame size)
        # is taken by the modulator itself, so a sender-located
        # Reconfiguration Unit adapts with minimal lag (paper section 2.5:
        # "the location of the reconfiguration unit is variable").
        location="sender",
    )
    version.display = sink
    return version
