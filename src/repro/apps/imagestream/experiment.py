"""Table 2: effects of runtime adaptation with Method Partitioning.

Reproduces the paper's first experiment: three implementations × three
scenarios (small 80×80, large 200×200, mixed) streaming to a handheld over
a wireless link; the reported metric is average frames per second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.apps.harness import PipelineResult, Version, run_pipeline
from repro.apps.imagestream.data import (
    DISPLAY_SIZE,
    LARGE_SIZE,
    SMALL_SIZE,
    scenario_stream,
)
from repro.apps.imagestream.versions import (
    ClientTransformVersion,
    ServerTransformVersion,
    make_mp_image_version,
)
from repro.simnet.cluster import wireless_testbed
from repro.simnet.simulator import Simulator

SCENARIOS = ("small", "large", "mixed")
VERSION_NAMES = ("Image<Display", "Image>Display", "Method Partitioning")


@dataclass
class Table2Config:
    n_frames: int = 300
    seed: int = 7
    display_size: int = DISPLAY_SIZE
    small_size: int = SMALL_SIZE
    large_size: int = LARGE_SIZE
    #: execution backend for the adaptive version ("compiled" or "tree")
    backend: str = "compiled"


def _version_factories(config: Table2Config) -> Dict[str, Callable[[], Version]]:
    return {
        "Image<Display": lambda: ClientTransformVersion(
            display_size=config.display_size
        ),
        "Image>Display": lambda: ServerTransformVersion(
            display_size=config.display_size
        ),
        "Method Partitioning": lambda: make_mp_image_version(
            display_size=config.display_size, backend=config.backend
        ),
    }


def run_cell(
    version_name: str, scenario: str, config: Table2Config = None
) -> PipelineResult:
    """Run one (version, scenario) cell of Table 2 on a fresh testbed."""
    config = config or Table2Config()
    factory = _version_factories(config)[version_name]
    frames = scenario_stream(
        scenario,
        config.n_frames,
        seed=config.seed,
        small=config.small_size,
        large=config.large_size,
    )
    sim = Simulator()
    testbed = wireless_testbed(sim)
    return run_pipeline(testbed, factory(), frames)


def run_table2(config: Table2Config = None) -> Dict[str, Dict[str, float]]:
    """The full table: version → scenario → frames/sec."""
    config = config or Table2Config()
    table: Dict[str, Dict[str, float]] = {}
    for version_name in VERSION_NAMES:
        row: Dict[str, float] = {}
        for scenario in SCENARIOS:
            result = run_cell(version_name, scenario, config)
            row[scenario] = result.throughput
        table[version_name] = row
    return table


def format_table2(table: Dict[str, Dict[str, float]]) -> str:
    """Render like the paper's Table 2 (values are frames per second)."""
    lines = [
        f"{'Implementation':<22} {'Small Image':>12} {'Large Image':>12} "
        f"{'Mixed':>8}",
        f"{'':<22} {'(80*80)':>12} {'(200*200)':>12} {'':>8}",
    ]
    for version_name in VERSION_NAMES:
        row = table[version_name]
        lines.append(
            f"{version_name:<22} {row['small']:>12.2f} "
            f"{row['large']:>12.2f} {row['mixed']:>8.2f}"
        )
    return "\n".join(lines)
