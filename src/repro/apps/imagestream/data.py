"""Image frames and scenario streams for the wireless application
(paper section 5.1).

The paper's setup: display window 160×160 on the iPAQ; incoming frames are
either 80×80 ("small") or 200×200 ("large"), "without the client's a priori
knowledge".  The mixed scenario alternates between the two, each run
lasting n frames with n uniform on [1, 20].
"""

from __future__ import annotations

import random
from typing import List

#: Paper's display window edge (160×160).
DISPLAY_SIZE = 160
#: Paper's small-image edge (80×80).
SMALL_SIZE = 80
#: Paper's large-image edge (200×200).
LARGE_SIZE = 200


class ImageFrame:
    """A grayscale frame: width × height single-byte pixels."""

    def __init__(self, width: int, height: int, pixels: bytes = None) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("frame dimensions must be positive")
        self.width = width
        self.height = height
        if pixels is None:
            pixels = bytes(width * height)
        if len(pixels) != width * height:
            raise ValueError(
                f"pixel buffer is {len(pixels)} bytes; expected "
                f"{width * height}"
            )
        self.pixels = pixels

    @property
    def pixel_count(self) -> int:
        return self.width * self.height

    def __repr__(self) -> str:
        return f"<ImageFrame {self.width}x{self.height}>"


def make_frame(width: int, height: int, seed: int = 0) -> ImageFrame:
    """A frame with deterministic pseudo-content (a diagonal gradient)."""
    pixels = bytes(
        ((i // width) + (i % width) + seed) % 256 for i in range(width * height)
    )
    return ImageFrame(width, height, pixels)


def scenario_stream(
    scenario: str,
    n_frames: int,
    *,
    seed: int = 0,
    small: int = SMALL_SIZE,
    large: int = LARGE_SIZE,
) -> List[ImageFrame]:
    """Build the frame stream for one Table 2 scenario.

    ``"small"`` and ``"large"`` are constant streams; ``"mixed"`` alternates
    between the two sizes in runs of n frames, n ~ U[1, 20] (paper
    section 5.1).  The same seed yields the same stream for every version —
    the paper's shared pre-generated random numbers.
    """
    small_frame = make_frame(small, small)
    large_frame = make_frame(large, large)
    if scenario == "small":
        return [small_frame] * n_frames
    if scenario == "large":
        return [large_frame] * n_frames
    if scenario != "mixed":
        raise ValueError(f"unknown scenario {scenario!r}")
    rng = random.Random(seed)
    frames: List[ImageFrame] = []
    use_small = bool(rng.getrandbits(1))
    while len(frames) < n_frames:
        run = rng.randint(1, 20)
        frame = small_frame if use_small else large_frame
        frames.extend([frame] * min(run, n_frames - len(frames)))
        use_small = not use_small
    return frames
