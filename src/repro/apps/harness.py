"""Shared sender→receiver experiment pipeline.

Every evaluation in the paper (Tables 2-4, Figures 7-8) has the same shape:
a sender pushes a stream of messages through some *version* of the handler
split — the sender-side share runs on the sender host, the bytes cross a
link, the receiver-side share runs on the receiver host.  The versions
differ only in where the split sits and whether it adapts:

* manual baselines implement a fixed split directly;
* the Method Partitioning version runs the modulator/demodulator pair with
  profiling, feedback and plan updates (fed back over the reverse link with
  real latency).

:func:`run_pipeline` executes one stream on a :class:`~repro.simnet.Testbed`
and reports throughput/latency — frames/sec for Table 2, average per-message
processing time for Tables 3-4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.simnet.cluster import Testbed
from repro.simnet.simulator import Simulator


@dataclass
class SenderShare:
    """Sender-side result for one message.

    ``payload is None`` means the message was filtered at the sender and
    nothing crosses the link.  ``info`` is version-private context threaded
    to the matching receiver share and the completion hooks.
    """

    payload: object
    size: float
    cycles: float
    info: object = None


@dataclass
class ReceiverShare:
    """Receiver-side cost for one message."""

    cycles: float
    info: object = None


class Version:
    """One implementation variant of a message-handling application."""

    name: str = "version"

    def prepare(self, sim: Simulator, testbed: Testbed) -> None:
        """Called once before the stream starts."""

    def sender_share(self, event: object) -> SenderShare:
        raise NotImplementedError

    def receiver_share(self, payload: object) -> ReceiverShare:
        raise NotImplementedError

    def on_sender_done(
        self,
        share: SenderShare,
        service_time: float,
        sim: Simulator,
        testbed: Testbed,
    ) -> None:
        """Hook after the sender host finished this message's share."""

    def on_receiver_done(
        self,
        share: ReceiverShare,
        service_time: float,
        sim: Simulator,
        testbed: Testbed,
    ) -> None:
        """Hook after the receiver host finished (feedback lives here)."""

    def on_transfer(
        self,
        size: float,
        seconds: float,
        payload: object = None,
        sent_at: float = None,
    ) -> None:
        """Hook with each message's observed network time (send → arrive).

        Lets bandwidth-aware cost models (e.g. the response-time model)
        track the link's current capacity from ordinary traffic.
        ``payload`` is the delivered wire object, so tracing versions can
        attribute the transfer to the message's trace; ``sent_at`` is the
        exact departure timestamp (``seconds`` alone cannot reconstruct it
        without floating-point drift).
        """


@dataclass
class PipelineResult:
    """Measured outcome of one stream."""

    version: str
    n_events: int
    n_delivered: int
    n_filtered: int
    start_time: float
    end_time: float
    #: per-delivered-message (generation time, completion time)
    completions: List[Tuple[float, float]]
    bytes_sent: float

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def throughput(self) -> float:
        """Delivered messages per simulated second (Table 2's frames/sec)."""
        if self.duration <= 0:
            return float("inf")
        return self.n_delivered / self.duration

    @property
    def avg_processing_time(self) -> float:
        """Average per-message time (Tables 3-4's metric): duration / n.

        This matches the Kim et al. regime the paper evaluates in — for a
        pipelined stream the steady-state per-message time is
        ``max(T_mod, T_demod)`` plus end effects (eq. 3 divided by n).
        """
        if not self.n_delivered:
            return float("inf")
        return self.duration / self.n_delivered

    @property
    def mean_latency(self) -> float:
        """Mean per-message generation→completion latency."""
        if not self.completions:
            return float("inf")
        return sum(done - gen for gen, done in self.completions) / len(
            self.completions
        )


def run_pipeline(
    testbed: Testbed,
    version: Version,
    events: Sequence[object],
    *,
    inter_arrival: float = 0.0,
    window: int = 16,
    run_kwargs: Optional[dict] = None,
) -> PipelineResult:
    """Push *events* through *version* on *testbed* and measure.

    ``inter_arrival`` throttles the source (0 = sender-paced, the paper's
    closed producer loop).  ``window`` is the flow-control credit count: at
    most that many messages are in flight past the sender, modelling the
    bounded socket/transport buffers of a real event system — without it
    the producer would race arbitrarily far ahead and runtime feedback
    could never influence the stream it was measured on.  The simulator
    inside the testbed is run to completion.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    sim = testbed.sim
    mailbox = sim.store()
    credits = sim.store()
    for _ in range(window):
        credits.put(None)
    completions: List[Tuple[float, float]] = []
    counters = {"filtered": 0, "sent": 0}
    start_time = sim.now
    bytes_before = testbed.link.bytes_sent

    version.prepare(sim, testbed)

    def producer():
        from repro.simnet.simulator import Delay

        for event in events:
            generated_at = sim.now
            share = version.sender_share(event)
            if share.cycles > 0:
                start, finish = testbed.sender.execute(share.cycles)
                yield Delay(finish - sim.now)
                version.on_sender_done(share, finish - start, sim, testbed)
            else:
                version.on_sender_done(share, 0.0, sim, testbed)
            if share.payload is None:
                counters["filtered"] += 1
            else:
                yield credits.get()
                counters["sent"] += 1
                sent_at = sim.now
                arrival = testbed.link.delivery_time(share.size)
                sim.schedule(
                    arrival - sim.now,
                    mailbox.put,
                    (generated_at, share.payload, share.size, sent_at),
                )
            if inter_arrival > 0:
                yield Delay(inter_arrival)

    def consumer():
        # Runs until the event heap drains: when the producer is done and
        # every in-flight message has been processed, the pending get()
        # simply never resolves and sim.run() returns.
        from repro.simnet.simulator import Delay

        while True:
            item = yield mailbox.get()
            generated_at, payload, size, sent_at = item
            version.on_transfer(
                size, sim.now - sent_at, payload=payload, sent_at=sent_at
            )
            share = version.receiver_share(payload)
            if share.cycles > 0:
                start, finish = testbed.receiver.execute(share.cycles)
                yield Delay(finish - sim.now)
                version.on_receiver_done(share, finish - start, sim, testbed)
            else:
                version.on_receiver_done(share, 0.0, sim, testbed)
            completions.append((generated_at, sim.now))
            credits.put(None)

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run(**(run_kwargs or {}))

    return PipelineResult(
        version=version.name,
        n_events=len(events),
        n_delivered=len(completions),
        n_filtered=counters["filtered"],
        start_time=start_time,
        end_time=sim.now,
        completions=completions,
        bytes_sent=testbed.link.bytes_sent - bytes_before,
    )
