"""The paper's two evaluation applications plus the shared harness."""

from repro.apps.harness import (
    PipelineResult,
    ReceiverShare,
    SenderShare,
    Version,
    run_pipeline,
)
from repro.apps.mp_version import MethodPartitioningVersion

__all__ = [
    "Version",
    "SenderShare",
    "ReceiverShare",
    "PipelineResult",
    "run_pipeline",
    "MethodPartitioningVersion",
]
