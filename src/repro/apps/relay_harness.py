"""Three-host experiment pipeline: sender → broker → receiver.

The simulated counterpart of :mod:`repro.jecho.broker`: a weak sender
relays raw events over an uplink; the broker runs the modulator share on
its own CPU; continuations cross the downlink to the receiver.  Used by
the third-party-placement ablation and the broker example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.apps.harness import PipelineResult
from repro.apps.mp_version import MethodPartitioningVersion
from repro.simnet.host import Host
from repro.simnet.link import Link
from repro.simnet.simulator import Delay, Simulator


@dataclass
class RelayTestbed:
    """Sender, broker, receiver plus the two links between them."""

    sim: Simulator
    sender: Host
    broker: Host
    receiver: Host
    uplink: Link
    downlink: Link


def relay_testbed(
    sim: Simulator,
    *,
    sender_speed: float = 0.05e6,   # a bare sensor
    broker_speed: float = 2.0e6,    # a well-provisioned edge box
    receiver_speed: float = 0.15e6,
    uplink_alpha: float = 0.0005,
    uplink_beta: float = 2.0e-7,    # sensor→broker: wired, fast
    downlink_alpha: float = 0.005,
    downlink_beta: float = 2.0e-6,  # broker→client: wireless, slow
) -> RelayTestbed:
    return RelayTestbed(
        sim=sim,
        sender=Host(sim, "sensor", speed=sender_speed),
        broker=Host(sim, "broker", speed=broker_speed),
        receiver=Host(sim, "client", speed=receiver_speed),
        uplink=Link(sim, "uplink", alpha=uplink_alpha, beta=uplink_beta),
        downlink=Link(
            sim, "downlink", alpha=downlink_alpha, beta=downlink_beta
        ),
    )


def run_relay_pipeline(
    testbed: RelayTestbed,
    version: MethodPartitioningVersion,
    events: Sequence[object],
    event_sizes: Sequence[float],
    *,
    modulator_at: str = "broker",
    generation_cycles: float = 10.0,
    window: int = 16,
) -> PipelineResult:
    """Run the stream with the modulator placed at *modulator_at*.

    ``modulator_at="broker"``: the sender only generates and relays raw
    events (paying ``generation_cycles`` each); the broker runs the
    modulator share.  ``modulator_at="sender"``: the classic placement —
    the sender runs the modulator, the broker merely forwards the
    continuation bytes.
    """
    if modulator_at not in ("sender", "broker"):
        raise ValueError("modulator_at must be 'sender' or 'broker'")
    if version.location != "sender":
        # The relay testbed has no receiver→sender feedback link; the
        # Reconfiguration Unit must be co-located with the modulator.
        raise ValueError(
            "relay pipelines need a version with location='sender' "
            "(reconfiguration co-located with the modulator)"
        )
    sim = testbed.sim
    to_broker = sim.store()
    to_receiver = sim.store()
    credits = sim.store()
    for _ in range(window):
        credits.put(None)
    completions: List[Tuple[float, float]] = []
    counters = {"filtered": 0}
    start_time = sim.now

    def sender_proc():
        for event, raw_size in zip(events, event_sizes):
            generated = sim.now
            if modulator_at == "sender":
                share = version.sender_share(event)
                if share.cycles > 0:
                    s, f = testbed.sender.execute(share.cycles)
                    yield Delay(f - sim.now)
                    version.on_sender_done(share, f - s, sim, testbed)
                if share.payload is None:
                    counters["filtered"] += 1
                    continue
                yield credits.get()
                testbed.uplink.send(
                    share.size, to_broker, (generated, share)
                )
            else:
                s, f = testbed.sender.execute(generation_cycles)
                yield Delay(f - sim.now)
                yield credits.get()
                testbed.uplink.send(
                    raw_size, to_broker, (generated, event)
                )

    def broker_proc():
        while True:
            generated, item = yield to_broker.get()
            if modulator_at == "sender":
                # pure relay: forward the continuation unchanged
                share = item
                testbed.downlink.send(
                    share.size, to_receiver, (generated, share)
                )
                continue
            share = version.sender_share(item)  # the modulator share
            if share.cycles > 0:
                s, f = testbed.broker.execute(share.cycles)
                yield Delay(f - sim.now)
                version.on_sender_done(share, f - s, sim, testbed)
            if share.payload is None:
                counters["filtered"] += 1
                credits.put(None)
                continue
            testbed.downlink.send(
                share.size, to_receiver, (generated, share)
            )

    def receiver_proc():
        while True:
            generated, share = yield to_receiver.get()
            rshare = version.receiver_share(share.payload)
            if rshare.cycles > 0:
                s, f = testbed.receiver.execute(rshare.cycles)
                yield Delay(f - sim.now)
                version.on_receiver_done(rshare, f - s, sim, testbed)
            completions.append((generated, sim.now))
            credits.put(None)

    sim.spawn(sender_proc())
    sim.spawn(broker_proc())
    sim.spawn(receiver_proc())
    sim.run()

    return PipelineResult(
        version=f"{version.name} (modulator at {modulator_at})",
        n_events=len(events),
        n_delivered=len(completions),
        n_filtered=counters["filtered"],
        start_time=start_time,
        end_time=sim.now,
        completions=completions,
        bytes_sent=testbed.downlink.bytes_sent,
    )
