"""Inline expansion of registered helper calls: whole-program UGs.

Paper section 7: "Our current implementation treats each method invocation
inside the message handling method as an opaque instruction, rather than
expanding the UG of the message handling method with a link to another UG
for PSEs inside the latter ...  Our future research will address more
complex, whole program based partitioning plans."

This pass implements that expansion for helpers registered as *inlinable*:
their lowered bodies are spliced into the caller (variables and labels
renamed, parameters bound by copies, returns rewritten to
assign-and-jump), so every edge inside a helper becomes a potential split
edge of the whole program.  Opaque registered functions behave exactly as
before — inlining is strictly opt-in per helper.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import LoweringError
from repro.ir.function import IRFunction
from repro.ir.instructions import (
    Assign,
    Goto,
    Identity,
    If,
    Instr,
    Invoke,
    Nop,
    Return,
    SetAttr,
    SetItem,
)
from repro.ir.registry import FunctionRegistry
from repro.ir.values import (
    BinOp,
    BuildDict,
    BuildList,
    BuildTuple,
    Call,
    Cast,
    Compare,
    Const,
    Expr,
    GetAttr,
    GetItem,
    IsInstance,
    New,
    Operand,
    OperandExpr,
    UnaryOp,
    Var,
)


def _rename_operand(operand: Operand, prefix: str) -> Operand:
    if isinstance(operand, Var):
        return Var(prefix + operand.name)
    return operand


def _rename_expr(expr: Expr, prefix: str) -> Expr:
    r = lambda o: _rename_operand(o, prefix)
    if isinstance(expr, OperandExpr):
        return OperandExpr(r(expr.operand))
    if isinstance(expr, BinOp):
        return BinOp(expr.op, r(expr.left), r(expr.right))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, r(expr.operand))
    if isinstance(expr, Compare):
        return Compare(expr.op, r(expr.left), r(expr.right))
    if isinstance(expr, Call):
        return Call(expr.func, tuple(r(a) for a in expr.args))
    if isinstance(expr, New):
        return New(expr.cls, tuple(r(a) for a in expr.args))
    if isinstance(expr, IsInstance):
        return IsInstance(r(expr.operand), expr.cls)
    if isinstance(expr, Cast):
        return Cast(expr.cls, r(expr.operand))
    if isinstance(expr, GetAttr):
        return GetAttr(r(expr.obj), expr.attr)
    if isinstance(expr, GetItem):
        return GetItem(r(expr.obj), r(expr.index))
    if isinstance(expr, BuildList):
        return BuildList(tuple(r(i) for i in expr.items))
    if isinstance(expr, BuildTuple):
        return BuildTuple(tuple(r(i) for i in expr.items))
    if isinstance(expr, BuildDict):
        return BuildDict(
            tuple((r(k), r(v)) for k, v in expr.items)
        )
    raise LoweringError(
        f"inliner: unknown expression {type(expr).__name__}"
    )


class _Splicer:
    """Accumulates the output instruction stream of one inlining pass."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.instrs: List[Instr] = []
        self.labels: Dict[str, int] = {}

    def place(self, label: str) -> None:
        self.labels[label] = len(self.instrs)
        self.instrs.append(Nop(comment=label))

    def emit(self, instr: Instr) -> None:
        self.instrs.append(instr)


def _splice_body(
    splicer: _Splicer,
    helper: IRFunction,
    args: Tuple[Operand, ...],
    target: Optional[Var],
    prefix: str,
) -> None:
    """Emit *helper*'s body with renaming; returns jump to an end label."""
    if len(args) != len(helper.params):
        raise LoweringError(
            f"inliner: {helper.name} takes {len(helper.params)} arguments, "
            f"call site passes {len(args)}"
        )
    # The prefix is globally unique per call site, so the end label is too.
    end_label = f"{prefix}$end"
    # Bind parameters by copy (the helper cannot rebind caller variables:
    # everything inside is renamed).
    for param, arg in zip(helper.params, args):
        splicer.emit(
            Assign(Var(prefix + param.name), OperandExpr(arg))
        )
    # Labels inside the helper get prefixed names; record their spliced
    # positions as we emit.
    label_map = {
        label: f"{prefix}{label}" for label in helper.labels
    }
    index_to_labels: Dict[int, List[str]] = {}
    for label, idx in helper.labels.items():
        index_to_labels.setdefault(idx, []).append(label)

    for i, instr in enumerate(helper.instrs):
        for label in index_to_labels.get(i, ()):
            splicer.labels[label_map[label]] = len(splicer.instrs)
        if isinstance(instr, Identity):
            continue  # parameters already bound above
        if isinstance(instr, Return):
            if target is not None:
                value = (
                    _rename_operand(instr.value, prefix)
                    if instr.value is not None
                    else Const(None)
                )
                splicer.emit(Assign(target, OperandExpr(value)))
            splicer.emit(Goto(end_label))
            continue
        if isinstance(instr, Assign):
            splicer.emit(
                Assign(
                    Var(prefix + instr.target.name),
                    _rename_expr(instr.expr, prefix),
                )
            )
        elif isinstance(instr, Invoke):
            splicer.emit(Invoke(_rename_expr(instr.call, prefix)))
        elif isinstance(instr, SetAttr):
            splicer.emit(
                SetAttr(
                    _rename_operand(instr.obj, prefix),
                    instr.attr,
                    _rename_operand(instr.value, prefix),
                )
            )
        elif isinstance(instr, SetItem):
            splicer.emit(
                SetItem(
                    _rename_operand(instr.obj, prefix),
                    _rename_operand(instr.index, prefix),
                    _rename_operand(instr.value, prefix),
                )
            )
        elif isinstance(instr, If):
            splicer.emit(
                If(
                    _rename_operand(instr.cond, prefix),
                    label_map[instr.label],
                    negate=instr.negate,
                )
            )
        elif isinstance(instr, Goto):
            splicer.emit(Goto(label_map[instr.label]))
        elif isinstance(instr, Nop):
            splicer.emit(Nop(comment=prefix + instr.comment))
        else:
            raise LoweringError(
                f"inliner: unknown instruction {type(instr).__name__}"
            )
    splicer.place(end_label)


def inline_calls(
    fn: IRFunction,
    registry: FunctionRegistry,
    *,
    max_depth: int = 8,
) -> IRFunction:
    """Expand every call to an inlinable helper inside *fn*.

    Repeats until no inlinable calls remain (helpers may call helpers),
    bounded by *max_depth* rounds — exceeding it means (mutual) recursion,
    which cannot be inlined and raises :class:`LoweringError`.
    """
    current = fn
    # one shared site counter across rounds keeps every prefix (and hence
    # every spliced label) globally unique
    sites = itertools.count(1)
    for _round in range(max_depth):
        expanded, changed = _inline_once(current, registry, sites)
        if not changed:
            return expanded
        current = expanded
    raise LoweringError(
        f"{fn.name}: inlining did not converge within {max_depth} rounds "
        f"(recursive helper?)"
    )


def _inline_once(
    fn: IRFunction, registry: FunctionRegistry, sites: Iterator[int]
) -> Tuple[IRFunction, bool]:
    splicer = _Splicer(fn.name)
    changed = False

    index_to_labels: Dict[int, List[str]] = {}
    for label, idx in fn.labels.items():
        index_to_labels.setdefault(idx, []).append(label)

    for i, instr in enumerate(fn.instrs):
        for label in index_to_labels.get(i, ()):
            splicer.labels[label] = len(splicer.instrs)

        call: Optional[Call] = None
        target: Optional[Var] = None
        if isinstance(instr, Assign) and isinstance(instr.expr, Call):
            call, target = instr.expr, instr.target
        elif isinstance(instr, Invoke):
            call = instr.call

        helper = None
        if call is not None and registry.has_function(call.func):
            helper = registry.function(call.func).inline_ir
        if helper is not None:
            changed = True
            prefix = f"{call.func}${next(sites)}$"
            _splice_body(splicer, helper, call.args, target, prefix)
            continue

        # Plain instruction: copy (branch targets re-resolve at finalize).
        if isinstance(instr, (If, Goto)):
            clone = dataclasses.replace(instr, target_index=-1)
            splicer.emit(clone)
        else:
            splicer.emit(instr)

    out = IRFunction(
        name=fn.name,
        params=fn.params,
        instrs=splicer.instrs,
        labels=splicer.labels,
        receiver_vars=fn.receiver_vars,
        source=fn.source,
    )
    return out.finalize(), changed
