"""Instruction-level IR substrate (the reproduction's Jimple equivalent).

Public surface:

* :func:`lower_function` — compile a restricted-Python handler to IR.
* :class:`IRFunction` — the lowered program; UG node ids are instruction
  indices.
* :class:`FunctionRegistry` / :func:`default_registry` — functions and
  classes a handler may reference; entries carry the ``receiver_only`` flag
  that drives StopNode marking.
* :class:`Interpreter`, :class:`CycleMeter`, :class:`Continuation`,
  :class:`Outcome`, :class:`SplitHook` — execution with split/profiling
  hooks.
* :func:`compile_function` / :class:`CompiledFunction` — the
  closure-compilation backend behind ``Interpreter(backend="compiled")``.
* :func:`format_function` — Jimple-style listing for diagnostics.
* :func:`validate_function` — structural checks.
"""

from repro.ir.builder import lower_function
from repro.ir.compiler import CompiledFunction, compile_function
from repro.ir.function import IRFunction
from repro.ir.inliner import inline_calls
from repro.ir.instructions import (
    Assign,
    Goto,
    Identity,
    If,
    Instr,
    Invoke,
    Nop,
    Return,
    SetAttr,
    SetItem,
)
from repro.ir.interpreter import (
    Continuation,
    CycleMeter,
    Edge,
    Interpreter,
    Outcome,
    SplitHook,
)
from repro.ir.printer import format_edge, format_function, format_unit_graph
from repro.ir.registry import (
    ClassEntry,
    FunctionEntry,
    FunctionRegistry,
    default_registry,
)
from repro.ir.validate import validate_function
from repro.ir.values import (
    BinOp,
    BuildDict,
    BuildList,
    BuildTuple,
    Call,
    Cast,
    Compare,
    Const,
    Expr,
    GetAttr,
    GetItem,
    IsInstance,
    New,
    Operand,
    OperandExpr,
    UnaryOp,
    Var,
)

__all__ = [
    "lower_function",
    "IRFunction",
    "inline_calls",
    "FunctionRegistry",
    "FunctionEntry",
    "ClassEntry",
    "default_registry",
    "Interpreter",
    "CompiledFunction",
    "compile_function",
    "CycleMeter",
    "Continuation",
    "Outcome",
    "SplitHook",
    "Edge",
    "format_function",
    "format_edge",
    "format_unit_graph",
    "validate_function",
    # instructions
    "Instr",
    "Assign",
    "Invoke",
    "Identity",
    "If",
    "Goto",
    "Return",
    "SetAttr",
    "SetItem",
    "Nop",
    # values
    "Var",
    "Const",
    "Expr",
    "BinOp",
    "UnaryOp",
    "Compare",
    "Call",
    "New",
    "IsInstance",
    "Cast",
    "GetAttr",
    "GetItem",
    "BuildDict",
    "BuildList",
    "BuildTuple",
    "OperandExpr",
]
