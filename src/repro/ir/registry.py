"""Registry of functions and classes callable from IR handlers.

The paper's prototype treats method invocations inside a handler as opaque
instructions, and marks instructions that invoke *native* methods as
StopNodes (they must execute at the receiver).  We model that with a
registry: handler code may only call functions registered here, and each
registration records

* the Python callable that implements the function,
* whether the function is **receiver-only** ("native" in the paper — e.g. a
  display routine backed by the client's frame buffer),
* an optional **cycle-cost function** used by the metered interpreter when
  handlers run on simulated hosts (see :mod:`repro.simnet`),
* whether the function is **pure** (no observable side effects), which lets
  analyses reason about mutation.

Registered classes play the role of the application classes that Soot sees
on the Java classpath (e.g. ``ImageData`` in the paper's Appendix A).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.errors import UnknownFunctionError


@dataclass
class FunctionEntry:
    """One registered callable."""

    name: str
    fn: Callable
    receiver_only: bool = False
    pure: bool = True
    #: cycles(args) -> float: abstract CPU cycles consumed by one invocation,
    #: used only under metered execution.  ``None`` means a default small cost.
    cycle_cost: Optional[Callable[..., float]] = None
    #: lowered body for inline expansion (see repro.ir.inliner); ``None``
    #: keeps the call opaque, the paper's default treatment.
    inline_ir: Optional[object] = None


@dataclass
class ClassEntry:
    """One registered constructible class."""

    name: str
    cls: type
    #: cycles(*ctor_args) for metered execution of the constructor.
    cycle_cost: Optional[Callable[..., float]] = None


class FunctionRegistry:
    """Name → callable/class mapping shared by builder, analyses, interpreter.

    A registry is deliberately explicit rather than ambient: the same handler
    can be analyzed against different registries (e.g. marking ``display`` as
    receiver-only for a thin client but not for a peer), which changes the
    StopNode set and therefore the PSE set.
    """

    def __init__(self) -> None:
        self._functions: Dict[str, FunctionEntry] = {}
        self._classes: Dict[str, ClassEntry] = {}
        #: mutation counter; compiled-code and analysis caches key on it so
        #: any (re)registration invalidates artifacts that prefetched entries.
        self._version = 0
        self._install_builtins()

    @property
    def version(self) -> int:
        """Monotonic registration counter (cache-invalidation token)."""
        return self._version

    # -- registration -----------------------------------------------------

    def register_function(
        self,
        name: str,
        fn: Callable,
        *,
        receiver_only: bool = False,
        pure: bool = True,
        cycle_cost: Optional[Callable[..., float]] = None,
    ) -> FunctionEntry:
        """Register *fn* under *name*; returns the entry for inspection."""
        entry = FunctionEntry(
            name=name,
            fn=fn,
            receiver_only=receiver_only,
            pure=pure,
            cycle_cost=cycle_cost,
        )
        self._functions[name] = entry
        self._version += 1
        return entry

    def register_inline(
        self,
        name: str,
        fn_or_source,
        *,
        constants=None,
    ) -> FunctionEntry:
        """Register a helper whose body is expanded into its callers.

        The helper is lowered against this registry (so everything *it*
        calls must be registered first); the entry stays callable for
        opaque use via the interpreter.  Inlinable helpers are necessarily
        pure sender-safe code: receiver-only natives belong inside them,
        not as them.
        """
        from repro.ir.builder import lower_function
        from repro.ir.validate import validate_function

        ir = lower_function(
            fn_or_source, self, constants=constants, name=name
        )
        validate_function(ir)

        if callable(fn_or_source):
            direct = fn_or_source
        else:
            def direct(*args):
                from repro.ir.interpreter import Interpreter

                return Interpreter(self).run(ir, list(args)).value

        entry = FunctionEntry(
            name=name, fn=direct, pure=True, inline_ir=ir
        )
        self._functions[name] = entry
        self._version += 1
        return entry

    def register_class(
        self,
        cls: type,
        *,
        name: Optional[str] = None,
        cycle_cost: Optional[Callable[..., float]] = None,
    ) -> ClassEntry:
        """Register a class so handlers can ``Cls(...)`` / ``isinstance``."""
        entry = ClassEntry(name=name or cls.__name__, cls=cls, cycle_cost=cycle_cost)
        self._classes[entry.name] = entry
        self._version += 1
        return entry

    # -- lookup -----------------------------------------------------------

    def function(self, name: str) -> FunctionEntry:
        try:
            return self._functions[name]
        except KeyError:
            raise UnknownFunctionError(
                f"function {name!r} is not registered; handlers may only call "
                f"registered functions"
            ) from None

    def has_function(self, name: str) -> bool:
        return name in self._functions

    def cls(self, name: str) -> ClassEntry:
        try:
            return self._classes[name]
        except KeyError:
            raise UnknownFunctionError(
                f"class {name!r} is not registered"
            ) from None

    def has_class(self, name: str) -> bool:
        return name in self._classes

    def is_receiver_only(self, name: str) -> bool:
        """True when calls to *name* pin their instruction to the receiver."""
        entry = self._functions.get(name)
        return entry is not None and entry.receiver_only

    def function_names(self) -> Tuple[str, ...]:
        return tuple(self._functions)

    def class_names(self) -> Tuple[str, ...]:
        return tuple(self._classes)

    # -- builtins ----------------------------------------------------------

    def _install_builtins(self) -> None:
        """Install a small standard library available to every handler.

        These mirror what a Jimple handler gets "for free" from the JDK:
        ``len``, ``min``/``max``, ``abs``, ``range``, numeric conversions.
        All are pure and sender-safe.
        """
        for name, fn in (
            ("len", len),
            ("min", min),
            ("max", max),
            ("abs", abs),
            ("int", int),
            ("float", float),
            ("bool", bool),
            ("str", str),
            ("range", lambda *a: list(range(*a))),
            ("sum", sum),
            ("round", round),
        ):
            self.register_function(name, fn, pure=True)


def default_registry() -> FunctionRegistry:
    """A fresh registry with only the builtins installed."""
    return FunctionRegistry()
