"""Source-codegen backend for the IR interpreter.

The closure backend (:mod:`repro.ir.compiler`) removed per-instruction
*dispatch* but still executes every operand through the register dict: each
``x = y + z`` costs two dict loads, one dict store, and a closure frame.
This module goes one step further and lowers an
:class:`~repro.ir.function.IRFunction` to **generated Python source** that
is compiled once with :func:`compile`/``exec``:

* IR registers become real Python locals (``LOAD_FAST`` instead of dict
  lookups); register names that are not valid identifiers (Jimple-style
  temps like ``$t3``) are mangled reversibly,
* basic blocks become straight-line Python code; control transfers go
  through a binary dispatch tree over block leaders, so a loop iteration
  pays one ``O(log blocks)`` dispatch instead of one closure call per
  instruction,
* constants, operator applications, and registry entries are baked into
  the generated code object's globals,
* split checks are inlined at the exact UG edges of the active plan: the
  generated source is *specialized per (split set, observe set, metered)*
  — unwatched edges have no code at all, watched edges carry the observer
  call and the live-variable capture.  Specializations are cached; plans
  change rarely relative to message traffic.

The metering protocol is preserved so ConvexCut's cost model and the
profiling units see identical observations: one ``instr_cycles`` charge per
executed instruction (accumulated in a local and flushed in a ``finally``
so mid-block errors leave the meter exactly as the tree-walker would) and
per-call ``cycle_cost(*args)``/``default_call_cycles`` charges in the same
order as the reference backends.

Semantics are byte-identical to the tree-walking backend — same
:class:`~repro.ir.interpreter.Outcome`/continuation contents including
capture-dict ordering, same cycle-meter charges, same
:class:`~repro.errors.InterpreterError` messages.  The differential suite
in ``tests/integration/test_backend_equivalence.py`` enforces this across
all three backends.

Anything the generated code cannot reproduce exactly falls back to the
closure backend for that execution, with a counted warning rather than a
crash:

* generic split hooks (no ``split_edge_set``) — the per-edge
  ``should_split`` protocol needs a live env dict per edge,
* observe-all edge observers (``observe_edges=None`` with an observer),
* non-:class:`~repro.ir.interpreter.CycleMeter` meters (codegen writes
  meter fields directly instead of calling ``charge_instr`` per step),
* any source-generation failure.

Fallback counts are recorded in :data:`fallback_counts` and surfaced once
per (function, reason) through :mod:`warnings`.
"""

from __future__ import annotations

import math as _math
import re
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import InterpreterError
from repro.ir.function import IRFunction
from repro.ir.instructions import (
    Assign,
    Goto,
    Identity,
    If,
    Instr,
    Invoke,
    Nop,
    Return,
    SetAttr,
    SetItem,
)
from repro.ir.interpreter import (
    Continuation,
    CycleMeter,
    Edge,
    Outcome,
)
from repro.ir.registry import FunctionRegistry
from repro.ir.values import (
    BinOp,
    BuildDict,
    BuildList,
    BuildTuple,
    Call,
    Cast,
    Compare,
    Const,
    Expr,
    GetAttr,
    GetItem,
    IsInstance,
    New,
    Operand,
    OperandExpr,
    UnaryOp,
    Var,
)

_EMPTY_EDGES: FrozenSet[Edge] = frozenset()

#: Why executions fell back to the closure backend, by reason.
fallback_counts: Dict[str, int] = {}

_warned: Set[Tuple[str, str]] = set()


def fallback_total() -> int:
    """Total number of executions routed to the closure backend."""
    return sum(fallback_counts.values())


def reset_fallback_counts() -> None:
    from repro.obs.flight import reset_wide_event_dedupe

    fallback_counts.clear()
    _warned.clear()
    reset_wide_event_dedupe("codegen.fallback")


def _count_fallback(fname: str, reason: str) -> None:
    fallback_counts[reason] = fallback_counts.get(reason, 0) + 1
    key = (fname, reason)
    if key not in _warned:
        _warned.add(key)
        # One structured wide event (and one RuntimeWarning) per
        # (function, reason); the per-execution tally stays in
        # fallback_counts.
        from repro.obs.flight import wide_event

        wide_event(
            "codegen.fallback",
            dedupe=f"{fname}:{reason}",
            warn=(
                f"codegen backend: {fname}: falling back to the closure "
                f"backend ({reason})"
            ),
            stacklevel=4,
            function=fname,
            reason=reason,
        )


# -- name mangling -------------------------------------------------------------

#: matches a mangled register name quoted inside an UnboundLocalError message.
_MANGLED_RE = re.compile(r"'(_mp_[A-Za-z0-9_]*)'")


def _mangle(name: str) -> str:
    """Map an IR register name to a valid, reversible Python identifier.

    ``_`` is the escape character (doubled for a literal underscore) so
    Jimple temps like ``$t3`` (→ ``_mp__x24t3``) can never collide with a
    plain name that happens to spell the escape sequence.
    """
    out = ["_mp_"]
    for ch in name:
        if ch == "_":
            out.append("__")
        elif ch.isascii() and ch.isalnum():
            out.append(ch)
        else:
            out.append("_x%02x" % ord(ch))
    return "".join(out)


def _lit(value: object) -> str:
    """A Python source literal for a baked constant."""
    if isinstance(value, float) and not _math.isfinite(value):
        raise _Unsupported("non-finite float has no source literal")
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    raise _Unsupported(f"constant {value!r} has no source literal")


class _Unsupported(Exception):
    """Raised during emission when an IR shape cannot be generated."""


# -- the emitter ---------------------------------------------------------------

_BIN_TOKENS = {
    "+", "-", "*", "/", "//", "%", "**", "<<", ">>", "&", "|", "^",
}
_CMP_TOKENS = {
    "==", "!=", "<", "<=", ">", ">=", "is", "is not", "in", "not in",
}
_UNARY_TOKENS = {"-", "+", "not", "~"}


class _Emitter:
    """Lowers one IRFunction + one edge specialization to Python source."""

    def __init__(
        self,
        fn: IRFunction,
        registry: FunctionRegistry,
        *,
        split_edges: FrozenSet[Edge],
        observe_edges: FrozenSet[Edge],
        metered: bool,
        entry_pcs: FrozenSet[int],
    ) -> None:
        self.fn = fn
        self.registry = registry
        self.split_edges = split_edges
        self.observe_edges = observe_edges
        self.metered = metered
        self.entry_pcs = entry_pcs
        self.lines: List[str] = []
        self.glb: Dict[str, object] = {"_IE": InterpreterError, "_REG": registry}
        self._gseq = 0
        self.vars: List[str] = []  # original register names, stable order
        self._var_set: Set[str] = set()
        self.leaders: FrozenSet[int] = frozenset()

    # -- small helpers ---------------------------------------------------------

    def _emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def _bake(self, prefix: str, obj: object) -> str:
        name = f"_{prefix}{self._gseq}"
        self._gseq += 1
        self.glb[name] = obj
        return name

    def _note_var(self, name: str) -> None:
        if name not in self._var_set:
            self._var_set.add(name)
            self.vars.append(name)

    def _operand(self, operand: Operand) -> str:
        """Source expression for an operand (const literal or mangled local)."""
        if isinstance(operand, Const):
            try:
                return _lit(operand.value)
            except _Unsupported:
                return self._bake("K", operand.value)
        self._note_var(operand.name)
        return _mangle(operand.name)

    def _watched(self, edge: Edge) -> bool:
        return edge in self.split_edges or edge in self.observe_edges

    # -- edge / transfer emission ----------------------------------------------

    def _emit_edge(self, indent: int, edge: Edge) -> None:
        """Observer call and/or split capture at a watched UG edge."""
        u, v = edge
        self._emit(indent, "_loc = locals()")
        self._emit(
            indent,
            "_env = {_o: _loc[_k] for _k, _o in _VARS if _k in _loc}",
        )
        if edge in self.observe_edges:
            if self.metered:
                # Observers read meter.cycles mid-execution (per-PSE cycle
                # attribution); flush the local accumulator first.
                self._emit(indent, "meter.cycles += _cy; _cy = 0.0")
                self._emit(indent, "meter.instructions += _n - _fn; _fn = _n")
            self._emit(indent, f"_observer(({u}, {v}), _env)")
        if edge in self.split_edges:
            self._emit(
                indent,
                f"return ('s', ({u}, {v}), _capture(({u}, {v}), _env)), _n",
            )

    def _emit_transfer(self, indent: int, u: int, v: int, *, inline: bool) -> None:
        """Move control from pc *u* to pc *v* (observer/split code included).

        ``inline=True`` means *v* is the next textual instruction of the
        same block, so no dispatch jump is emitted.
        """
        n = len(self.fn.instrs)
        if v >= n or v < 0:
            if v >= n:
                self._emit(
                    indent,
                    f"raise _IE({_lit(self.fn.name + ': fell off the end at instruction ' + str(u))})",
                )
                return
            raise _Unsupported(f"unresolved branch target at pc {u}")
        if self._watched((u, v)):
            self._emit_edge(indent, (u, v))
            if (u, v) in self.split_edges:
                return  # the split return already left the function
        if not inline:
            self._emit(indent, f"_pc = {v}")
            self._emit(indent, "continue")

    # -- instruction emission --------------------------------------------------

    def _charge_lines(self, indent: int) -> None:
        if self.metered:
            self._emit(indent, "_n += 1; _cy += _ic")
        else:
            self._emit(indent, "_n += 1")

    def _emit_call_like(
        self,
        indent: int,
        target: Optional[str],
        func_src: str,
        cost_src: Optional[str],
        args: Tuple[Operand, ...],
        prefix: str,
        *,
        reraise_interp: bool,
        lazy_entry: Optional[str] = None,
    ) -> None:
        """Shared emission for Call/Invoke/New.

        ``lazy_entry`` is source for a registry lookup bound to ``_en``
        before the argument loads, mirroring the tree-walker's
        lookup-before-operands order for unregistered names.
        """
        if lazy_entry is not None:
            self._emit(indent, f"_en = {lazy_entry}")
        # Hoist Var operands out of the try so an unbound argument raises
        # used-before-assignment, not a wrapped call error.
        arg_srcs: List[str] = []
        for i, a in enumerate(args):
            src = self._operand(a)
            if isinstance(a, Const):
                arg_srcs.append(src)
            else:
                self._emit(indent, f"_a{i} = {src}")
                arg_srcs.append(f"_a{i}")
        call_args = ", ".join(arg_srcs)
        if self.metered:
            if lazy_entry is not None:
                self._emit(indent, "_cs = _en.cycle_cost")
                self._emit(
                    indent,
                    f"_cy += _dc if _cs is None else _cs({call_args})",
                )
            elif cost_src is not None:
                self._emit(indent, f"_cy += {cost_src}({call_args})")
            else:
                self._emit(indent, "_cy += _dc")
        self._emit(indent, "try:")
        assign = f"{target} = " if target is not None else ""
        self._emit(indent + 1, f"{assign}{func_src}({call_args})")
        if reraise_interp:
            self._emit(indent, "except _IE:")
            self._emit(indent + 1, "raise")
        self._emit(indent, "except Exception as _exc:")
        self._emit(
            indent + 1,
            f"raise _IE({_lit(prefix)} + type(_exc).__name__ + ': ' + str(_exc)) from _exc",
        )

    def _emit_assign_expr(self, indent: int, target: str, expr: Expr) -> None:
        fname = self.fn.name

        if isinstance(expr, OperandExpr):
            self._emit(indent, f"{target} = {self._operand(expr.operand)}")
            return

        if isinstance(expr, (BinOp, Compare)):
            if isinstance(expr, BinOp):
                if expr.op not in _BIN_TOKENS:
                    raise _Unsupported(f"binary op {expr.op!r}")
                catch = "(TypeError, ZeroDivisionError)"
            else:
                if expr.op not in _CMP_TOKENS:
                    raise _Unsupported(f"compare op {expr.op!r}")
                catch = "TypeError"
            left = self._operand(expr.left)
            right = self._operand(expr.right)
            prefix = f"{fname}: {expr!r} failed: "
            self._emit(indent, "try:")
            self._emit(indent + 1, f"{target} = {left} {expr.op} {right}")
            self._emit(indent, f"except {catch} as _exc:")
            self._emit(
                indent + 1,
                f"raise _IE({_lit(prefix)} + str(_exc)) from _exc",
            )
            return

        if isinstance(expr, UnaryOp):
            if expr.op not in _UNARY_TOKENS:
                message = f"{fname}: unknown unary op {expr.op!r}"
                self._emit(indent, f"raise _IE({_lit(message)})")
                return
            src = self._operand(expr.operand)
            prefix = f"{fname}: {expr!r} failed: "
            op = expr.op + (" " if expr.op == "not" else "")
            self._emit(indent, "try:")
            self._emit(indent + 1, f"{target} = {op}{src}")
            self._emit(indent, "except TypeError as _exc:")
            self._emit(
                indent + 1,
                f"raise _IE({_lit(prefix)} + str(_exc)) from _exc",
            )
            return

        if isinstance(expr, Call):
            prefix = f"{fname}: call {expr.func}(...) raised "
            if self.registry.has_function(expr.func):
                entry = self.registry.function(expr.func)
                func_src = self._bake("F", entry.fn)
                cost_src = (
                    self._bake("C", entry.cycle_cost)
                    if entry.cycle_cost is not None
                    else None
                )
                self._emit_call_like(
                    indent, target, func_src, cost_src, expr.args, prefix,
                    reraise_interp=True,
                )
            else:
                self._emit_call_like(
                    indent, target, "_en.fn", None, expr.args, prefix,
                    reraise_interp=True,
                    lazy_entry=f"_REG.function({_lit(expr.func)})",
                )
            return

        if isinstance(expr, New):
            prefix = f"{fname}: new {expr.cls}(...) raised "
            if self.registry.has_class(expr.cls):
                entry = self.registry.cls(expr.cls)
                func_src = self._bake("N", entry.cls)
                cost_src = (
                    self._bake("C", entry.cycle_cost)
                    if entry.cycle_cost is not None
                    else None
                )
                self._emit_call_like(
                    indent, target, func_src, cost_src, expr.args, prefix,
                    reraise_interp=False,
                )
            else:
                self._emit_call_like(
                    indent, target, "_en.cls", None, expr.args, prefix,
                    reraise_interp=False,
                    lazy_entry=f"_REG.cls({_lit(expr.cls)})",
                )
            return

        if isinstance(expr, IsInstance):
            src = self._operand(expr.operand)
            if self.registry.has_class(expr.cls):
                cls_src = self._bake("T", self.registry.cls(expr.cls).cls)
                self._emit(indent, f"{target} = isinstance({src}, {cls_src})")
            else:
                self._emit(indent, f"_o = {src}")
                self._emit(
                    indent,
                    f"{target} = isinstance(_o, _REG.cls({_lit(expr.cls)}).cls)",
                )
            return

        if isinstance(expr, Cast):
            src = self._operand(expr.operand)
            self._emit(indent, f"_o = {src}")
            if self.registry.has_class(expr.cls):
                cls_src = self._bake("T", self.registry.cls(expr.cls).cls)
            else:
                cls_src = f"_REG.cls({_lit(expr.cls)}).cls"
            self._emit(indent, f"if not isinstance(_o, {cls_src}):")
            pre = f"{fname}: cast of "
            suf = f" to {expr.cls} failed"
            self._emit(
                indent + 1,
                f"raise _IE({_lit(pre)} + type(_o).__name__ + {_lit(suf)})",
            )
            self._emit(indent, f"{target} = _o")
            return

        if isinstance(expr, GetAttr):
            src = self._operand(expr.obj)
            self._emit(indent, f"_o = {src}")
            if expr.attr.isidentifier():
                access = f"_o.{expr.attr}"
            else:
                access = f"getattr(_o, {_lit(expr.attr)})"
            pre = f"{fname}: "
            suf = f" has no attribute {expr.attr!r}"
            self._emit(indent, "try:")
            self._emit(indent + 1, f"{target} = {access}")
            self._emit(indent, "except AttributeError as _exc:")
            self._emit(
                indent + 1,
                f"raise _IE({_lit(pre)} + type(_o).__name__ + {_lit(suf)}) from _exc",
            )
            return

        if isinstance(expr, GetItem):
            obj = self._operand(expr.obj)
            idx = self._operand(expr.index)
            prefix = f"{fname}: indexing failed: "
            self._emit(indent, "try:")
            self._emit(indent + 1, f"{target} = {obj}[{idx}]")
            self._emit(indent, "except (TypeError, KeyError, IndexError) as _exc:")
            self._emit(
                indent + 1,
                f"raise _IE({_lit(prefix)} + str(_exc)) from _exc",
            )
            return

        if isinstance(expr, BuildList):
            items = ", ".join(self._operand(i) for i in expr.items)
            self._emit(indent, f"{target} = [{items}]")
            return

        if isinstance(expr, BuildTuple):
            items = ", ".join(self._operand(i) for i in expr.items)
            if len(expr.items) == 1:
                items += ","
            self._emit(indent, f"{target} = ({items})")
            return

        if isinstance(expr, BuildDict):
            inner = ", ".join(
                f"{self._operand(k)}: {self._operand(v)}"
                for k, v in expr.items
            )
            self._emit(indent, f"{target} = {{{inner}}}")
            return

        raise _Unsupported(f"expression {type(expr).__name__}")

    def _emit_instr(self, indent: int, pc: int, instr: Instr) -> None:
        fname = self.fn.name
        self._emit(indent, f"# {pc}: {instr!r}".replace("\n", " "))
        self._charge_lines(indent)

        if isinstance(instr, Assign):
            self._note_var(instr.target.name)
            self._emit_assign_expr(indent, _mangle(instr.target.name), instr.expr)
            return

        if isinstance(instr, Invoke):
            expr = instr.call
            prefix = f"{fname}: call {expr.func}(...) raised "
            if self.registry.has_function(expr.func):
                entry = self.registry.function(expr.func)
                func_src = self._bake("F", entry.fn)
                cost_src = (
                    self._bake("C", entry.cycle_cost)
                    if entry.cycle_cost is not None
                    else None
                )
                self._emit_call_like(
                    indent, None, func_src, cost_src, expr.args, prefix,
                    reraise_interp=True,
                )
            else:
                self._emit_call_like(
                    indent, None, "_en.fn", None, expr.args, prefix,
                    reraise_interp=True,
                    lazy_entry=f"_REG.function({_lit(expr.func)})",
                )
            return

        if isinstance(instr, Identity):
            self._note_var(instr.target.name)
            name = _mangle(instr.target.name)
            message = f"{fname}: parameter {instr.target.name!r} unbound"
            self._emit(indent, "try:")
            self._emit(indent + 1, name)
            self._emit(indent, "except UnboundLocalError:")
            self._emit(indent + 1, f"raise _IE({_lit(message)}) from None")
            return

        if isinstance(instr, SetAttr):
            obj = self._operand(instr.obj)
            val = self._operand(instr.value)
            self._emit(indent, f"_o = {obj}")
            self._emit(indent, f"_v = {val}")
            if instr.attr.isidentifier():
                assign = f"_o.{instr.attr} = _v"
            else:
                assign = f"setattr(_o, {_lit(instr.attr)}, _v)"
            pre = f"{fname}: cannot set {instr.attr!r} on "
            self._emit(indent, "try:")
            self._emit(indent + 1, assign)
            self._emit(indent, "except AttributeError as _exc:")
            self._emit(
                indent + 1,
                f"raise _IE({_lit(pre)} + type(_o).__name__) from _exc",
            )
            return

        if isinstance(instr, SetItem):
            obj = self._operand(instr.obj)
            idx = self._operand(instr.index)
            val = self._operand(instr.value)
            self._emit(indent, f"_o = {obj}")
            self._emit(indent, f"_i = {idx}")
            self._emit(indent, f"_v = {val}")
            pre = f"{fname}: item assignment failed on "
            self._emit(indent, "try:")
            self._emit(indent + 1, "_o[_i] = _v")
            self._emit(indent, "except (TypeError, KeyError, IndexError) as _exc:")
            self._emit(
                indent + 1,
                f"raise _IE({_lit(pre)} + type(_o).__name__ + ': ' + str(_exc)) from _exc",
            )
            return

        if isinstance(instr, Nop):
            return

        if isinstance(instr, (Return, Goto, If)):
            # charge emitted above; control flow belongs to the block walker
            return

        raise _Unsupported(f"instruction {type(instr).__name__}")

    # -- block / dispatch emission ---------------------------------------------

    def _compute_leaders(self) -> List[int]:
        n = len(self.fn.instrs)
        leaders: Set[int] = {0}
        for pc, instr in enumerate(self.fn.instrs):
            if isinstance(instr, Goto):
                leaders.add(instr.target_index)
            elif isinstance(instr, If):
                leaders.add(instr.target_index)
        leaders |= {pc for pc in self.entry_pcs if 0 <= pc < n}
        leaders.discard(-1)
        return sorted(p for p in leaders if 0 <= p < n)

    def _emit_block(self, indent: int, leader: int, leaders: List[int]) -> None:
        n = len(self.fn.instrs)
        idx = leaders.index(leader)
        end = leaders[idx + 1] if idx + 1 < len(leaders) else n
        pc = leader
        while pc < end:
            instr = self.fn.instrs[pc]
            self._emit_instr(indent, pc, instr)
            if isinstance(instr, Return):
                if instr.value is None:
                    self._emit(indent, "return ('r', None), _n")
                else:
                    self._emit(
                        indent, f"return ('r', {self._operand(instr.value)}), _n"
                    )
                return
            if isinstance(instr, Goto):
                self._emit_transfer(indent, pc, instr.target_index, inline=False)
                return
            if isinstance(instr, If):
                cond = instr.cond
                if isinstance(cond, Const):
                    taken = bool(cond.value) != bool(instr.negate)
                    if taken:
                        self._emit_transfer(
                            indent, pc, instr.target_index, inline=False
                        )
                        return
                    # fall through to pc + 1 below
                else:
                    neg = "not " if instr.negate else ""
                    self._emit(indent, f"if {neg}{self._operand(cond)}:")
                    self._emit_transfer(
                        indent + 1, pc, instr.target_index, inline=False
                    )
            # fallthrough edge (pc, pc + 1)
            nxt = pc + 1
            if nxt >= n:
                self._emit_transfer(indent, pc, nxt, inline=False)  # raises
                return
            if nxt == end:
                self._emit_transfer(indent, pc, nxt, inline=False)
                return
            self._emit_transfer(indent, pc, nxt, inline=True)
            pc = nxt

    def _emit_dispatch(
        self, indent: int, leaders: List[int], lo: int, hi: int
    ) -> None:
        if hi - lo == 1:
            self._emit(indent, f"# block {leaders[lo]}")
            self._emit_block(indent, leaders[lo], leaders)
            return
        mid = (lo + hi) // 2
        self._emit(indent, f"if _pc < {leaders[mid]}:")
        self._emit_dispatch(indent + 1, leaders, lo, mid)
        self._emit(indent, "else:")
        self._emit_dispatch(indent + 1, leaders, mid, hi)

    # -- top level -------------------------------------------------------------

    def generate(self) -> Tuple[str, Dict[str, object], FrozenSet[int]]:
        fn = self.fn
        leaders = self._compute_leaders()
        self.leaders = frozenset(leaders)

        # Pre-register every variable the function touches so entry binding
        # and the _VARS demangle table are complete and stably ordered.
        for param in fn.params:
            self._note_var(param.name)
        for instr in fn.instrs:
            for v in instr.defs():
                self._note_var(v.name)
            for v in instr.uses():
                self._note_var(v.name)

        body: List[str] = []
        self.lines = body
        self._emit(0, f"# generated by repro.ir.codegen for {fn.name!r}")
        self._emit(
            0,
            f"# split={sorted(self.split_edges)} "
            f"observe={sorted(self.observe_edges)} metered={self.metered}",
        )
        self._emit(
            0,
            "def _mp_exec(env, _start, meter, _observer, _capture, _max_steps):",
        )
        self._emit(1, "_n = 0")
        if self.metered:
            self._emit(1, "_cy = 0.0")
            self._emit(1, "_fn = 0")
        self._emit(1, "try:")
        if self.metered:
            self._emit(2, "_ic = meter.instr_cycles")
            self._emit(2, "_dc = meter.default_call_cycles")
        for name in self.vars:
            self._emit(2, f"if {_lit(name)} in env:")
            self._emit(3, f"{_mangle(name)} = env[{_lit(name)}]")
        self._emit(2, "_pc = _start")
        self._emit(2, "while True:")
        steps_msg_pre = f"{fn.name}: exceeded "
        self._emit(3, "if _n > _max_steps:")
        self._emit(
            4,
            f"raise _IE({_lit(steps_msg_pre)} + str(_max_steps)"
            f" + ' steps (infinite loop?)')",
        )
        self._emit_dispatch(3, leaders, 0, len(leaders))
        self._emit(1, "except UnboundLocalError as _exc:")
        self._emit(2, "raise _TR(_exc) from None")
        if self.metered:
            self._emit(1, "finally:")
            self._emit(2, "meter.cycles += _cy")
            self._emit(2, "meter.instructions += _n - _fn")

        self.glb["_VARS"] = tuple((_mangle(v), v) for v in self.vars)
        self.glb["_TR"] = _make_translator(
            fn.name, {_mangle(v): v for v in self.vars}
        )
        return "\n".join(body) + "\n", self.glb, self.leaders


def _make_translator(
    fname: str, demangle: Dict[str, str]
) -> Callable[[BaseException], InterpreterError]:
    """Translate an UnboundLocalError on a mangled register back into the
    tree-walker's used-before-assignment InterpreterError."""

    def translate(exc: BaseException) -> InterpreterError:
        match = _MANGLED_RE.search(str(exc))
        if match is not None:
            orig = demangle.get(match.group(1))
            if orig is not None:
                return InterpreterError(
                    f"{fname}: variable {orig!r} used before assignment"
                )
        raise exc

    return translate


def generate_source(
    fn: IRFunction,
    registry: FunctionRegistry,
    *,
    split_edges: FrozenSet[Edge] = _EMPTY_EDGES,
    observe_edges: FrozenSet[Edge] = _EMPTY_EDGES,
    metered: bool = True,
    entry_pcs: FrozenSet[int] = frozenset(),
) -> str:
    """The generated Python source for one specialization of *fn*.

    Public so regressions diff readably (golden test) and so the curious
    can inspect what the backend actually runs.
    """
    emitter = _Emitter(
        fn,
        registry,
        split_edges=split_edges,
        observe_edges=observe_edges,
        metered=metered,
        entry_pcs=entry_pcs,
    )
    source, _, _ = emitter.generate()
    return source


# -- the compiled artifact -----------------------------------------------------


class _Variant:
    """One compiled specialization: (split set, observe set, metered)."""

    __slots__ = ("run", "leaders", "source")

    def __init__(self, run, leaders: FrozenSet[int], source: str) -> None:
        self.run = run
        self.leaders = leaders
        self.source = source


class CodegenFunction:
    """An :class:`IRFunction` lowered to generated Python source.

    ``execute`` has the same contract as
    :meth:`repro.ir.compiler.CompiledFunction.execute` and returns
    ``(outcome, steps)``.
    """

    __slots__ = (
        "fn",
        "registry",
        "name",
        "key",
        "_variants",
        "_extra_entries",
        "_disabled",
        "_compiled",
    )

    def __init__(
        self, fn: IRFunction, registry: FunctionRegistry, key: tuple
    ) -> None:
        self.fn = fn
        self.registry = registry
        self.name = fn.name
        self.key = key
        self._variants: Dict[tuple, _Variant] = {}
        self._extra_entries: Set[int] = set()
        self._disabled = False
        self._compiled = None

    # -- fallback --------------------------------------------------------------

    def _closure_backend(self):
        if self._compiled is None:
            from repro.ir.compiler import compile_function

            self._compiled = compile_function(self.fn, self.registry)
        return self._compiled

    def _fallback(self, reason: str, env, start_pc, **kwargs):
        _count_fallback(self.name, reason)
        return self._closure_backend().execute(env, start_pc, **kwargs)

    # -- variant management ----------------------------------------------------

    def _emit_variant(
        self,
        vkey: tuple,
        split_edges: FrozenSet[Edge],
        observe_edges: FrozenSet[Edge],
        metered: bool,
    ) -> _Variant:
        emitter = _Emitter(
            self.fn,
            self.registry,
            split_edges=split_edges,
            observe_edges=observe_edges,
            metered=metered,
            entry_pcs=frozenset(self._extra_entries),
        )
        source, glb, leaders = emitter.generate()
        code = compile(source, f"<codegen {self.name}>", "exec")
        exec(code, glb)
        variant = _Variant(glb["_mp_exec"], leaders, source)
        if len(self._variants) > 64:
            self._variants.clear()
        self._variants[vkey] = variant
        return variant

    # -- execution -------------------------------------------------------------

    def execute(
        self,
        env: Dict[str, object],
        start_pc: int,
        *,
        split_hook=None,
        edge_observer=None,
        observe_edges: Optional[FrozenSet[Edge]] = None,
        meter=None,
        max_steps: int,
        trace_ctx: Optional[Tuple[int, int]] = None,
    ) -> Tuple[Outcome, int]:
        kwargs = dict(
            split_hook=split_hook,
            edge_observer=edge_observer,
            observe_edges=observe_edges,
            meter=meter,
            max_steps=max_steps,
            trace_ctx=trace_ctx,
        )
        if self._disabled:
            return self._closure_backend().execute(env, start_pc, **kwargs)

        split_set: Optional[FrozenSet[Edge]] = None
        capture_specs: Optional[Dict[Edge, Tuple[str, ...]]] = None
        if split_hook is not None:
            split_set = split_hook.split_edge_set()
            if split_set is None:
                # Per-edge should_split protocol needs a live env per edge.
                return self._fallback("generic split hook", env, start_pc, **kwargs)
            capture_specs = split_hook.capture_specs()
        if edge_observer is not None and observe_edges is None:
            return self._fallback("observe-all edge observer", env, start_pc, **kwargs)
        if meter is not None and type(meter) is not CycleMeter:
            return self._fallback("custom cycle meter", env, start_pc, **kwargs)

        split_edges = split_set if split_set is not None else _EMPTY_EDGES
        obs_edges = (
            observe_edges if edge_observer is not None else _EMPTY_EDGES
        )
        metered = meter is not None
        vkey = (split_edges, obs_edges, metered)
        variant = self._variants.get(vkey)
        try:
            if variant is None:
                variant = self._emit_variant(vkey, split_edges, obs_edges, metered)
            if start_pc not in variant.leaders and 0 <= start_pc < len(self.fn.instrs):
                # A resume entry point we have not specialized for yet:
                # promote it to a block leader and re-emit.
                self._extra_entries.add(start_pc)
                self._variants.clear()
                variant = self._emit_variant(vkey, split_edges, obs_edges, metered)
        except Exception as exc:  # noqa: BLE001 - any emission failure
            self._disabled = True
            _count_fallback(self.name, f"source generation failed: {exc}")
            return self._closure_backend().execute(env, start_pc, **kwargs)

        capture = None
        if split_hook is not None:
            hook = split_hook
            specs = capture_specs

            def capture(edge, envmap, _hook=hook, _specs=specs):
                names = None if _specs is None else _specs.get(edge)
                if names is None:
                    live = _hook.live_vars(edge)
                    return {
                        v.name: envmap[v.name]
                        for v in live
                        if v.name in envmap
                    }
                return {
                    name: envmap[name] for name in names if name in envmap
                }

        result, count = variant.run(
            env, start_pc, meter, edge_observer, capture, max_steps
        )
        if result[0] == "r":
            return Outcome(kind="return", value=result[1]), count
        _, edge, captured = result
        return (
            Outcome(
                kind="split",
                continuation=Continuation(
                    function=self.name,
                    edge=edge,
                    variables=captured,
                    trace=trace_ctx,
                ),
            ),
            count,
        )


def codegen_function(
    fn: IRFunction, registry: FunctionRegistry
) -> CodegenFunction:
    """Lower *fn* once to a source-codegen artifact; cached on the function.

    Same cache-key discipline as :func:`repro.ir.compiler.compile_function`:
    IR identity plus registry version, so re-registration forces a fresh
    generation with new baked entries.
    """
    key = (
        id(registry),
        registry.version,
        id(fn.instrs),
        len(fn.instrs),
    )
    cached = getattr(fn, "_codegen_cache", None)
    if cached is not None and cached.key == key:
        return cached
    artifact = CodegenFunction(fn, registry, key)
    fn._codegen_cache = artifact
    return artifact
