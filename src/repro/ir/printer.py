"""Textual dump of IR functions, visually modeled on Jimple listings.

The output format intentionally resembles the paper's Figure 4, so a lowered
handler can be compared side-by-side with the paper's ``push()`` example:

.. code-block:: text

    public void push(event) {
     1: event := @parameter0
     2: $t1 = event instanceof ImageData
     3: if not $t1 goto Lelse1
     ...
    }
"""

from __future__ import annotations

from typing import List

from repro.ir.function import IRFunction
from repro.ir.instructions import Goto, If, Nop


def format_function(fn: IRFunction, *, show_labels: bool = True) -> str:
    """Render *fn* as an indexed instruction listing."""
    index_to_labels = {}
    for label, idx in fn.labels.items():
        index_to_labels.setdefault(idx, []).append(label)

    width = len(str(max(len(fn.instrs) - 1, 0)))
    lines: List[str] = []
    params = ", ".join(p.name for p in fn.params)
    lines.append(f"def {fn.name}({params}) {{")
    for i, instr in enumerate(fn.instrs):
        prefix = ""
        if show_labels and i in index_to_labels:
            for label in index_to_labels[i]:
                lines.append(f"{label}:")
        lines.append(f"  {i:>{width}}: {instr!r}")
    lines.append("}")
    return "\n".join(lines)


def format_edge(fn: IRFunction, edge: tuple) -> str:
    """Render a UG edge as ``Edge(i, j): <out instr> -> <in instr>``."""
    i, j = edge
    return f"Edge({i}, {j}): [{fn.instrs[i]!r}] -> [{fn.instrs[j]!r}]"


def format_unit_graph(
    fn: IRFunction,
    *,
    stop_nodes=frozenset(),
    pse_edges=frozenset(),
    active_edges=frozenset(),
    start_node: int = None,
) -> str:
    """ASCII rendering of the Unit Graph with analysis annotations.

    Mirrors the paper's Figures 5/6: the listing augmented per node with
    ``[START]`` / ``[STOP]`` markers and, per fall-through edge, a gutter
    mark — ``┆`` for a candidate PSE, ``━`` for the active split.
    Non-adjacent control edges (branches) are printed as explicit
    ``-> target`` annotations with the same markers.
    """
    if start_node is None:
        start_node = fn.start_index
    width = len(str(max(len(fn.instrs) - 1, 0)))
    lines = []
    params = ", ".join(p.name for p in fn.params)
    lines.append(f"def {fn.name}({params})")
    n = len(fn.instrs)
    for i, instr in enumerate(fn.instrs):
        marks = []
        if i == start_node:
            marks.append("START")
        if i in stop_nodes:
            marks.append("STOP")
        suffix = f"   [{', '.join(marks)}]" if marks else ""
        jumps = []
        for s in instr.successors(i, n):
            if s != i + 1:
                edge = (i, s)
                mark = (
                    " ACTIVE" if edge in active_edges
                    else " PSE" if edge in pse_edges
                    else ""
                )
                jumps.append(f"-> {s}{mark}")
        jump_txt = ("   " + ", ".join(jumps)) if jumps else ""
        lines.append(f"  {i:>{width}}: {instr!r}{suffix}{jump_txt}")
        fall = (i, i + 1)
        if i + 1 < n and fall in (pse_edges | active_edges):
            gutter = "━" if fall in active_edges else "┆"
            label = "ACTIVE SPLIT" if fall in active_edges else "PSE"
            lines.append(f"  {'':>{width}}  {gutter} {label}")
    return "\n".join(lines)
