"""Lowering of Python handler functions to the instruction-level IR.

This module plays the role of Soot's Java-bytecode front end in the paper:
it turns a message handler written in a restricted Python subset into a flat
three-address instruction list (:class:`~repro.ir.function.IRFunction`) on
which the Unit Graph, DDG and liveness analyses run.

Supported subset
----------------
* positional parameters only
* statements: assignment (name / attribute / subscript targets), augmented
  assignment, ``if``/``elif``/``else``, ``while``, ``for`` over ``range`` or
  any indexable sequence, ``return``, bare calls, ``pass``, ``break``,
  ``continue``
* expressions: names, constants, arithmetic/bitwise/unary operators,
  comparisons, short-circuit ``and``/``or``, conditional expressions,
  ``isinstance``, calls to registered functions, construction of registered
  classes, attribute and subscript reads, list/tuple/dict displays

Anything else raises :class:`~repro.errors.LoweringError` with the offending
source location.  The restriction mirrors the paper's own: the prototype
treats calls as opaque instructions and does not expand nested UGs
(paper section 7).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import LoweringError
from repro.ir.function import IRFunction
from repro.ir.instructions import (
    Assign,
    Goto,
    Identity,
    If,
    Instr,
    Invoke,
    Nop,
    Return,
    SetAttr,
    SetItem,
)
from repro.ir.registry import FunctionRegistry
from repro.ir.values import (
    BinOp,
    BuildDict,
    BuildList,
    BuildTuple,
    Call,
    Compare,
    Const,
    GetAttr,
    GetItem,
    IsInstance,
    New,
    Operand,
    OperandExpr,
    UnaryOp,
    Var,
)

_BINOPS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "//",
    ast.Mod: "%",
    ast.Pow: "**",
    ast.LShift: "<<",
    ast.RShift: ">>",
    ast.BitAnd: "&",
    ast.BitOr: "|",
    ast.BitXor: "^",
}

_CMPOPS = {
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.Is: "is",
    ast.IsNot: "is not",
    ast.In: "in",
    ast.NotIn: "not in",
}

_UNARYOPS = {
    ast.USub: "-",
    ast.UAdd: "+",
    ast.Not: "not",
    ast.Invert: "~",
}


class _Lowerer:
    """Single-use lowering context for one function definition."""

    def __init__(
        self,
        fdef: ast.FunctionDef,
        registry: FunctionRegistry,
        receiver_vars: Sequence[str],
        constants: Dict[str, object],
        source: Optional[str],
    ) -> None:
        self.fdef = fdef
        self.registry = registry
        self.receiver_vars = frozenset(receiver_vars)
        self.constants = dict(constants)
        self.source = source
        self.instrs: List[Instr] = []
        self.labels: Dict[str, int] = {}
        self._temp_n = 0
        self._label_n = 0
        # stack of (continue_label, break_label)
        self._loops: List[Tuple[str, str]] = []
        self._locals: set = set()

    # -- small helpers -------------------------------------------------------

    def _fail(self, node: ast.AST, message: str) -> "LoweringError":
        line = getattr(node, "lineno", "?")
        return LoweringError(
            f"{self.fdef.name}: line {line}: {message}"
        )

    def _temp(self) -> Var:
        self._temp_n += 1
        return Var(f"$t{self._temp_n}")

    def _label(self, hint: str = "L") -> str:
        self._label_n += 1
        return f"{hint}{self._label_n}"

    def _emit(self, instr: Instr) -> None:
        self.instrs.append(instr)

    def _place(self, label: str) -> None:
        """Anchor *label* at the current position with a Nop."""
        self.labels[label] = len(self.instrs)
        self._emit(Nop(comment=label))

    # -- entry ---------------------------------------------------------------

    def lower(self) -> IRFunction:
        args = self.fdef.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.defaults:
            raise self._fail(
                self.fdef,
                "handlers take positional parameters only (no *args/**kwargs/"
                "defaults)",
            )
        params = tuple(Var(a.arg) for a in args.args)
        for i, p in enumerate(params):
            self._emit(Identity(target=p, source=f"@parameter{i}", param_index=i))
            self._locals.add(p.name)

        body = self.fdef.body
        # Skip a leading docstring.
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            body = body[1:]
        for stmt in body:
            self._lower_stmt(stmt)
        if not self.instrs or not isinstance(self.instrs[-1], Return):
            self._emit(Return(None))

        fn = IRFunction(
            name=self.fdef.name,
            params=params,
            instrs=self.instrs,
            labels=self.labels,
            receiver_vars=self.receiver_vars,
            source=self.source,
        )
        return fn.finalize()

    # -- statements ------------------------------------------------------------

    def _lower_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._lower_augassign(stmt)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            value = None
            if stmt.value is not None:
                value = self._lower_expr(stmt.value)
            self._emit(Return(value))
        elif isinstance(stmt, ast.Expr):
            self._lower_expr_stmt(stmt)
        elif isinstance(stmt, ast.Pass):
            pass
        elif isinstance(stmt, ast.Break):
            if not self._loops:
                raise self._fail(stmt, "break outside loop")
            self._emit(Goto(self._loops[-1][1]))
        elif isinstance(stmt, ast.Continue):
            if not self._loops:
                raise self._fail(stmt, "continue outside loop")
            self._emit(Goto(self._loops[-1][0]))
        else:
            raise self._fail(
                stmt,
                f"statement {type(stmt).__name__} is outside the supported "
                f"handler subset",
            )

    def _lower_assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            raise self._fail(stmt, "chained assignment is not supported")
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            var = Var(target.id)
            expr = self._lower_expr_to_expr(stmt.value)
            self._emit(Assign(var, expr))
            self._locals.add(var.name)
        elif isinstance(target, ast.Attribute):
            obj = self._lower_expr(target.value)
            value = self._lower_expr(stmt.value)
            self._emit(SetAttr(obj, target.attr, value))
        elif isinstance(target, ast.Subscript):
            obj = self._lower_expr(target.value)
            index = self._lower_expr(target.slice)
            value = self._lower_expr(stmt.value)
            self._emit(SetItem(obj, index, value))
        else:
            raise self._fail(stmt, "unsupported assignment target")

    def _lower_augassign(self, stmt: ast.AugAssign) -> None:
        op = _BINOPS.get(type(stmt.op))
        if op is None:
            raise self._fail(stmt, f"unsupported operator {type(stmt.op).__name__}")
        if isinstance(stmt.target, ast.Name):
            var = Var(stmt.target.id)
            rhs = self._lower_expr(stmt.value)
            self._emit(Assign(var, BinOp(op, var, rhs)))
        elif isinstance(stmt.target, ast.Subscript):
            obj = self._lower_expr(stmt.target.value)
            index = self._lower_expr(stmt.target.slice)
            cur = self._temp()
            self._emit(Assign(cur, GetItem(obj, index)))
            rhs = self._lower_expr(stmt.value)
            res = self._temp()
            self._emit(Assign(res, BinOp(op, cur, rhs)))
            self._emit(SetItem(obj, index, res))
        elif isinstance(stmt.target, ast.Attribute):
            obj = self._lower_expr(stmt.target.value)
            cur = self._temp()
            self._emit(Assign(cur, GetAttr(obj, stmt.target.attr)))
            rhs = self._lower_expr(stmt.value)
            res = self._temp()
            self._emit(Assign(res, BinOp(op, cur, rhs)))
            self._emit(SetAttr(obj, stmt.target.attr, res))
        else:
            raise self._fail(stmt, "unsupported augmented-assignment target")

    def _lower_if(self, stmt: ast.If) -> None:
        else_label = self._label("Lelse")
        cond = self._lower_expr(stmt.test)
        self._emit(If(cond, else_label, negate=True))
        for s in stmt.body:
            self._lower_stmt(s)
        if stmt.orelse:
            end_label = self._label("Lend")
            self._emit(Goto(end_label))
            self._place(else_label)
            for s in stmt.orelse:
                self._lower_stmt(s)
            self._place(end_label)
        else:
            self._place(else_label)

    def _lower_while(self, stmt: ast.While) -> None:
        if stmt.orelse:
            raise self._fail(stmt, "while/else is not supported")
        head = self._label("Lhead")
        end = self._label("Lend")
        self._place(head)
        cond = self._lower_expr(stmt.test)
        self._emit(If(cond, end, negate=True))
        self._loops.append((head, end))
        for s in stmt.body:
            self._lower_stmt(s)
        self._loops.pop()
        self._emit(Goto(head))
        self._place(end)

    def _lower_for(self, stmt: ast.For) -> None:
        if stmt.orelse:
            raise self._fail(stmt, "for/else is not supported")
        if not isinstance(stmt.target, ast.Name):
            raise self._fail(stmt, "for-loop target must be a simple name")
        target = Var(stmt.target.id)

        it = stmt.iter
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "range"
        ):
            self._lower_range_for(target, it, stmt.body)
        else:
            self._lower_seq_for(target, it, stmt.body)

    def _lower_range_for(
        self, target: Var, rng: ast.Call, body: List[ast.stmt]
    ) -> None:
        """Counter-loop lowering of ``for i in range(...)``."""
        nargs = len(rng.args)
        if nargs == 1:
            start: Operand = Const(0)
            stop = self._lower_expr(rng.args[0])
            step: Operand = Const(1)
        elif nargs == 2:
            start = self._lower_expr(rng.args[0])
            stop = self._lower_expr(rng.args[1])
            step = Const(1)
        elif nargs == 3:
            start = self._lower_expr(rng.args[0])
            stop = self._lower_expr(rng.args[1])
            step = self._lower_expr(rng.args[2])
        else:
            raise self._fail(rng, "range() takes 1-3 arguments")

        descending = isinstance(step, Const) and isinstance(step.value, int) and (
            step.value < 0
        )
        cmp_op = ">" if descending else "<"

        self._emit(Assign(target, OperandExpr(start)))
        head = self._label("Lfor")
        cont = self._label("Lcont")
        end = self._label("Lend")
        self._place(head)
        cond = self._temp()
        self._emit(Assign(cond, Compare(cmp_op, target, stop)))
        self._emit(If(cond, end, negate=True))
        self._loops.append((cont, end))
        for s in body:
            self._lower_stmt(s)
        self._loops.pop()
        self._place(cont)
        self._emit(Assign(target, BinOp("+", target, step)))
        self._emit(Goto(head))
        self._place(end)

    def _lower_seq_for(
        self, target: Var, it: ast.expr, body: List[ast.stmt]
    ) -> None:
        """Index-based lowering of ``for x in seq`` over indexable sequences."""
        seq = self._temp()
        self._emit(Assign(seq, self._lower_expr_to_expr(it)))
        n = self._temp()
        self._emit(Assign(n, Call("len", (seq,))))
        i = self._temp()
        self._emit(Assign(i, OperandExpr(Const(0))))
        head = self._label("Lfor")
        cont = self._label("Lcont")
        end = self._label("Lend")
        self._place(head)
        cond = self._temp()
        self._emit(Assign(cond, Compare("<", i, n)))
        self._emit(If(cond, end, negate=True))
        self._emit(Assign(target, GetItem(seq, i)))
        self._loops.append((cont, end))
        for s in body:
            self._lower_stmt(s)
        self._loops.pop()
        self._place(cont)
        self._emit(Assign(i, BinOp("+", i, Const(1))))
        self._emit(Goto(head))
        self._place(end)

    def _lower_expr_stmt(self, stmt: ast.Expr) -> None:
        value = stmt.value
        if isinstance(value, ast.Call):
            call = self._lower_call(value)
            if isinstance(call, Call):
                self._emit(Invoke(call))
            else:
                # Constructor call used as a statement: keep as assignment to
                # a dead temp so the side effects (if any) still happen.
                self._emit(Assign(self._temp(), call))
        elif isinstance(value, ast.Constant):
            pass  # stray string/ellipsis — ignore
        else:
            raise self._fail(stmt, "expression statements must be calls")

    # -- expressions ------------------------------------------------------------

    def _lower_expr(self, node: ast.expr) -> Operand:
        """Lower *node* to an operand, materializing a temp when compound."""
        if isinstance(node, ast.Constant):
            return Const(node.value)
        # Fold negative numeric literals so e.g. range(n, 0, -1) sees a
        # constant step and the builder can pick the loop comparison.
        if (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, (int, float))
        ):
            return Const(-node.operand.value)
        if isinstance(node, ast.Name):
            if node.id in self.constants:
                return Const(self.constants[node.id])
            return Var(node.id)
        expr = self._lower_expr_to_expr(node)
        if isinstance(expr, OperandExpr):
            return expr.operand
        temp = self._temp()
        self._emit(Assign(temp, expr))
        return temp

    def _lower_expr_to_expr(self, node: ast.expr):
        """Lower *node* to an Expr suitable for the RHS of an assignment."""
        if isinstance(node, (ast.Constant, ast.Name)):
            return OperandExpr(self._lower_expr(node))
        if isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise self._fail(
                    node, f"unsupported operator {type(node.op).__name__}"
                )
            left = self._lower_expr(node.left)
            right = self._lower_expr(node.right)
            return BinOp(op, left, right)
        if isinstance(node, ast.UnaryOp):
            op = _UNARYOPS.get(type(node.op))
            if op is None:
                raise self._fail(
                    node, f"unsupported unary operator {type(node.op).__name__}"
                )
            return UnaryOp(op, self._lower_expr(node.operand))
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise self._fail(node, "chained comparisons are not supported")
            op = _CMPOPS.get(type(node.ops[0]))
            if op is None:
                raise self._fail(
                    node, f"unsupported comparison {type(node.ops[0]).__name__}"
                )
            left = self._lower_expr(node.left)
            right = self._lower_expr(node.comparators[0])
            return Compare(op, left, right)
        if isinstance(node, ast.BoolOp):
            return OperandExpr(self._lower_boolop(node))
        if isinstance(node, ast.IfExp):
            return OperandExpr(self._lower_ifexp(node))
        if isinstance(node, ast.Call):
            return self._lower_call(node)
        if isinstance(node, ast.Attribute):
            obj = self._lower_expr(node.value)
            return GetAttr(obj, node.attr)
        if isinstance(node, ast.Subscript):
            obj = self._lower_expr(node.value)
            index = self._lower_expr(node.slice)
            return GetItem(obj, index)
        if isinstance(node, ast.List):
            return BuildList(tuple(self._lower_expr(e) for e in node.elts))
        if isinstance(node, ast.Tuple):
            return BuildTuple(tuple(self._lower_expr(e) for e in node.elts))
        if isinstance(node, ast.Dict):
            if any(k is None for k in node.keys):
                raise self._fail(node, "dict unpacking (**) is not supported")
            return BuildDict(
                tuple(
                    (self._lower_expr(k), self._lower_expr(v))
                    for k, v in zip(node.keys, node.values)
                )
            )
        raise self._fail(
            node,
            f"expression {type(node).__name__} is outside the supported "
            f"handler subset",
        )

    def _lower_boolop(self, node: ast.BoolOp) -> Operand:
        """Short-circuit lowering of ``and`` / ``or`` preserving value semantics."""
        result = self._temp()
        done = self._label("Lbool")
        is_and = isinstance(node.op, ast.And)
        for i, value in enumerate(node.values):
            operand = self._lower_expr(value)
            self._emit(Assign(result, OperandExpr(operand)))
            last = i == len(node.values) - 1
            if not last:
                # and: bail out (keeping falsy value) when result is false;
                # or: bail out (keeping truthy value) when result is true.
                self._emit(If(result, done, negate=is_and))
        self._place(done)
        return result

    def _lower_ifexp(self, node: ast.IfExp) -> Operand:
        result = self._temp()
        else_label = self._label("Lelse")
        end_label = self._label("Lend")
        cond = self._lower_expr(node.test)
        self._emit(If(cond, else_label, negate=True))
        body = self._lower_expr(node.body)
        self._emit(Assign(result, OperandExpr(body)))
        self._emit(Goto(end_label))
        self._place(else_label)
        orelse = self._lower_expr(node.orelse)
        self._emit(Assign(result, OperandExpr(orelse)))
        self._place(end_label)
        return result

    def _lower_call(self, node: ast.Call):
        if node.keywords:
            raise self._fail(node, "keyword arguments are not supported")
        if not isinstance(node.func, ast.Name):
            raise self._fail(
                node,
                "only calls to registered functions/classes by simple name "
                "are supported (no method calls)",
            )
        name = node.func.id
        if name == "isinstance":
            if len(node.args) != 2 or not isinstance(node.args[1], ast.Name):
                raise self._fail(
                    node, "isinstance requires (value, RegisteredClass)"
                )
            operand = self._lower_expr(node.args[0])
            cls_name = node.args[1].id
            if not self.registry.has_class(cls_name):
                raise self._fail(node, f"class {cls_name!r} is not registered")
            return IsInstance(operand, cls_name)
        args = tuple(self._lower_expr(a) for a in node.args)
        if self.registry.has_class(name):
            return New(name, args)
        if self.registry.has_function(name):
            return Call(name, args)
        raise self._fail(
            node, f"call to unregistered function or class {name!r}"
        )


def lower_function(
    fn_or_source: Union[Callable, str],
    registry: FunctionRegistry,
    *,
    receiver_vars: Sequence[str] = (),
    constants: Optional[Dict[str, object]] = None,
    name: Optional[str] = None,
) -> IRFunction:
    """Lower a Python handler to IR.

    Args:
        fn_or_source: a Python function object, or its source text containing
            exactly one ``def``.
        registry: the function/class registry the handler is compiled against.
        receiver_vars: names of receiver-resident variables; instructions
            touching them become StopNodes under analysis.
        constants: names resolved to compile-time constants inside the
            handler body.
        name: override the IR function name.

    Returns:
        The finalized :class:`~repro.ir.function.IRFunction`.
    """
    if callable(fn_or_source):
        try:
            source = textwrap.dedent(inspect.getsource(fn_or_source))
        except (OSError, TypeError) as exc:
            raise LoweringError(
                f"cannot retrieve source of {fn_or_source!r} (defined "
                f"interactively?); pass the source text instead"
            ) from exc
    else:
        source = textwrap.dedent(fn_or_source)
    tree = ast.parse(source)
    fdefs = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if len(fdefs) != 1:
        raise LoweringError(
            f"expected exactly one function definition, found {len(fdefs)}"
        )
    fdef = fdefs[0]
    # Drop decorators: they ran (or will run) in Python, not in IR.
    fdef.decorator_list = []
    if name is not None:
        fdef.name = name
    lowerer = _Lowerer(
        fdef,
        registry,
        receiver_vars=receiver_vars,
        constants=constants or {},
        source=source,
    )
    return lowerer.lower()
