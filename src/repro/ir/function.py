"""Container for a lowered handler: the :class:`IRFunction`.

An :class:`IRFunction` is a flat list of instructions plus metadata: the
parameter variables, the label table, and the set of variables the handler
treats as *receiver-resident* (mutable state that must stay at the message
receiver — these force StopNodes, paper section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.errors import IRValidationError
from repro.ir.instructions import Goto, Identity, If, Instr, Return
from repro.ir.values import Var


@dataclass
class IRFunction:
    """A lowered message-handling method.

    Attributes:
        name: function name (for display and plan identity).
        params: parameter variables in positional order.
        instrs: the instruction list; indices are UG node ids.
        labels: label name → instruction index.
        receiver_vars: names of variables that are receiver-resident state;
            any instruction touching one is a StopNode.
        source: optional original Python source, kept for diagnostics.
    """

    name: str
    params: Tuple[Var, ...]
    instrs: List[Instr]
    labels: Dict[str, int] = field(default_factory=dict)
    receiver_vars: FrozenSet[str] = frozenset()
    source: Optional[str] = None

    # -- construction helpers ----------------------------------------------

    def finalize(self) -> "IRFunction":
        """Resolve branch labels to instruction indices.  Idempotent."""
        for instr in self.instrs:
            if isinstance(instr, (If, Goto)):
                if instr.label not in self.labels:
                    raise IRValidationError(
                        f"{self.name}: branch to undefined label {instr.label!r}"
                    )
                instr.target_index = self.labels[instr.label]
        return self

    # -- views ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.instrs)

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def instr(self, index: int) -> Instr:
        return self.instrs[index]

    @property
    def start_index(self) -> int:
        """Index of the StartNode: the first non-Identity instruction.

        Identity instructions "before" the StartNode rename parameters and
        are excluded from partitioning (paper section 3).
        """
        for i, instr in enumerate(self.instrs):
            if not isinstance(instr, Identity):
                return i
        return len(self.instrs) - 1 if self.instrs else 0

    def successors(self, index: int) -> Tuple[int, ...]:
        return self.instrs[index].successors(index, len(self.instrs))

    def return_indices(self) -> Tuple[int, ...]:
        return tuple(
            i for i, instr in enumerate(self.instrs) if isinstance(instr, Return)
        )

    def variables(self) -> FrozenSet[Var]:
        """Every variable defined or used anywhere in the function."""
        out: set = set()
        for instr in self.instrs:
            out |= instr.uses()
            out |= instr.defs()
        out |= set(self.params)
        return frozenset(out)

    def called_functions(self) -> FrozenSet[str]:
        out: set = set()
        for instr in self.instrs:
            out.update(instr.called_functions())
        return frozenset(out)

    def __repr__(self) -> str:
        return f"<IRFunction {self.name} ({len(self.instrs)} instrs)>"
