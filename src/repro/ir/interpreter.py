"""IR interpreter with continuation, profiling, and metering hooks.

The interpreter is the execution substrate that replaces the JVM of the
paper's prototype.  It executes an :class:`~repro.ir.function.IRFunction`
instruction by instruction and exposes the three hooks Method Partitioning
needs:

* **Split hook** — after executing instruction ``out`` and determining the
  next instruction ``in``, the interpreter asks the hook whether the edge
  ``(out, in)`` is an *active* Potential Split Edge.  If so, it captures the
  live variables of the edge into a :class:`Continuation` and stops: that is
  the modulator half of the paper's Remote Continuation.  Resuming from a
  continuation (the demodulator half) starts execution at ``in`` with the
  restored environment.
* **Edge observer** — invoked on every traversed edge; the Runtime Profiling
  Unit uses it (flag-gated) to measure data sizes and timings per PSE.
* **Cycle meter** — accumulates an abstract cycle count per executed
  instruction, so the same handler can be executed on simulated hosts with
  different speeds and loads (see :mod:`repro.simnet`).

The interpreter itself never decides *where* to split — that is the
partitioning plan's job (:mod:`repro.core.plan`).
"""

from __future__ import annotations

import operator as _op
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional, Sequence, Tuple

from repro.errors import InterpreterError
from repro.ir.function import IRFunction
from repro.ir.instructions import (
    Assign,
    Goto,
    Identity,
    If,
    Instr,
    Invoke,
    Nop,
    Return,
    SetAttr,
    SetItem,
)
from repro.ir.registry import FunctionRegistry
from repro.ir.values import (
    BinOp,
    BuildDict,
    BuildList,
    BuildTuple,
    Call,
    Cast,
    Compare,
    Const,
    Expr,
    GetAttr,
    GetItem,
    IsInstance,
    New,
    Operand,
    OperandExpr,
    UnaryOp,
    Var,
)

#: A UG edge as a pair of instruction indices (out, in).
Edge = Tuple[int, int]

_BIN_FUNCS: Dict[str, Callable] = {
    "+": _op.add,
    "-": _op.sub,
    "*": _op.mul,
    "/": _op.truediv,
    "//": _op.floordiv,
    "%": _op.mod,
    "**": _op.pow,
    "<<": _op.lshift,
    ">>": _op.rshift,
    "&": _op.and_,
    "|": _op.or_,
    "^": _op.xor,
}

_CMP_FUNCS: Dict[str, Callable] = {
    "==": _op.eq,
    "!=": _op.ne,
    "<": _op.lt,
    "<=": _op.le,
    ">": _op.gt,
    ">=": _op.ge,
    "is": lambda a, b: a is b,
    "is not": lambda a, b: a is not b,
    "in": lambda a, b: a in b,
    "not in": lambda a, b: a not in b,
}

_UNARY_FUNCS: Dict[str, Callable] = {
    "-": _op.neg,
    "+": _op.pos,
    "not": _op.not_,
    "~": _op.invert,
}


@dataclass
class CycleMeter:
    """Accumulates abstract CPU cycles and instruction counts.

    Base cost is one cycle per instruction; calls and constructions add the
    cost reported by their registry entry's ``cycle_cost`` (or
    ``default_call_cycles`` when absent).  The scale is arbitrary — only
    ratios matter when the simulator converts cycles to time via host speed.
    """

    instr_cycles: float = 1.0
    default_call_cycles: float = 10.0
    cycles: float = 0.0
    instructions: int = 0

    def charge_instr(self) -> None:
        self.cycles += self.instr_cycles
        self.instructions += 1

    def charge(self, cycles: float) -> None:
        self.cycles += cycles

    def reset(self) -> None:
        self.cycles = 0.0
        self.instructions = 0


@dataclass
class Continuation:
    """The modulator→demodulator hand-over record (paper section 2.4).

    ``edge`` identifies the PSE where processing stopped; ``variables`` maps
    live-variable names to their values (the INTER set of the edge);
    ``function`` names the handler so the demodulator can locate the right
    program to resume.  ``trace`` optionally carries the causal trace
    context ``(trace_id, parent_span_id)`` across the wire so the
    receiver's demodulate span joins the sender's trace.
    """

    function: str
    edge: Edge
    variables: Dict[str, object]
    trace: Optional[Tuple[int, int]] = None

    @property
    def pse_id(self) -> Edge:
        return self.edge


@dataclass
class Outcome:
    """Result of running a handler (or handler half)."""

    #: "return" when the function completed, "split" when it stopped at a PSE.
    kind: str
    value: object = None
    continuation: Optional[Continuation] = None

    @property
    def returned(self) -> bool:
        return self.kind == "return"

    @property
    def split(self) -> bool:
        return self.kind == "split"


class SplitHook:
    """Decides whether a traversed edge is an active split point.

    The default implementation never splits; plans provide real hooks.

    Hooks that know their full split set up front should additionally
    implement :meth:`split_edge_set` and :meth:`capture_specs`: the compiled
    backend then reduces the per-edge split check to one frozenset
    membership test and captures live variables from precomputed name
    tuples, never touching the per-edge ``should_split``/``live_vars``
    protocol on the hot path.
    """

    def should_split(self, edge: Edge) -> bool:
        return False

    def live_vars(self, edge: Edge) -> FrozenSet[Var]:
        """The variables to capture when splitting at *edge*."""
        return frozenset()

    def split_edge_set(self) -> Optional[FrozenSet[Edge]]:
        """Every edge that would currently split, or None if unknown.

        ``None`` (the default) makes the compiled backend fall back to
        calling :meth:`should_split` per traversed edge.
        """
        return None

    def capture_specs(self) -> Optional[Dict[Edge, Tuple[str, ...]]]:
        """Per-edge live-capture variable names, or None if unknown.

        Name order must match iteration order of :meth:`live_vars`'s
        frozenset so both backends build identical capture dicts.
        """
        return None


class Interpreter:
    """Executes IR functions against a function registry.

    Three execution backends share this front end:

    * ``"compiled"`` (default) — each function is lowered once into
      per-instruction closures (:mod:`repro.ir.compiler`) and the loop runs
      those; split checks are O(1) set membership when the hook provides
      its edge set.
    * ``"codegen"`` — each function is lowered once to generated Python
      source compiled with ``compile()``/``exec``
      (:mod:`repro.ir.codegen`); registers become real locals and split
      checks are inlined per active plan.  Executions the generated code
      cannot reproduce exactly fall back to the closure backend with a
      counted warning.
    * ``"tree"`` — the original tree-walking evaluator; kept as the
      reference semantics for the differential equivalence suite.
    """

    def __init__(
        self,
        registry: FunctionRegistry,
        *,
        max_steps: int = 50_000_000,
        obs=None,
        backend: str = "compiled",
    ) -> None:
        if backend not in ("compiled", "tree", "codegen"):
            raise ValueError(
                f"unknown interpreter backend {backend!r}; "
                f"expected 'codegen', 'compiled' or 'tree'"
            )
        self.registry = registry
        self.max_steps = max_steps
        self.backend = backend
        self._compile = None  # lazy import of repro.ir.compiler / codegen
        self.obs = None
        self._c_instructions = None
        self._c_executions = None
        self._c_captured = None
        self._c_restored = None
        if obs is not None:
            self.attach_observability(obs)

    def attach_observability(self, obs) -> None:
        """Attach a metrics registry; counter objects are cached so the
        execution loop never does a name lookup."""
        self.obs = obs
        self._c_instructions = obs.metrics.counter("interp.instructions")
        self._c_executions = obs.metrics.counter("interp.executions")
        self._c_captured = obs.metrics.counter(
            "interp.continuations_captured"
        )
        self._c_restored = obs.metrics.counter(
            "interp.continuations_restored"
        )

    # -- public API -----------------------------------------------------------

    def run(
        self,
        fn: IRFunction,
        args: Sequence[object],
        *,
        split_hook: Optional[SplitHook] = None,
        edge_observer: Optional[Callable[[Edge, Dict[str, object]], None]] = None,
        observe_edges: Optional[FrozenSet[Edge]] = None,
        meter: Optional[CycleMeter] = None,
        trace_ctx: Optional[Tuple[int, int]] = None,
    ) -> Outcome:
        """Run *fn* from the top with *args* bound to its parameters.

        ``observe_edges`` restricts the edge observer to the given edges
        (typically the handler's PSE set); ``None`` observes every edge.
        ``trace_ctx`` is stamped into any captured continuation.
        """
        if len(args) != len(fn.params):
            raise InterpreterError(
                f"{fn.name}: expected {len(fn.params)} arguments, "
                f"got {len(args)}"
            )
        env: Dict[str, object] = {}
        for param, value in zip(fn.params, args):
            env[param.name] = value
        return self._execute(
            fn,
            env,
            start_pc=0,
            split_hook=split_hook,
            edge_observer=edge_observer,
            observe_edges=observe_edges,
            meter=meter,
            trace_ctx=trace_ctx,
        )

    def resume(
        self,
        fn: IRFunction,
        continuation: Continuation,
        *,
        split_hook: Optional[SplitHook] = None,
        edge_observer: Optional[Callable[[Edge, Dict[str, object]], None]] = None,
        observe_edges: Optional[FrozenSet[Edge]] = None,
        meter: Optional[CycleMeter] = None,
        trace_ctx: Optional[Tuple[int, int]] = None,
    ) -> Outcome:
        """Resume *fn* at a continuation's PSE with its variables restored.

        This is the demodulator half of Remote Continuation: execution jumps
        to the edge's *in* node with only the handed-over variables in scope.
        """
        if continuation.function != fn.name:
            raise InterpreterError(
                f"continuation for {continuation.function!r} resumed against "
                f"{fn.name!r}"
            )
        _, in_node = continuation.edge
        if not (0 <= in_node < len(fn.instrs)):
            raise InterpreterError(
                f"{fn.name}: continuation edge {continuation.edge} out of range"
            )
        env = dict(continuation.variables)
        if self._c_restored is not None:
            self._c_restored.inc()
        return self._execute(
            fn,
            env,
            start_pc=in_node,
            split_hook=split_hook,
            edge_observer=edge_observer,
            observe_edges=observe_edges,
            meter=meter,
            trace_ctx=trace_ctx,
        )

    # -- core loop ---------------------------------------------------------------

    def _execute(
        self,
        fn: IRFunction,
        env: Dict[str, object],
        *,
        start_pc: int,
        split_hook: Optional[SplitHook],
        edge_observer: Optional[Callable[[Edge, Dict[str, object]], None]],
        observe_edges: Optional[FrozenSet[Edge]] = None,
        meter: Optional[CycleMeter],
        trace_ctx: Optional[Tuple[int, int]] = None,
    ) -> Outcome:
        if self._c_executions is not None:
            self._c_executions.inc()
        if self.backend != "tree":
            compile_function = self._compile
            if compile_function is None:
                if self.backend == "codegen":
                    from repro.ir.codegen import codegen_function as compile_function
                else:
                    from repro.ir.compiler import compile_function

                self._compile = compile_function
            outcome, steps = compile_function(fn, self.registry).execute(
                env,
                start_pc,
                split_hook=split_hook,
                edge_observer=edge_observer,
                observe_edges=observe_edges,
                meter=meter,
                max_steps=self.max_steps,
                trace_ctx=trace_ctx,
            )
            if outcome.split:
                if self._c_captured is not None:
                    self._c_captured.inc()
                    self._c_instructions.inc(steps)
            elif self._c_instructions is not None:
                self._c_instructions.inc(steps)
            return outcome
        instrs = fn.instrs
        n = len(instrs)
        pc = start_pc
        steps = 0
        while True:
            steps += 1
            if steps > self.max_steps:
                raise InterpreterError(
                    f"{fn.name}: exceeded {self.max_steps} steps "
                    f"(infinite loop?)"
                )
            instr = instrs[pc]
            if meter is not None:
                meter.charge_instr()
            next_pc = self._step(fn, instr, pc, env, meter)
            if next_pc is None:  # Return executed
                if self._c_instructions is not None:
                    self._c_instructions.inc(steps)
                return Outcome(kind="return", value=env.get("$return"))
            if next_pc >= n:
                raise InterpreterError(
                    f"{fn.name}: fell off the end at instruction {pc}"
                )
            edge: Edge = (pc, next_pc)
            if edge_observer is not None and (
                observe_edges is None or edge in observe_edges
            ):
                edge_observer(edge, env)
            if split_hook is not None and split_hook.should_split(edge):
                live = split_hook.live_vars(edge)
                captured = {
                    v.name: env[v.name] for v in live if v.name in env
                }
                continuation = Continuation(
                    function=fn.name,
                    edge=edge,
                    variables=captured,
                    trace=trace_ctx,
                )
                if self._c_captured is not None:
                    self._c_captured.inc()
                    self._c_instructions.inc(steps)
                return Outcome(kind="split", continuation=continuation)
            pc = next_pc

    def _step(
        self,
        fn: IRFunction,
        instr: Instr,
        pc: int,
        env: Dict[str, object],
        meter: Optional[CycleMeter],
    ) -> Optional[int]:
        """Execute one instruction; return next pc, or None on Return."""
        if isinstance(instr, Assign):
            env[instr.target.name] = self._eval(fn, instr.expr, env, meter)
            return pc + 1
        if isinstance(instr, If):
            taken = bool(self._operand(fn, instr.cond, env))
            if instr.negate:
                taken = not taken
            return instr.target_index if taken else pc + 1
        if isinstance(instr, Goto):
            return instr.target_index
        if isinstance(instr, Return):
            env["$return"] = (
                self._operand(fn, instr.value, env)
                if instr.value is not None
                else None
            )
            return None
        if isinstance(instr, Identity):
            # Parameter already bound by run(); Identity re-binds explicitly
            # so that resumed executions starting mid-function never re-run it.
            if instr.target.name not in env:
                raise InterpreterError(
                    f"{fn.name}: parameter {instr.target.name!r} unbound"
                )
            return pc + 1
        if isinstance(instr, Invoke):
            self._eval(fn, instr.call, env, meter)
            return pc + 1
        if isinstance(instr, SetAttr):
            obj = self._operand(fn, instr.obj, env)
            value = self._operand(fn, instr.value, env)
            try:
                setattr(obj, instr.attr, value)
            except AttributeError as exc:
                raise InterpreterError(
                    f"{fn.name}: cannot set {instr.attr!r} on {type(obj).__name__}"
                ) from exc
            return pc + 1
        if isinstance(instr, SetItem):
            obj = self._operand(fn, instr.obj, env)
            index = self._operand(fn, instr.index, env)
            value = self._operand(fn, instr.value, env)
            try:
                obj[index] = value
            except (TypeError, KeyError, IndexError) as exc:
                raise InterpreterError(
                    f"{fn.name}: item assignment failed on "
                    f"{type(obj).__name__}: {exc}"
                ) from exc
            return pc + 1
        if isinstance(instr, Nop):
            return pc + 1
        raise InterpreterError(
            f"{fn.name}: unknown instruction {type(instr).__name__}"
        )

    # -- evaluation ---------------------------------------------------------------

    def _operand(self, fn: IRFunction, operand: Operand, env: Dict[str, object]):
        if isinstance(operand, Const):
            return operand.value
        try:
            return env[operand.name]
        except KeyError:
            raise InterpreterError(
                f"{fn.name}: variable {operand.name!r} used before assignment"
            ) from None

    def _eval(
        self,
        fn: IRFunction,
        expr: Expr,
        env: Dict[str, object],
        meter: Optional[CycleMeter],
    ):
        if isinstance(expr, OperandExpr):
            return self._operand(fn, expr.operand, env)
        if isinstance(expr, BinOp):
            left = self._operand(fn, expr.left, env)
            right = self._operand(fn, expr.right, env)
            try:
                return _BIN_FUNCS[expr.op](left, right)
            except (TypeError, ZeroDivisionError) as exc:
                raise InterpreterError(
                    f"{fn.name}: {expr!r} failed: {exc}"
                ) from exc
        if isinstance(expr, Compare):
            left = self._operand(fn, expr.left, env)
            right = self._operand(fn, expr.right, env)
            try:
                return _CMP_FUNCS[expr.op](left, right)
            except TypeError as exc:
                raise InterpreterError(
                    f"{fn.name}: {expr!r} failed: {exc}"
                ) from exc
        if isinstance(expr, UnaryOp):
            value = self._operand(fn, expr.operand, env)
            unary = _UNARY_FUNCS.get(expr.op)
            if unary is None:
                raise InterpreterError(
                    f"{fn.name}: unknown unary op {expr.op!r}"
                )
            try:
                return unary(value)
            except TypeError as exc:
                raise InterpreterError(
                    f"{fn.name}: {expr!r} failed: {exc}"
                ) from exc
        if isinstance(expr, Call):
            entry = self.registry.function(expr.func)
            args = [self._operand(fn, a, env) for a in expr.args]
            if meter is not None:
                if entry.cycle_cost is not None:
                    meter.charge(entry.cycle_cost(*args))
                else:
                    meter.charge(meter.default_call_cycles)
            try:
                return entry.fn(*args)
            except InterpreterError:
                raise
            except Exception as exc:
                raise InterpreterError(
                    f"{fn.name}: call {expr.func}(...) raised "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
        if isinstance(expr, New):
            entry = self.registry.cls(expr.cls)
            args = [self._operand(fn, a, env) for a in expr.args]
            if meter is not None:
                if entry.cycle_cost is not None:
                    meter.charge(entry.cycle_cost(*args))
                else:
                    meter.charge(meter.default_call_cycles)
            try:
                return entry.cls(*args)
            except Exception as exc:
                raise InterpreterError(
                    f"{fn.name}: new {expr.cls}(...) raised "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
        if isinstance(expr, IsInstance):
            value = self._operand(fn, expr.operand, env)
            entry = self.registry.cls(expr.cls)
            return isinstance(value, entry.cls)
        if isinstance(expr, Cast):
            value = self._operand(fn, expr.operand, env)
            entry = self.registry.cls(expr.cls)
            if not isinstance(value, entry.cls):
                raise InterpreterError(
                    f"{fn.name}: cast of {type(value).__name__} to "
                    f"{expr.cls} failed"
                )
            return value
        if isinstance(expr, GetAttr):
            obj = self._operand(fn, expr.obj, env)
            try:
                return getattr(obj, expr.attr)
            except AttributeError as exc:
                raise InterpreterError(
                    f"{fn.name}: {type(obj).__name__} has no attribute "
                    f"{expr.attr!r}"
                ) from exc
        if isinstance(expr, GetItem):
            obj = self._operand(fn, expr.obj, env)
            index = self._operand(fn, expr.index, env)
            try:
                return obj[index]
            except (TypeError, KeyError, IndexError) as exc:
                raise InterpreterError(
                    f"{fn.name}: indexing failed: {exc}"
                ) from exc
        if isinstance(expr, BuildList):
            return [self._operand(fn, item, env) for item in expr.items]
        if isinstance(expr, BuildTuple):
            return tuple(self._operand(fn, item, env) for item in expr.items)
        if isinstance(expr, BuildDict):
            return {
                self._operand(fn, k, env): self._operand(fn, v, env)
                for k, v in expr.items
            }
        raise InterpreterError(
            f"{fn.name}: unknown expression {type(expr).__name__}"
        )
