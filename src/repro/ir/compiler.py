"""Closure-compilation backend for the IR interpreter.

The tree-walking interpreter (:mod:`repro.ir.interpreter`) re-discovers the
shape of every instruction on every execution: long ``isinstance`` chains,
operand re-resolution, operator-table lookups, registry lookups for calls.
Under heavy message traffic that dispatch cost is paid per instruction of
every message, even though the program never changes between messages.

This module lowers an :class:`~repro.ir.function.IRFunction` **once** into a
:class:`CompiledFunction`: a flat list of per-instruction closures with all
static decisions taken at compile time —

* constants are baked into the closures, variable reads bound to their
  names,
* ``_BIN_FUNCS``/``_CMP_FUNCS``/``_UNARY_FUNCS`` entries are fetched at
  compile time,
* registry entries for ``Call``/``New``/``IsInstance``/``Cast`` are
  pre-looked-up (falling back to a lazy runtime lookup when a name is not
  yet registered, to preserve the tree-walker's lazy error behavior),
* branch targets are pre-resolved integers.

The execute loop makes split checks O(1): the split hook's active-PSE set is
a precomputed ``frozenset`` and live-capture specs are per-edge name tuples
(no per-message :class:`~repro.ir.values.Var` iteration).  A per-pc
"interesting" mask — cached per (split set, observe set) pair — lets the
steady-state path skip edge-tuple construction entirely for the vast
majority of instructions, since only a handful of edges are PSEs.

Semantics are byte-identical to the tree-walking backend: same
:class:`~repro.ir.interpreter.Outcome`/continuation contents (including
capture-dict ordering), same cycle-meter charges, same
:class:`~repro.errors.InterpreterError` messages.  The differential suite
in ``tests/integration/test_backend_equivalence.py`` enforces this.

Compilation results are cached on the function object itself and
invalidated by IR identity (the instruction list) and by registry version,
so re-registration of a function or class forces a recompile.
"""

from __future__ import annotations

import operator as _op
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import InterpreterError
from repro.ir.function import IRFunction
from repro.ir.instructions import (
    Assign,
    Goto,
    Identity,
    If,
    Instr,
    Invoke,
    Nop,
    Return,
    SetAttr,
    SetItem,
)
from repro.ir.interpreter import (
    _BIN_FUNCS,
    _CMP_FUNCS,
    _UNARY_FUNCS,
    Continuation,
    Edge,
    Outcome,
)
from repro.ir.registry import FunctionRegistry
from repro.ir.values import (
    BinOp,
    BuildDict,
    BuildList,
    BuildTuple,
    Call,
    Cast,
    Compare,
    Const,
    Expr,
    GetAttr,
    GetItem,
    IsInstance,
    New,
    Operand,
    OperandExpr,
    UnaryOp,
    Var,
)

#: a per-instruction closure: ``step(env, meter) -> next_pc`` (None = Return)
StepFn = Callable[[dict, object], Optional[int]]

_EMPTY_EDGES: FrozenSet[Edge] = frozenset()


# -- operand / expression compilation ------------------------------------------


def _compile_operand(fname: str, operand: Operand) -> Callable[[dict], object]:
    """Pre-resolve one operand: consts baked in, env lookups bound by name."""
    if isinstance(operand, Const):
        value = operand.value
        return lambda env: value
    name = operand.name
    message = f"{fname}: variable {name!r} used before assignment"

    def read(env):
        try:
            return env[name]
        except KeyError:
            raise InterpreterError(message) from None

    return read


def _compile_expr(
    fname: str, expr: Expr, registry: FunctionRegistry
) -> Callable[[dict, object], object]:
    """Compile a right-hand-side expression to ``eval(env, meter) -> value``."""
    if isinstance(expr, OperandExpr):
        read = _compile_operand(fname, expr.operand)
        return lambda env, meter: read(env)

    if isinstance(expr, BinOp):
        fn = _BIN_FUNCS[expr.op]
        left = _compile_operand(fname, expr.left)
        right = _compile_operand(fname, expr.right)
        prefix = f"{fname}: {expr!r} failed: "

        def ev_bin(env, meter):
            a = left(env)
            b = right(env)
            try:
                return fn(a, b)
            except (TypeError, ZeroDivisionError) as exc:
                raise InterpreterError(prefix + str(exc)) from exc

        return ev_bin

    if isinstance(expr, Compare):
        fn = _CMP_FUNCS[expr.op]
        left = _compile_operand(fname, expr.left)
        right = _compile_operand(fname, expr.right)
        prefix = f"{fname}: {expr!r} failed: "

        def ev_cmp(env, meter):
            a = left(env)
            b = right(env)
            try:
                return fn(a, b)
            except TypeError as exc:
                raise InterpreterError(prefix + str(exc)) from exc

        return ev_cmp

    if isinstance(expr, UnaryOp):
        fn = _UNARY_FUNCS.get(expr.op)
        if fn is None:
            message = f"{fname}: unknown unary op {expr.op!r}"

            def ev_unknown(env, meter):
                raise InterpreterError(message)

            return ev_unknown
        read = _compile_operand(fname, expr.operand)
        prefix = f"{fname}: {expr!r} failed: "

        def ev_unary(env, meter):
            value = read(env)
            try:
                return fn(value)
            except TypeError as exc:
                raise InterpreterError(prefix + str(exc)) from exc

        return ev_unary

    if isinstance(expr, Call):
        return _compile_call(fname, expr, registry)

    if isinstance(expr, New):
        return _compile_new(fname, expr, registry)

    if isinstance(expr, IsInstance):
        read = _compile_operand(fname, expr.operand)
        if registry.has_class(expr.cls):
            cls = registry.cls(expr.cls).cls
            return lambda env, meter: isinstance(read(env), cls)
        cname = expr.cls
        return lambda env, meter: isinstance(read(env), registry.cls(cname).cls)

    if isinstance(expr, Cast):
        read = _compile_operand(fname, expr.operand)
        cname = expr.cls
        cls = registry.cls(cname).cls if registry.has_class(cname) else None

        def ev_cast(env, meter):
            value = read(env)
            target = cls if cls is not None else registry.cls(cname).cls
            if not isinstance(value, target):
                raise InterpreterError(
                    f"{fname}: cast of {type(value).__name__} to "
                    f"{cname} failed"
                )
            return value

        return ev_cast

    if isinstance(expr, GetAttr):
        read = _compile_operand(fname, expr.obj)
        attr = expr.attr

        def ev_getattr(env, meter):
            obj = read(env)
            try:
                return getattr(obj, attr)
            except AttributeError as exc:
                raise InterpreterError(
                    f"{fname}: {type(obj).__name__} has no attribute "
                    f"{attr!r}"
                ) from exc

        return ev_getattr

    if isinstance(expr, GetItem):
        read_obj = _compile_operand(fname, expr.obj)
        read_idx = _compile_operand(fname, expr.index)

        def ev_getitem(env, meter):
            obj = read_obj(env)
            index = read_idx(env)
            try:
                return obj[index]
            except (TypeError, KeyError, IndexError) as exc:
                raise InterpreterError(
                    f"{fname}: indexing failed: {exc}"
                ) from exc

        return ev_getitem

    if isinstance(expr, BuildList):
        reads = tuple(_compile_operand(fname, item) for item in expr.items)
        return lambda env, meter: [read(env) for read in reads]

    if isinstance(expr, BuildTuple):
        reads = tuple(_compile_operand(fname, item) for item in expr.items)
        return lambda env, meter: tuple(read(env) for read in reads)

    if isinstance(expr, BuildDict):
        reads = tuple(
            (_compile_operand(fname, k), _compile_operand(fname, v))
            for k, v in expr.items
        )
        return lambda env, meter: {rk(env): rv(env) for rk, rv in reads}

    message = f"{fname}: unknown expression {type(expr).__name__}"

    def ev_unknown_expr(env, meter):
        raise InterpreterError(message)

    return ev_unknown_expr


def _compile_call(
    fname: str, expr: Call, registry: FunctionRegistry
) -> Callable[[dict, object], object]:
    func = expr.func
    reads = tuple(_compile_operand(fname, a) for a in expr.args)
    prefix = f"{fname}: call {func}(...) raised "

    if registry.has_function(func):
        entry = registry.function(func)
        target = entry.fn
        cost = entry.cycle_cost

        def ev_call(env, meter):
            args = [read(env) for read in reads]
            if meter is not None:
                if cost is not None:
                    meter.charge(cost(*args))
                else:
                    meter.charge(meter.default_call_cycles)
            try:
                return target(*args)
            except InterpreterError:
                raise
            except Exception as exc:
                raise InterpreterError(
                    prefix + f"{type(exc).__name__}: {exc}"
                ) from exc

        return ev_call

    # Not registered at compile time: resolve lazily so errors surface only
    # when the instruction actually executes (as the tree-walker does).
    def ev_call_lazy(env, meter):
        entry = registry.function(func)
        args = [read(env) for read in reads]
        if meter is not None:
            if entry.cycle_cost is not None:
                meter.charge(entry.cycle_cost(*args))
            else:
                meter.charge(meter.default_call_cycles)
        try:
            return entry.fn(*args)
        except InterpreterError:
            raise
        except Exception as exc:
            raise InterpreterError(
                prefix + f"{type(exc).__name__}: {exc}"
            ) from exc

    return ev_call_lazy


def _compile_new(
    fname: str, expr: New, registry: FunctionRegistry
) -> Callable[[dict, object], object]:
    cname = expr.cls
    reads = tuple(_compile_operand(fname, a) for a in expr.args)
    prefix = f"{fname}: new {cname}(...) raised "

    if registry.has_class(cname):
        entry = registry.cls(cname)
        target = entry.cls
        cost = entry.cycle_cost

        def ev_new(env, meter):
            args = [read(env) for read in reads]
            if meter is not None:
                if cost is not None:
                    meter.charge(cost(*args))
                else:
                    meter.charge(meter.default_call_cycles)
            try:
                return target(*args)
            except Exception as exc:
                raise InterpreterError(
                    prefix + f"{type(exc).__name__}: {exc}"
                ) from exc

        return ev_new

    def ev_new_lazy(env, meter):
        entry = registry.cls(cname)
        args = [read(env) for read in reads]
        if meter is not None:
            if entry.cycle_cost is not None:
                meter.charge(entry.cycle_cost(*args))
            else:
                meter.charge(meter.default_call_cycles)
        try:
            return entry.cls(*args)
        except Exception as exc:
            raise InterpreterError(
                prefix + f"{type(exc).__name__}: {exc}"
            ) from exc

    return ev_new_lazy


# -- instruction compilation ---------------------------------------------------


def _fused_assign(
    fname: str, expr: Expr, target: str, nxt: int
) -> Optional[StepFn]:
    """Single-frame closures for the hottest Assign shapes.

    An Assign of an operand copy, ``BinOp``, or ``Compare`` accounts for
    most instructions of arithmetic-bound handlers; the generic path costs
    two to four nested closure calls per instruction for them.  These fused
    variants inline the operand reads and the operator application into one
    frame while raising the exact tree-walker error messages in the exact
    tree-walker order (left operand first, operator failure last).  Returns
    None for shapes without a fused form.
    """
    if isinstance(expr, OperandExpr):
        operand = expr.operand
        if isinstance(operand, Const):
            value = operand.value

            def step_const(env, meter):
                env[target] = value
                return nxt

            return step_const
        name = operand.name
        message = f"{fname}: variable {name!r} used before assignment"

        def step_copy(env, meter):
            try:
                env[target] = env[name]
            except KeyError:
                raise InterpreterError(message) from None
            return nxt

        return step_copy

    if isinstance(expr, (BinOp, Compare)):
        if isinstance(expr, BinOp):
            fn = _BIN_FUNCS[expr.op]
            catch: tuple = (TypeError, ZeroDivisionError)
        else:
            fn = _CMP_FUNCS[expr.op]
            catch = (TypeError,)
        prefix = f"{fname}: {expr!r} failed: "
        left, right = expr.left, expr.right
        lconst = isinstance(left, Const)
        rconst = isinstance(right, Const)
        lval = left.value if lconst else None
        rval = right.value if rconst else None
        lname = None if lconst else left.name
        rname = None if rconst else right.name
        lmsg = f"{fname}: variable {lname!r} used before assignment"
        rmsg = f"{fname}: variable {rname!r} used before assignment"

        if lconst and rconst:

            def step_cc(env, meter):
                try:
                    env[target] = fn(lval, rval)
                except catch as exc:
                    raise InterpreterError(prefix + str(exc)) from exc
                return nxt

            return step_cc

        if lconst:

            def step_cv(env, meter):
                try:
                    b = env[rname]
                except KeyError:
                    raise InterpreterError(rmsg) from None
                try:
                    env[target] = fn(lval, b)
                except catch as exc:
                    raise InterpreterError(prefix + str(exc)) from exc
                return nxt

            return step_cv

        if rconst:

            def step_vc(env, meter):
                try:
                    a = env[lname]
                except KeyError:
                    raise InterpreterError(lmsg) from None
                try:
                    env[target] = fn(a, rval)
                except catch as exc:
                    raise InterpreterError(prefix + str(exc)) from exc
                return nxt

            return step_vc

        def step_vv(env, meter):
            try:
                a = env[lname]
            except KeyError:
                raise InterpreterError(lmsg) from None
            try:
                b = env[rname]
            except KeyError:
                raise InterpreterError(rmsg) from None
            try:
                env[target] = fn(a, b)
            except catch as exc:
                raise InterpreterError(prefix + str(exc)) from exc
            return nxt

        return step_vv

    return None


def _compile_instr(
    fname: str,
    instr: Instr,
    pc: int,
    registry: FunctionRegistry,
) -> StepFn:
    """Lower one instruction to a ``step(env, meter) -> next_pc`` closure."""
    nxt = pc + 1

    if isinstance(instr, Assign):
        target = instr.target.name
        fused = _fused_assign(fname, instr.expr, target, nxt)
        if fused is not None:
            return fused
        ev = _compile_expr(fname, instr.expr, registry)

        def step_assign(env, meter):
            env[target] = ev(env, meter)
            return nxt

        return step_assign

    if isinstance(instr, If):
        taken = instr.target_index
        cond = instr.cond
        if isinstance(cond, Const):
            read = _compile_operand(fname, cond)
            if instr.negate:
                return lambda env, meter: nxt if read(env) else taken
            return lambda env, meter: taken if read(env) else nxt
        cname = cond.name
        cmsg = f"{fname}: variable {cname!r} used before assignment"
        if instr.negate:

            def step_ifnot(env, meter):
                try:
                    c = env[cname]
                except KeyError:
                    raise InterpreterError(cmsg) from None
                return nxt if c else taken

            return step_ifnot

        def step_if(env, meter):
            try:
                c = env[cname]
            except KeyError:
                raise InterpreterError(cmsg) from None
            return taken if c else nxt

        return step_if

    if isinstance(instr, Goto):
        taken = instr.target_index
        return lambda env, meter: taken

    if isinstance(instr, Return):
        if instr.value is None:

            def step_return_none(env, meter):
                env["$return"] = None
                return None

            return step_return_none
        if isinstance(instr.value, Const):
            value = instr.value.value

            def step_return_const(env, meter):
                env["$return"] = value
                return None

            return step_return_const
        rname = instr.value.name
        rmsg = f"{fname}: variable {rname!r} used before assignment"

        def step_return(env, meter):
            try:
                env["$return"] = env[rname]
            except KeyError:
                raise InterpreterError(rmsg) from None
            return None

        return step_return

    if isinstance(instr, Identity):
        name = instr.target.name
        message = f"{fname}: parameter {name!r} unbound"

        def step_identity(env, meter):
            if name not in env:
                raise InterpreterError(message)
            return nxt

        return step_identity

    if isinstance(instr, Invoke):
        ev = _compile_expr(fname, instr.call, registry)

        def step_invoke(env, meter):
            ev(env, meter)
            return nxt

        return step_invoke

    if isinstance(instr, SetAttr):
        read_obj = _compile_operand(fname, instr.obj)
        read_val = _compile_operand(fname, instr.value)
        attr = instr.attr

        def step_setattr(env, meter):
            obj = read_obj(env)
            value = read_val(env)
            try:
                setattr(obj, attr, value)
            except AttributeError as exc:
                raise InterpreterError(
                    f"{fname}: cannot set {attr!r} on {type(obj).__name__}"
                ) from exc
            return nxt

        return step_setattr

    if isinstance(instr, SetItem):
        read_obj = _compile_operand(fname, instr.obj)
        read_idx = _compile_operand(fname, instr.index)
        read_val = _compile_operand(fname, instr.value)

        def step_setitem(env, meter):
            obj = read_obj(env)
            index = read_idx(env)
            value = read_val(env)
            try:
                obj[index] = value
            except (TypeError, KeyError, IndexError) as exc:
                raise InterpreterError(
                    f"{fname}: item assignment failed on "
                    f"{type(obj).__name__}: {exc}"
                ) from exc
            return nxt

        return step_setitem

    if isinstance(instr, Nop):
        return lambda env, meter: nxt

    message = f"{fname}: unknown instruction {type(instr).__name__}"

    def step_unknown(env, meter):
        raise InterpreterError(message)

    return step_unknown


def _static_successors(instr: Instr, pc: int, n: int) -> Tuple[int, ...]:
    """Control-flow successors as the compiled closures will return them."""
    if isinstance(instr, Return):
        return ()
    if isinstance(instr, Goto):
        return (instr.target_index,)
    if isinstance(instr, If):
        return (pc + 1, instr.target_index)
    return (pc + 1,)


# -- the compiled program ------------------------------------------------------


class CompiledFunction:
    """An :class:`IRFunction` lowered to per-instruction closures."""

    __slots__ = (
        "name",
        "steps",
        "n",
        "successors",
        "key",
        "_mask_cache",
        "_full_mask",
    )

    def __init__(
        self, fn: IRFunction, registry: FunctionRegistry, key: tuple
    ) -> None:
        self.name = fn.name
        self.n = len(fn.instrs)
        self.steps: List[StepFn] = [
            _compile_instr(fn.name, instr, pc, registry)
            for pc, instr in enumerate(fn.instrs)
        ]
        self.successors: Tuple[Tuple[int, ...], ...] = tuple(
            _static_successors(instr, pc, self.n)
            for pc, instr in enumerate(fn.instrs)
        )
        self.key = key
        self._mask_cache: Dict[tuple, bytearray] = {}
        self._full_mask = bytearray([1]) * self.n

    def _mask_for(
        self,
        split_set: FrozenSet[Edge],
        observe_set: Optional[FrozenSet[Edge]],
    ) -> bytearray:
        """Per-pc flag: does any out-edge of pc need an edge check?

        Cached per (split set, observe set) pair; plans change rarely
        relative to message traffic, so the steady state is one dict hit.
        """
        key = (split_set, observe_set)
        mask = self._mask_cache.get(key)
        if mask is None:
            watch = split_set if observe_set is None else split_set | observe_set
            mask = bytearray(self.n)
            for pc, succs in enumerate(self.successors):
                for s in succs:
                    if (pc, s) in watch:
                        mask[pc] = 1
                        break
            if len(self._mask_cache) > 128:
                self._mask_cache.clear()
            self._mask_cache[key] = mask
        return mask

    def execute(
        self,
        env: Dict[str, object],
        start_pc: int,
        *,
        split_hook=None,
        edge_observer=None,
        observe_edges: Optional[FrozenSet[Edge]] = None,
        meter=None,
        max_steps: int,
        trace_ctx: Optional[Tuple[int, int]] = None,
    ) -> Tuple[Outcome, int]:
        """Run the compiled program; returns (outcome, executed steps).

        Mirrors ``Interpreter._execute`` exactly, minus per-instruction
        dispatch: split membership and live-capture use the hook's
        precomputed sets when available (``split_edge_set`` /
        ``capture_specs``), falling back to the per-edge ``should_split``
        protocol for custom hooks.
        """
        steps = self.steps
        n = self.n
        fname = self.name

        split_set: Optional[FrozenSet[Edge]] = None
        capture_specs: Optional[Dict[Edge, Tuple[str, ...]]] = None
        generic_hook = None
        if split_hook is not None:
            split_set = split_hook.split_edge_set()
            if split_set is None:
                generic_hook = split_hook
            else:
                capture_specs = split_hook.capture_specs()

        observe_all = edge_observer is not None and observe_edges is None
        if generic_hook is not None or observe_all:
            mask = self._full_mask
        else:
            mask = self._mask_for(
                split_set if split_set is not None else _EMPTY_EDGES,
                observe_edges if edge_observer is not None else None,
            )

        charge = meter.charge_instr if meter is not None else None
        count = 0
        pc = start_pc
        while True:
            count += 1
            if count > max_steps:
                raise InterpreterError(
                    f"{fname}: exceeded {max_steps} steps "
                    f"(infinite loop?)"
                )
            if charge is not None:
                charge()
            next_pc = steps[pc](env, meter)
            if next_pc is None:  # Return executed
                return Outcome(kind="return", value=env.get("$return")), count
            if next_pc >= n:
                raise InterpreterError(
                    f"{fname}: fell off the end at instruction {pc}"
                )
            if mask[pc]:
                edge: Edge = (pc, next_pc)
                if edge_observer is not None and (
                    observe_edges is None or edge in observe_edges
                ):
                    edge_observer(edge, env)
                if generic_hook is not None:
                    if generic_hook.should_split(edge):
                        live = generic_hook.live_vars(edge)
                        captured = {
                            v.name: env[v.name]
                            for v in live
                            if v.name in env
                        }
                        return (
                            Outcome(
                                kind="split",
                                continuation=Continuation(
                                    function=fname,
                                    edge=edge,
                                    variables=captured,
                                    trace=trace_ctx,
                                ),
                            ),
                            count,
                        )
                elif split_set is not None and edge in split_set:
                    names = (
                        capture_specs.get(edge)
                        if capture_specs is not None
                        else None
                    )
                    if names is None:
                        live = split_hook.live_vars(edge)
                        captured = {
                            v.name: env[v.name]
                            for v in live
                            if v.name in env
                        }
                    else:
                        captured = {
                            name: env[name] for name in names if name in env
                        }
                    return (
                        Outcome(
                            kind="split",
                            continuation=Continuation(
                                function=fname,
                                edge=edge,
                                variables=captured,
                                trace=trace_ctx,
                            ),
                        ),
                        count,
                    )
            pc = next_pc


def compile_function(
    fn: IRFunction, registry: FunctionRegistry
) -> CompiledFunction:
    """Lower *fn* once; cached on the function, invalidated by IR identity.

    The cache key ties the artifact to this exact instruction list (object
    identity — rewrites like inlining produce a new function) and to the
    registry's mutation version, so registering or replacing a function or
    class after compilation forces a recompile with fresh entry bindings.
    """
    key = (
        id(registry),
        registry.version,
        id(fn.instrs),
        len(fn.instrs),
    )
    cached = getattr(fn, "_compiled_cache", None)
    if cached is not None and cached.key == key:
        return cached
    compiled = CompiledFunction(fn, registry, key)
    fn._compiled_cache = compiled
    return compiled
