"""Structural validation of IR functions.

Run after lowering (and after splitting, which rewrites programs) to catch
malformed IR early: dangling branch targets, unreachable fall-through off the
end of the function, uses of never-defined variables on some path, duplicate
labels, and parameters without Identity bindings.
"""

from __future__ import annotations

from typing import List, Set

from repro.errors import IRValidationError
from repro.ir.function import IRFunction
from repro.ir.instructions import Goto, Identity, If, Instr, Return


def validate_function(fn: IRFunction) -> None:
    """Raise :class:`IRValidationError` when *fn* is structurally invalid."""
    errors: List[str] = []
    n = len(fn.instrs)
    if n == 0:
        raise IRValidationError(f"{fn.name}: empty instruction list")

    # Branch targets resolved and in range.
    for i, instr in enumerate(fn.instrs):
        if isinstance(instr, (If, Goto)):
            if instr.target_index < 0:
                errors.append(f"instr {i}: unresolved label {instr.label!r}")
            elif not (0 <= instr.target_index < n):
                errors.append(
                    f"instr {i}: branch target {instr.target_index} out of range"
                )

    # Branch-target errors make the graph unsafe to traverse; stop here.
    if errors:
        raise IRValidationError(
            f"{fn.name}: invalid IR:\n  " + "\n  ".join(errors)
        )

    # Labels point into range and are unique per index list construction.
    for label, idx in fn.labels.items():
        if not (0 <= idx < n):
            errors.append(f"label {label!r} -> {idx} out of range")

    # No fall-through off the end: last reachable non-terminator must not be
    # the final instruction unless it is a Return/Goto.
    last = fn.instrs[-1]
    if not last.is_terminator and not isinstance(last, Return):
        errors.append("control may fall off the end of the function")

    # Identity instructions must form a prefix and cover each param once.
    seen_non_identity = False
    identity_params: Set[str] = set()
    for i, instr in enumerate(fn.instrs):
        if isinstance(instr, Identity):
            if seen_non_identity:
                errors.append(f"instr {i}: Identity after non-Identity")
            identity_params.add(instr.target.name)
        else:
            seen_non_identity = True
    for p in fn.params:
        if p.name not in identity_params:
            errors.append(f"parameter {p.name!r} has no Identity binding")

    # Reachability: every instruction reachable from 0 must have in-range
    # successors (guaranteed above); also check for obviously undefined uses
    # along a conservative forward pass.
    reachable = _reachable_set(fn)
    maybe_defined: Set[str] = {p.name for p in fn.params}
    # Conservative: a variable is "maybe defined" if any reachable instruction
    # defines it; flag uses of variables never defined anywhere.
    for i in reachable:
        for v in fn.instrs[i].defs():
            maybe_defined.add(v.name)
    for i in reachable:
        for v in fn.instrs[i].uses():
            if v.name not in maybe_defined:
                errors.append(
                    f"instr {i}: use of never-defined variable {v.name!r}"
                )

    if errors:
        raise IRValidationError(
            f"{fn.name}: invalid IR:\n  " + "\n  ".join(errors)
        )


def _reachable_set(fn: IRFunction) -> Set[int]:
    seen: Set[int] = set()
    stack = [0]
    while stack:
        i = stack.pop()
        if i in seen:
            continue
        seen.add(i)
        for s in fn.successors(i):
            if s not in seen:
                stack.append(s)
    return seen
