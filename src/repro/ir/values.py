"""Value and expression model for the instruction-level IR.

The IR mirrors Soot's Jimple (the paper's substrate) in shape: it is a
register-based three-address form in which every *instruction* is a node of
the Unit Graph.  Values are either variables (registers) or constants;
expressions combine at most a handful of values and appear only on the
right-hand side of an assignment or as the condition of a branch.

Everything here is immutable and hashable so that analyses can use values
as dictionary keys and set members.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import FrozenSet, Tuple, Union


@dataclass(frozen=True)
class Var:
    """A local variable (register) of an IR function.

    Names are unique within a function.  Compiler-introduced temporaries are
    prefixed with ``$`` exactly as Jimple prints them (``$t3``), which keeps
    dumps visually comparable to the paper's Figure 4.
    """

    name: str

    def __repr__(self) -> str:
        return self.name

    @property
    def is_temp(self) -> bool:
        return self.name.startswith("$")


@dataclass(frozen=True)
class Const:
    """A literal constant (int, float, str, bool, bytes or None)."""

    value: object

    def __repr__(self) -> str:
        return repr(self.value)


#: A value that may appear as an operand of an expression.
Operand = Union[Var, Const]


def operand_vars(operand: Operand) -> FrozenSet[Var]:
    """Return the set of variables read by *operand*."""
    if isinstance(operand, Var):
        return frozenset((operand,))
    return frozenset()


class Expr:
    """Base class for right-hand-side expressions.

    Subclasses are frozen dataclasses; :meth:`uses` returns every variable
    the expression reads, which feeds the USE sets of liveness analysis.
    """

    def uses(self) -> FrozenSet[Var]:
        raise NotImplementedError


@dataclass(frozen=True)
class BinOp(Expr):
    """``left <op> right`` for arithmetic/bitwise operators.

    ``op`` is one of ``+ - * / // % ** << >> & | ^``.
    """

    op: str
    left: Operand
    right: Operand

    def uses(self) -> FrozenSet[Var]:
        return operand_vars(self.left) | operand_vars(self.right)

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """``<op> operand`` where ``op`` is one of ``- + not ~``."""

    op: str
    operand: Operand

    def uses(self) -> FrozenSet[Var]:
        return operand_vars(self.operand)

    def __repr__(self) -> str:
        return f"{self.op} {self.operand!r}"


@dataclass(frozen=True)
class Compare(Expr):
    """``left <op> right`` for ``== != < <= > >= is is-not in not-in``."""

    op: str
    left: Operand
    right: Operand

    def uses(self) -> FrozenSet[Var]:
        return operand_vars(self.left) | operand_vars(self.right)

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


@dataclass(frozen=True)
class Call(Expr):
    """A call to a registered function: ``func(arg0, arg1, ...)``.

    Calls are *opaque* to the analyses, exactly as the paper's prototype
    treats method invocations inside handlers (paper section 7).  Whether a
    call pins its instruction to the receiver (a "native" call in the
    paper's terminology) is a property of the registered function, not of
    the call site; see :class:`repro.ir.registry.FunctionRegistry`.
    """

    func: str
    args: Tuple[Operand, ...]

    def uses(self) -> FrozenSet[Var]:
        out: FrozenSet[Var] = frozenset()
        for arg in self.args:
            out |= operand_vars(arg)
        return out

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        return f"invoke {self.func}({args})"


@dataclass(frozen=True)
class New(Expr):
    """Instantiate a registered class: ``new Cls(arg0, ...)``."""

    cls: str
    args: Tuple[Operand, ...]

    def uses(self) -> FrozenSet[Var]:
        out: FrozenSet[Var] = frozenset()
        for arg in self.args:
            out |= operand_vars(arg)
        return out

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        return f"new {self.cls}({args})"


@dataclass(frozen=True)
class IsInstance(Expr):
    """``operand instanceof cls`` (paper Figure 4, line 3)."""

    operand: Operand
    cls: str

    def uses(self) -> FrozenSet[Var]:
        return operand_vars(self.operand)

    def __repr__(self) -> str:
        return f"{self.operand!r} instanceof {self.cls}"


@dataclass(frozen=True)
class Cast(Expr):
    """``(cls) operand`` — a checked cast (paper Figure 4, line 5)."""

    cls: str
    operand: Operand

    def uses(self) -> FrozenSet[Var]:
        return operand_vars(self.operand)

    def __repr__(self) -> str:
        return f"({self.cls}) {self.operand!r}"


@dataclass(frozen=True)
class GetAttr(Expr):
    """Field read: ``obj.attr``."""

    obj: Operand
    attr: str

    def uses(self) -> FrozenSet[Var]:
        return operand_vars(self.obj)

    def __repr__(self) -> str:
        return f"{self.obj!r}.{self.attr}"


@dataclass(frozen=True)
class GetItem(Expr):
    """Indexed read: ``obj[index]``."""

    obj: Operand
    index: Operand

    def uses(self) -> FrozenSet[Var]:
        return operand_vars(self.obj) | operand_vars(self.index)

    def __repr__(self) -> str:
        return f"{self.obj!r}[{self.index!r}]"


@dataclass(frozen=True)
class BuildList(Expr):
    """Construct a list from operands."""

    items: Tuple[Operand, ...]

    def uses(self) -> FrozenSet[Var]:
        out: FrozenSet[Var] = frozenset()
        for item in self.items:
            out |= operand_vars(item)
        return out

    def __repr__(self) -> str:
        return "[" + ", ".join(repr(i) for i in self.items) + "]"


@dataclass(frozen=True)
class BuildTuple(Expr):
    """Construct a tuple from operands."""

    items: Tuple[Operand, ...]

    def uses(self) -> FrozenSet[Var]:
        out: FrozenSet[Var] = frozenset()
        for item in self.items:
            out |= operand_vars(item)
        return out

    def __repr__(self) -> str:
        return "(" + ", ".join(repr(i) for i in self.items) + ")"


@dataclass(frozen=True)
class BuildDict(Expr):
    """Construct a dict from key/value operand pairs."""

    items: Tuple[Tuple[Operand, Operand], ...]

    def uses(self) -> FrozenSet[Var]:
        out: FrozenSet[Var] = frozenset()
        for key, value in self.items:
            out |= operand_vars(key) | operand_vars(value)
        return out

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in self.items)
        return "{" + inner + "}"


@dataclass(frozen=True)
class OperandExpr(Expr):
    """A bare operand used as an expression (simple copy: ``x = y``)."""

    operand: Operand

    def uses(self) -> FrozenSet[Var]:
        return operand_vars(self.operand)

    def __repr__(self) -> str:
        return repr(self.operand)


def expr_fields(expr: Expr) -> Tuple[object, ...]:
    """Return the dataclass field values of *expr* (for generic rewriting)."""
    return tuple(getattr(expr, f.name) for f in dataclasses.fields(expr))
