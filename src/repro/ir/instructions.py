"""Instruction set of the IR.

Each instruction is one node of the Unit Graph (UG).  This mirrors the
paper's use of Jimple, where "each node is an instruction instead of a basic
block" (paper section 2.1).  Instructions expose:

* :meth:`Instr.uses` — the variables read (USE set for liveness),
* :meth:`Instr.defs` — the variables written (DEF set),
* :meth:`Instr.successors` — intra-function control-flow targets given the
  instruction's own index, used to build the UG.

Branch targets are symbolic labels during construction and are resolved to
instruction indices when an :class:`~repro.ir.function.IRFunction` is
finalized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.ir.values import Call, Expr, Operand, Var, operand_vars


class Instr:
    """Base class for IR instructions.

    Instances are mutable only in their ``target_index`` fields (set once by
    label resolution); all value fields are immutable IR values.
    """

    def uses(self) -> FrozenSet[Var]:
        """Variables read by this instruction."""
        raise NotImplementedError

    def defs(self) -> FrozenSet[Var]:
        """Variables written by this instruction."""
        return frozenset()

    def successors(self, index: int, n_instrs: int) -> Tuple[int, ...]:
        """Indices of control-flow successors of this instruction at *index*."""
        if index + 1 < n_instrs:
            return (index + 1,)
        return ()

    @property
    def is_terminator(self) -> bool:
        """True when control never falls through to the next instruction."""
        return False

    def called_functions(self) -> Tuple[str, ...]:
        """Names of registered functions invoked by this instruction."""
        return ()


@dataclass
class Identity(Instr):
    """Bind a parameter (or ``self``) to a local: ``r0 := @parameter0``.

    These are the instructions "before" the StartNode in the paper's
    terminology — they rename parameters and are excluded from partitioning.
    """

    target: Var
    source: str  # e.g. "@parameter0" or "@this"
    param_index: Optional[int] = None  # None for @this

    def uses(self) -> FrozenSet[Var]:
        return frozenset()

    def defs(self) -> FrozenSet[Var]:
        return frozenset((self.target,))

    def __repr__(self) -> str:
        return f"{self.target!r} := {self.source}"


@dataclass
class Assign(Instr):
    """``target = expr`` where *expr* is any :class:`~repro.ir.values.Expr`."""

    target: Var
    expr: Expr

    def uses(self) -> FrozenSet[Var]:
        return self.expr.uses()

    def defs(self) -> FrozenSet[Var]:
        return frozenset((self.target,))

    def called_functions(self) -> Tuple[str, ...]:
        if isinstance(self.expr, Call):
            return (self.expr.func,)
        return ()

    def __repr__(self) -> str:
        return f"{self.target!r} = {self.expr!r}"


@dataclass
class Invoke(Instr):
    """A call whose result is discarded: ``invoke f(a, b)``."""

    call: Call

    def uses(self) -> FrozenSet[Var]:
        return self.call.uses()

    def called_functions(self) -> Tuple[str, ...]:
        return (self.call.func,)

    def __repr__(self) -> str:
        return repr(self.call)


@dataclass
class SetAttr(Instr):
    """Field write: ``obj.attr = value``.

    The object is both used and (conceptually) defined; because the write
    mutates the heap rather than the register, ``obj`` appears in ``uses``
    and in ``mutates`` but not in ``defs``.
    """

    obj: Operand
    attr: str
    value: Operand

    def uses(self) -> FrozenSet[Var]:
        return operand_vars(self.obj) | operand_vars(self.value)

    def mutates(self) -> FrozenSet[Var]:
        return operand_vars(self.obj)

    def __repr__(self) -> str:
        return f"{self.obj!r}.{self.attr} = {self.value!r}"


@dataclass
class SetItem(Instr):
    """Indexed write: ``obj[index] = value``."""

    obj: Operand
    index: Operand
    value: Operand

    def uses(self) -> FrozenSet[Var]:
        return (
            operand_vars(self.obj)
            | operand_vars(self.index)
            | operand_vars(self.value)
        )

    def mutates(self) -> FrozenSet[Var]:
        return operand_vars(self.obj)

    def __repr__(self) -> str:
        return f"{self.obj!r}[{self.index!r}] = {self.value!r}"


@dataclass
class If(Instr):
    """Conditional branch: ``if cond goto label`` (falls through otherwise).

    The condition is a bare operand; the builder materializes compound
    conditions into temporaries first, so every UG node stays a single
    Jimple-sized instruction.
    """

    cond: Operand
    label: str
    negate: bool = False
    target_index: int = -1

    def uses(self) -> FrozenSet[Var]:
        return operand_vars(self.cond)

    def successors(self, index: int, n_instrs: int) -> Tuple[int, ...]:
        out = []
        if index + 1 < n_instrs:
            out.append(index + 1)
        if self.target_index >= 0:
            out.append(self.target_index)
        return tuple(out)

    def __repr__(self) -> str:
        cond = f"not {self.cond!r}" if self.negate else repr(self.cond)
        return f"if {cond} goto {self.label}"


@dataclass
class Goto(Instr):
    """Unconditional branch: ``goto label``."""

    label: str
    target_index: int = -1

    def uses(self) -> FrozenSet[Var]:
        return frozenset()

    def successors(self, index: int, n_instrs: int) -> Tuple[int, ...]:
        if self.target_index >= 0:
            return (self.target_index,)
        return ()

    @property
    def is_terminator(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"goto {self.label}"


@dataclass
class Return(Instr):
    """``return [value]`` — always a StopNode (paper section 3)."""

    value: Optional[Operand] = None

    def uses(self) -> FrozenSet[Var]:
        if self.value is None:
            return frozenset()
        return operand_vars(self.value)

    def successors(self, index: int, n_instrs: int) -> Tuple[int, ...]:
        return ()

    @property
    def is_terminator(self) -> bool:
        return True

    def __repr__(self) -> str:
        if self.value is None:
            return "return"
        return f"return {self.value!r}"


@dataclass
class Nop(Instr):
    """A no-op; used as a label anchor by the builder."""

    comment: str = ""

    def uses(self) -> FrozenSet[Var]:
        return frozenset()

    def __repr__(self) -> str:
        return f"nop  # {self.comment}" if self.comment else "nop"


def instruction_mutations(instr: Instr) -> FrozenSet[Var]:
    """Variables whose referenced heap object is mutated by *instr*."""
    if isinstance(instr, (SetAttr, SetItem)):
        return instr.mutates()
    return frozenset()
