"""Bundled static-analysis results for one handler.

Every stage of Method Partitioning (ConvexCut, cost models, splitter,
runtime units) consumes the same set of analyses over the same handler;
:class:`AnalysisContext` computes them once and passes them around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis import (
    AliasResult,
    DataDependencyGraph,
    LivenessResult,
    ReachingResult,
    StopNodeResult,
    TargetPath,
    UnitGraph,
    compute_aliases,
    compute_liveness,
    compute_reaching,
    enumerate_target_paths,
    mark_stop_nodes,
)
from repro.ir.function import IRFunction
from repro.ir.interpreter import Edge
from repro.ir.registry import FunctionRegistry


@dataclass
class AnalysisContext:
    """All static analyses of a handler, computed once."""

    function: IRFunction
    registry: FunctionRegistry
    graph: UnitGraph
    liveness: LivenessResult
    reaching: ReachingResult
    ddg: DataDependencyGraph
    stops: StopNodeResult
    paths: Tuple[TargetPath, ...]
    aliases: AliasResult

    @classmethod
    def build(
        cls,
        fn: IRFunction,
        registry: FunctionRegistry,
        *,
        max_paths: int = 4096,
    ) -> "AnalysisContext":
        graph = UnitGraph.build(fn)
        liveness = compute_liveness(graph)
        reaching = compute_reaching(graph)
        ddg = DataDependencyGraph.build(graph, reaching)
        stops = mark_stop_nodes(graph, registry)
        paths = enumerate_target_paths(graph, stops, max_paths=max_paths)
        aliases = compute_aliases(fn)
        return cls(
            function=fn,
            registry=registry,
            graph=graph,
            liveness=liveness,
            reaching=reaching,
            ddg=ddg,
            stops=stops,
            paths=paths,
            aliases=aliases,
        )

    def inter(self, edge: Edge):
        """INTER(e): the continuation hand-over variable set of *edge*."""
        return self.liveness.inter(edge)

    def stop_entry_edges(self) -> Tuple[Edge, ...]:
        """Edges whose *in* node is a StopNode.

        These are the terminal split points: when no earlier PSE fires on an
        execution path, the modulator must split here because the StopNode
        itself can only run at the receiver.
        """
        out = []
        for edge in self.graph.edges():
            if self.stops.is_stop(edge[1]) and not self.stops.is_stop(edge[0]):
                out.append(edge)
        return tuple(out)
