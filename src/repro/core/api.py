"""High-level facade: partition a Python handler in one call.

Typical use::

    from repro.core import MethodPartitioner
    from repro.core.costmodels import DataSizeCostModel
    from repro.ir import default_registry

    registry = default_registry()
    registry.register_class(ImageData)
    registry.register_function("display", display, receiver_only=True)

    partitioner = MethodPartitioner(registry)
    pm = partitioner.partition(push_handler, DataSizeCostModel())
    modulator = pm.make_modulator(profiling=pm.make_profiling_unit())
    demodulator = pm.make_demodulator()

    result = modulator.process(event)
    if result.message is not None:
        demodulator.process(result.message)   # at the receiver

Static analysis is the expensive half of partitioning (lowering, the Unit
Graph, DDG, liveness, TargetPath enumeration, ConvexCut) and its inputs
are immutable once computed, so :meth:`MethodPartitioner.partition` keeps
an **analysis-artifact cache**: repeated calls with the same handler, cost
model, and analysis options reuse the lowered IR and
:class:`~repro.core.convexcut.ConvexCutResult` instead of rebuilding them
per run — experiments that re-partition the same handler for every
configuration sweep pay the analysis once.  The cache is invalidated by
registry mutation (its :attr:`~repro.ir.registry.FunctionRegistry.version`
counter participates in the key) and can be disabled or cleared
explicitly.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple, Union

from repro.core.context import AnalysisContext
from repro.core.continuation import ContinuationCodec
from repro.core.convexcut import convex_cut
from repro.core.costmodels.base import CostModel
from repro.core.partitioned import PartitionedMethod
from repro.ir.builder import lower_function
from repro.ir.function import IRFunction
from repro.ir.interpreter import Interpreter
from repro.ir.registry import FunctionRegistry, default_registry
from repro.ir.validate import validate_function
from repro.serialization import SerializerRegistry


class MethodPartitioner:
    """Front door of the library: handler in, modulator/demodulator out.

    The only application knowledge required is the cost model passed to
    :meth:`partition` — the paper's "minimal deployment-time knowledge".

    ``backend`` selects the execution backend for every modulator /
    demodulator produced from this partitioner: ``"compiled"`` (default,
    closure-compiled hot path), ``"codegen"`` (Python source generation,
    fastest; falls back to the closure backend per function when a handler
    uses features it cannot lower) or ``"tree"`` (the reference
    tree-walking evaluator).
    """

    def __init__(
        self,
        registry: Optional[FunctionRegistry] = None,
        serializer_registry: Optional[SerializerRegistry] = None,
        *,
        backend: str = "compiled",
        analysis_cache: bool = True,
    ) -> None:
        self.registry = registry or default_registry()
        self.serializer_registry = serializer_registry or SerializerRegistry()
        self.backend = backend
        self.interpreter = Interpreter(self.registry, backend=backend)
        self._analysis_cache: Optional[Dict[tuple, tuple]] = (
            {} if analysis_cache else None
        )
        self.analysis_cache_hits = 0
        self.analysis_cache_misses = 0

    # -- analysis-artifact cache -------------------------------------------

    def clear_analysis_cache(self) -> None:
        """Drop every cached (IR, ConvexCut) artifact."""
        if self._analysis_cache is not None:
            self._analysis_cache.clear()

    def analysis_cache_info(self) -> Dict[str, int]:
        """Hit/miss/entry counts, for experiment reporting."""
        return {
            "hits": self.analysis_cache_hits,
            "misses": self.analysis_cache_misses,
            "entries": (
                len(self._analysis_cache)
                if self._analysis_cache is not None
                else 0
            ),
        }

    def _cache_key(
        self,
        handler: Union[Callable, str, IRFunction],
        cost_model: CostModel,
        receiver_vars: Sequence[str],
        constants: Optional[Dict[str, object]],
        max_paths: int,
        inline_helpers: bool,
    ) -> Optional[tuple]:
        """Build a cache key, or None when the inputs defy safe caching.

        The cost model and callable handlers enter the key by object
        identity (the key tuple itself pins them against garbage
        collection, so ids cannot be recycled while an entry lives);
        an :class:`IRFunction` handler is keyed by id and re-verified by
        identity on hit because the dataclass is unhashable.
        """
        if self._analysis_cache is None:
            return None
        if isinstance(handler, IRFunction):
            hkey: object = ("ir", id(handler))
        else:
            hkey = handler  # source text or callable; both hashable
        if constants:
            try:
                ckey: object = tuple(sorted(constants.items()))
                hash(ckey)
            except TypeError:
                return None
        else:
            ckey = None
        try:
            key = (
                hkey,
                cost_model,
                tuple(receiver_vars),
                ckey,
                max_paths,
                inline_helpers,
                self.registry.version,
            )
            hash(key)
        except TypeError:
            return None
        return key

    def partition(
        self,
        handler: Union[Callable, str, IRFunction],
        cost_model: CostModel,
        *,
        receiver_vars: Sequence[str] = (),
        constants: Optional[Dict[str, object]] = None,
        max_paths: int = 4096,
        inline_helpers: bool = True,
    ) -> PartitionedMethod:
        """Statically analyze *handler* and produce its partitioned form.

        Args:
            handler: a Python function, handler source text, or an already
                lowered :class:`IRFunction`.
            cost_model: the deployment-time customization criterion.
            receiver_vars: variable names pinned to the receiver
                (instructions touching them become StopNodes).
            constants: compile-time constant names for the handler body.
            max_paths: TargetPath enumeration cap.
            inline_helpers: expand helpers registered via
                ``registry.register_inline`` into the handler's UG (the
                paper's whole-program future work); opaque functions are
                unaffected either way.
        """
        key = self._cache_key(
            handler, cost_model, receiver_vars, constants, max_paths,
            inline_helpers,
        )
        if key is not None:
            cached = self._analysis_cache.get(key)
            if cached is not None and (
                not isinstance(handler, IRFunction) or cached[0] is handler
            ):
                self.analysis_cache_hits += 1
                return self._assemble(cached[1], cached[2])
            self.analysis_cache_misses += 1

        if isinstance(handler, IRFunction):
            fn = handler
        else:
            fn = lower_function(
                handler,
                self.registry,
                receiver_vars=receiver_vars,
                constants=constants,
            )
        if inline_helpers:
            from repro.ir.inliner import inline_calls

            fn = inline_calls(fn, self.registry)
        validate_function(fn)
        ctx = AnalysisContext.build(fn, self.registry, max_paths=max_paths)
        cut = convex_cut(ctx, cost_model)
        if key is not None:
            self._analysis_cache[key] = (handler, fn, cut)
        return self._assemble(fn, cut)

    def _assemble(self, fn: IRFunction, cut) -> PartitionedMethod:
        """Wrap the (possibly cached) analysis artifacts in runtime form."""
        return PartitionedMethod(
            function=fn,
            cut=cut,
            registry=self.registry,
            serializer_registry=self.serializer_registry,
            interpreter=self.interpreter,
            codec=ContinuationCodec(self.serializer_registry),
        )
