"""High-level facade: partition a Python handler in one call.

Typical use::

    from repro.core import MethodPartitioner
    from repro.core.costmodels import DataSizeCostModel
    from repro.ir import default_registry

    registry = default_registry()
    registry.register_class(ImageData)
    registry.register_function("display", display, receiver_only=True)

    partitioner = MethodPartitioner(registry)
    pm = partitioner.partition(push_handler, DataSizeCostModel())
    modulator = pm.make_modulator(profiling=pm.make_profiling_unit())
    demodulator = pm.make_demodulator()

    result = modulator.process(event)
    if result.message is not None:
        demodulator.process(result.message)   # at the receiver
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Union

from repro.core.context import AnalysisContext
from repro.core.continuation import ContinuationCodec
from repro.core.convexcut import convex_cut
from repro.core.costmodels.base import CostModel
from repro.core.partitioned import PartitionedMethod
from repro.ir.builder import lower_function
from repro.ir.function import IRFunction
from repro.ir.interpreter import Interpreter
from repro.ir.registry import FunctionRegistry, default_registry
from repro.ir.validate import validate_function
from repro.serialization import SerializerRegistry


class MethodPartitioner:
    """Front door of the library: handler in, modulator/demodulator out.

    The only application knowledge required is the cost model passed to
    :meth:`partition` — the paper's "minimal deployment-time knowledge".
    """

    def __init__(
        self,
        registry: Optional[FunctionRegistry] = None,
        serializer_registry: Optional[SerializerRegistry] = None,
    ) -> None:
        self.registry = registry or default_registry()
        self.serializer_registry = serializer_registry or SerializerRegistry()
        self.interpreter = Interpreter(self.registry)

    def partition(
        self,
        handler: Union[Callable, str, IRFunction],
        cost_model: CostModel,
        *,
        receiver_vars: Sequence[str] = (),
        constants: Optional[Dict[str, object]] = None,
        max_paths: int = 4096,
        inline_helpers: bool = True,
    ) -> PartitionedMethod:
        """Statically analyze *handler* and produce its partitioned form.

        Args:
            handler: a Python function, handler source text, or an already
                lowered :class:`IRFunction`.
            cost_model: the deployment-time customization criterion.
            receiver_vars: variable names pinned to the receiver
                (instructions touching them become StopNodes).
            constants: compile-time constant names for the handler body.
            max_paths: TargetPath enumeration cap.
            inline_helpers: expand helpers registered via
                ``registry.register_inline`` into the handler's UG (the
                paper's whole-program future work); opaque functions are
                unaffected either way.
        """
        if isinstance(handler, IRFunction):
            fn = handler
        else:
            fn = lower_function(
                handler,
                self.registry,
                receiver_vars=receiver_vars,
                constants=constants,
            )
        if inline_helpers:
            from repro.ir.inliner import inline_calls

            fn = inline_calls(fn, self.registry)
        validate_function(fn)
        ctx = AnalysisContext.build(fn, self.registry, max_paths=max_paths)
        cut = convex_cut(ctx, cost_model)
        return PartitionedMethod(
            function=fn,
            cut=cut,
            registry=self.registry,
            serializer_registry=self.serializer_registry,
            interpreter=self.interpreter,
            codec=ContinuationCodec(self.serializer_registry),
        )
