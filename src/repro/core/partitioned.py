"""The modulator/demodulator pair generated from a partitioned handler.

Static analysis "generates the modulator/demodulator pair from the handling
method" (paper section 2.1).  In this reproduction both halves execute the
*same* IR program under the interpreter; the difference is where execution
starts and stops:

* the :class:`Modulator` (inside the message **sender**) runs the handler
  from the top under the plan's split hook, so it stops at the first active
  or forced PSE and emits a :class:`ContinuationMessage`;
* the :class:`Demodulator` (inside the **receiver**) resumes the handler at
  the continuation's PSE with the handed-over variables restored.

Profiling code "inserted along each PSE" is realized by the hooks around
the split/resume boundary, gated by the Profiling Unit's per-PSE flags.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.core.continuation import ContinuationCodec, ContinuationMessage
from repro.core.convexcut import ConvexCutResult, PSE
from repro.core.plan import PartitioningPlan, PlanRuntime, static_optimal_plan
from repro.core.runtime.profiling import ProfilingUnit
from repro.core.runtime.reconfig import ReconfigurationUnit
from repro.core.runtime.triggers import FeedbackTrigger
from repro.errors import PartitionError
from repro.ir.function import IRFunction
from repro.ir.interpreter import CycleMeter, Edge, Interpreter, Outcome
from repro.ir.registry import FunctionRegistry
from repro.obs.trace import SplitSwitched
from repro.serialization import SerializerRegistry, measure_size


@dataclass
class ModulatorResult:
    """Outcome of pushing one message through a modulator."""

    #: True when the handler ran to completion inside the sender (possible
    #: only for handlers without StopNodes on the executed path).
    completed: bool
    value: object = None
    #: the continuation to ship; None when completed or elided
    message: Optional[ContinuationMessage] = None
    #: PSE edge where the split happened (None when completed)
    edge: Optional[Edge] = None
    #: abstract cycles consumed on the sender
    cycles: float = 0.0
    #: True when the continuation was a no-op and was dropped (filtering)
    elided: bool = False
    #: the "modulate" span, when tracing sampled this message
    span: Optional[object] = None


@dataclass
class DemodulatorResult:
    """Outcome of resuming one continuation in a demodulator."""

    value: object
    edge: Edge
    cycles: float = 0.0
    #: the "demodulate" span, when the message carried a trace context
    span: Optional[object] = None


class Modulator:
    """The sender-side half of a partitioned handler.

    When a profiling unit is attached, the modulator observes every PSE
    edge it traverses — not only the one it splits at — recording the
    work done up to that edge and (flag-gated, sampled) the serialized
    size of the edge's INTER set from the live environment.  That is the
    modulator half of the paper's "profiling information from both the
    modulator and demodulator sides".

    ``record_rates=False`` lets an external harness (e.g. the simulation
    pipeline) supply its own seconds-per-cycle rate measurements instead of
    the modulator's wall-clock/cycle ones.
    """

    def __init__(
        self,
        partitioned: "PartitionedMethod",
        *,
        plan: Optional[PartitioningPlan] = None,
        profiling: Optional[ProfilingUnit] = None,
        wall_clock: bool = False,
        record_rates: bool = True,
        obs=None,
    ) -> None:
        self.partitioned = partitioned
        self.plan_runtime = PlanRuntime(partitioned.cut)
        self.plan_runtime.apply_plan(plan or static_optimal_plan(partitioned.cut))
        self.profiling = profiling
        self.wall_clock = wall_clock
        self.record_rates = record_rates
        self._interp = partitioned.interpreter
        self._codec = partitioned.codec
        # Hot-path precomputation: the PSE edge set (so the interpreter only
        # consults the observer on PSE edges) and per-PSE INTER name tuples
        # (so measuring a hand-over payload never iterates Var objects).
        pses = partitioned.cut.pses
        self._pse_edges = frozenset(pses)
        self._inter_names = {
            e: tuple(v.name for v in p.inter) for e, p in pses.items()
        }
        self.obs = obs
        if obs is not None:
            self._c_switches = obs.metrics.counter("modulator.plan_switches")
        else:
            self._c_switches = None

    def _pse_ids(self, edges) -> Tuple[str, ...]:
        pses = self.partitioned.cut.pses
        return tuple(
            sorted(
                str(pses[e].pse_id) if e in pses else str(e) for e in edges
            )
        )

    def _pse_id_str(self, edge: Edge) -> str:
        pse = self.partitioned.cut.pses.get(edge)
        return str(pse.pse_id) if pse is not None else f"forced{edge}"

    def apply_plan(self, plan: PartitioningPlan) -> None:
        """Adaptation actuation: flip the flag values (paper section 2.6)."""
        old_active = self.plan_runtime.active_edges()
        self.plan_runtime.apply_plan(plan)
        if self.obs is not None and plan.active != old_active:
            self._c_switches.inc()
            self.obs.trace.record(
                SplitSwitched(
                    old_pse_ids=self._pse_ids(old_active),
                    new_pse_ids=self._pse_ids(plan.active),
                    old_edges=tuple(sorted(old_active)),
                    new_edges=tuple(sorted(plan.active)),
                )
            )

    @property
    def switch_count(self) -> int:
        return self.plan_runtime.switch_count

    def _measure_inter(self, edge: Edge, env: Dict[str, object]) -> float:
        """Size-calculation tool: wire size of INTER(e) from the live env."""
        payload = {
            name: env[name]
            for name in self._inter_names[edge]
            if name in env
        }
        return float(
            measure_size(
                payload,
                self.partitioned.serializer_registry,
                use_self_sizing=True,
            )
        )

    def process(
        self,
        *args: object,
        trace_ctx: Optional[Tuple[int, int]] = None,
    ) -> ModulatorResult:
        """Run the handler on *args* until it splits (or completes).

        ``trace_ctx`` continues an existing trace (relay hops: a broker
        re-modulating a received event); without it the tracer decides —
        by sampling — whether this message starts a new trace.
        """
        profiling = self.profiling
        if profiling is not None:
            profiling.record_message()
        obs = self.obs
        tracer = obs.tracing if obs is not None else None
        span = None
        run_ctx: Optional[Tuple[int, int]] = None
        traced_edges: Optional[list] = None
        if tracer is not None:
            trace_id = (
                trace_ctx[0]
                if trace_ctx is not None
                else tracer.start_trace()
            )
            if trace_id is not None:
                span = tracer.begin(
                    "modulate",
                    trace_id=trace_id,
                    parent_id=(
                        trace_ctx[1] if trace_ctx is not None else None
                    ),
                )
                run_ctx = (trace_id, span.span_id)
        meter = CycleMeter()
        observations: list = []
        observer = None
        if profiling is not None:
            # The interpreter filters to PSE edges via observe_edges, so the
            # observer body never sees (or re-checks) a non-PSE edge.
            def observer(edge: Edge, env: Dict[str, object]) -> None:
                size: Optional[float] = None
                if profiling.should_measure(edge):
                    size = self._measure_inter(edge, env)
                observations.append((edge, meter.cycles, size))

        elif span is not None:
            # Tracing without profiling still wants the traversed PSE
            # edges for the span attributes.
            traced_edges = []

            def observer(edge: Edge, env: Dict[str, object]) -> None:
                traced_edges.append(edge)

        started = time.perf_counter() if self.wall_clock else 0.0
        outcome = self._interp.run(
            self.partitioned.function,
            args,
            split_hook=self.plan_runtime,
            edge_observer=observer,
            observe_edges=self._pse_edges,
            meter=meter,
            trace_ctx=run_ctx,
        )
        elapsed = (
            time.perf_counter() - started if self.wall_clock else meter.cycles
        )

        split_edge: Optional[Edge] = (
            outcome.continuation.edge if outcome.split else None
        )
        if profiling is not None:
            for edge, work_before, size in observations:
                profiling.record_edge_observation(
                    edge,
                    data_size=size,
                    work_before=work_before,
                    is_split=(edge == split_edge),
                )
            if self.record_rates:
                profiling.record_sender_rate(elapsed, meter.cycles)

        if outcome.returned:
            if profiling is not None:
                profiling.record_local_completion()
            if span is not None:
                self._finish_span(
                    span, observations, traced_edges, meter, "completed"
                )
            return ModulatorResult(
                completed=True,
                value=outcome.value,
                cycles=meter.cycles,
                span=span,
            )

        continuation = outcome.continuation
        pse = self.partitioned.cut.pses.get(split_edge)
        pse_id = pse.pse_id if pse is not None else f"forced{split_edge}"
        message = ContinuationMessage.from_continuation(continuation, pse_id)
        elided = (
            pse is not None and pse.noop_resume and not message.variables
        )
        if profiling is not None:
            if elided:
                profiling.record_local_completion()
            else:
                # Pair this message's modulator cycles with the
                # demodulator's (FIFO) so total per-message work is known.
                profiling.record_mod_total(meter.cycles)
        if span is not None:
            self._finish_span(
                span,
                observations,
                traced_edges,
                meter,
                "elided" if elided else "split",
                pse_id=str(pse_id),
                edge=split_edge,
            )
        return ModulatorResult(
            completed=False,
            message=None if elided else message,
            edge=split_edge,
            cycles=meter.cycles,
            elided=elided,
            span=span,
        )

    def _finish_span(
        self,
        span,
        observations,
        traced_edges,
        meter: CycleMeter,
        outcome: str,
        *,
        pse_id: Optional[str] = None,
        edge: Optional[Edge] = None,
    ) -> None:
        edges = (
            [o[0] for o in observations]
            if traced_edges is None
            else traced_edges
        )
        attrs: Dict[str, object] = {
            "pses": [self._pse_id_str(e) for e in edges],
            "cycles": meter.cycles,
            "outcome": outcome,
        }
        if pse_id is not None:
            attrs["pse"] = pse_id
            attrs["edge"] = list(edge)
        span.attrs = attrs
        self.obs.tracing.end(span)


class Demodulator:
    """The receiver-side half of a partitioned handler.

    Observes every PSE edge downstream of the resume point, recording the
    residual work after each edge and (flag-gated) INTER-set sizes — the
    demodulator half of two-sided profiling.
    """

    def __init__(
        self,
        partitioned: "PartitionedMethod",
        *,
        profiling: Optional[ProfilingUnit] = None,
        wall_clock: bool = False,
        record_rates: bool = True,
        obs=None,
    ) -> None:
        self.partitioned = partitioned
        self.profiling = profiling
        self.wall_clock = wall_clock
        self.record_rates = record_rates
        self._interp = partitioned.interpreter
        pses = partitioned.cut.pses
        self._pse_edges = frozenset(pses)
        self._inter_names = {
            e: tuple(v.name for v in p.inter) for e, p in pses.items()
        }
        self.obs = obs

    def _measure_inter(self, edge: Edge, env: Dict[str, object]) -> float:
        """Wire size of INTER(e) from the live env (receiver side)."""
        payload = {
            name: env[name]
            for name in self._inter_names[edge]
            if name in env
        }
        return float(
            measure_size(
                payload,
                self.partitioned.serializer_registry,
                use_self_sizing=True,
            )
        )

    def process(self, message: ContinuationMessage) -> DemodulatorResult:
        """Restore the live variables, jump to the PSE, continue processing."""
        profiling = self.profiling
        obs = self.obs
        tracer = obs.tracing if obs is not None else None
        span = None
        traced_edges: Optional[list] = None
        if tracer is not None and message.trace is not None:
            span = tracer.begin(
                "demodulate",
                trace_id=message.trace[0],
                parent_id=message.trace[1],
            )
        meter = CycleMeter()
        observations: list = []
        observer = None
        if profiling is not None:

            def observer(edge: Edge, env: Dict[str, object]) -> None:
                size: Optional[float] = None
                if profiling.should_measure(edge):
                    size = self._measure_inter(edge, env)
                observations.append((edge, meter.cycles, size))

        elif span is not None:
            traced_edges = []

            def observer(edge: Edge, env: Dict[str, object]) -> None:
                traced_edges.append(edge)

        started = time.perf_counter() if self.wall_clock else 0.0
        outcome = self._interp.resume(
            self.partitioned.function,
            message.to_continuation(),
            edge_observer=observer,
            observe_edges=self._pse_edges,
            meter=meter,
        )
        elapsed = (
            time.perf_counter() - started if self.wall_clock else meter.cycles
        )
        if not outcome.returned:
            raise PartitionError(
                f"{self.partitioned.function.name}: demodulator split again "
                f"at {outcome.continuation.edge}; nested partitioning is not "
                f"supported (paper section 7)"
            )
        if profiling is not None:
            total = meter.cycles
            for edge, work_at_edge, size in observations:
                profiling.record_edge_observation(
                    edge, data_size=size, work_after=total - work_at_edge
                )
            # The resume edge itself: everything this side did is its
            # residual.  Do not re-count the traversal — the modulator
            # already counted it when it split here.
            profiling.record_edge_observation(
                message.edge, work_after=total, count_traversal=False
            )
            profiling.record_demod_total(total)
            if self.record_rates:
                profiling.record_receiver_rate(elapsed, total)
        if span is not None:
            pses = self.partitioned.cut.pses
            edges = (
                [o[0] for o in observations]
                if traced_edges is None
                else traced_edges
            )
            span.attrs = {
                "pse": str(message.pse_id),
                "edge": list(message.edge),
                "pses": [
                    str(pses[e].pse_id) if e in pses else str(e)
                    for e in edges
                ],
                "cycles": meter.cycles,
            }
            tracer.end(span)
        return DemodulatorResult(
            value=outcome.value,
            edge=message.edge,
            cycles=meter.cycles,
            span=span,
        )


@dataclass
class PartitionedMethod:
    """A handler after static analysis: PSEs plus runtime factories."""

    function: IRFunction
    cut: ConvexCutResult
    registry: FunctionRegistry
    serializer_registry: SerializerRegistry
    interpreter: Interpreter
    codec: ContinuationCodec

    @property
    def pses(self) -> Dict[Edge, PSE]:
        return self.cut.pses

    def make_profiling_unit(
        self,
        *,
        ewma_alpha: float = 0.3,
        sample_period: int = 1,
        obs=None,
    ) -> ProfilingUnit:
        return ProfilingUnit(
            self.cut,
            ewma_alpha=ewma_alpha,
            sample_period=sample_period,
            obs=obs,
        )

    def make_modulator(
        self,
        *,
        plan: Optional[PartitioningPlan] = None,
        profiling: Optional[ProfilingUnit] = None,
        wall_clock: bool = False,
        record_rates: bool = True,
        obs=None,
    ) -> Modulator:
        return Modulator(
            self,
            plan=plan,
            profiling=profiling,
            wall_clock=wall_clock,
            record_rates=record_rates,
            obs=obs,
        )

    def make_demodulator(
        self,
        *,
        profiling: Optional[ProfilingUnit] = None,
        wall_clock: bool = False,
        record_rates: bool = True,
        obs=None,
    ) -> Demodulator:
        return Demodulator(
            self,
            profiling=profiling,
            wall_clock=wall_clock,
            record_rates=record_rates,
            obs=obs,
        )

    def make_reconfiguration_unit(
        self,
        *,
        trigger: Optional[FeedbackTrigger] = None,
        location: str = "receiver",
        obs=None,
        quality=None,
    ) -> ReconfigurationUnit:
        return ReconfigurationUnit(
            self.cut,
            trigger=trigger,
            location=location,
            obs=obs,
            quality=quality,
        )

    def make_quality(self, obs):
        """Build the adaptation-quality layer when *obs* opted in.

        Returns an :class:`~repro.obs.quality.AdaptationQuality` bound
        to this handler's cut when ``obs.quality_config`` is set, else
        None — so harnesses can write ``quality=partitioned.make_quality(obs)``
        and stay zero-cost by default.
        """
        config = getattr(obs, "quality_config", None) if obs else None
        if config is None:
            return None
        from repro.obs.quality import AdaptationQuality

        quality = AdaptationQuality(self.cut, config, obs)
        obs.quality = quality
        return quality

    def run_reference(self, *args: object) -> Outcome:
        """Execute the whole handler locally, without any partitioning.

        Used by the test suite to check the semantic-equivalence invariant:
        modulator + demodulator must compute exactly what the original
        handler computes.
        """
        return self.interpreter.run(self.function, args)

    def describe(self) -> str:
        return self.cut.describe()
