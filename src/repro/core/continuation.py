"""Remote Continuation messages (paper section 2.4).

When an active PSE fires, the modulator packs the live variables of the
edge (the INTER set) plus the PSE's unique ID into a *continuation
message* and hands it to the runtime system for delivery.  The demodulator
restores the variables, jumps to the PSE, and continues processing.

:class:`ContinuationMessage` is the wire object;
:class:`ContinuationCodec` binds it to the custom serializer so its size
can both be measured (profiling) and paid (simulated network).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ContinuationError
from repro.ir.interpreter import Continuation, Edge
from repro.serialization import Serializer, SerializerRegistry, measure_size


@dataclass
class ContinuationMessage:
    """A serializable remote continuation.

    ``pse_id`` is the paper's "special ID for the PSE"; ``edge`` is its
    resolved (out, in) instruction pair; ``variables`` is the restored
    environment for the demodulator.
    """

    function: str
    pse_id: str
    edge: Edge
    variables: Dict[str, object]

    @classmethod
    def from_continuation(
        cls, continuation: Continuation, pse_id: str
    ) -> "ContinuationMessage":
        return cls(
            function=continuation.function,
            pse_id=pse_id,
            edge=continuation.edge,
            variables=dict(continuation.variables),
        )

    def to_continuation(self) -> Continuation:
        return Continuation(
            function=self.function,
            edge=self.edge,
            variables=dict(self.variables),
        )


class ContinuationCodec:
    """Wire encoding of continuation messages via the custom serializer."""

    def __init__(self, registry: Optional[SerializerRegistry] = None) -> None:
        self.registry = registry or SerializerRegistry()
        self._serializer = Serializer(self.registry)

    def encode(self, message: ContinuationMessage) -> bytes:
        payload = (
            message.function,
            message.pse_id,
            message.edge[0],
            message.edge[1],
            message.variables,
        )
        return self._serializer.serialize(payload)

    def decode(self, data: bytes) -> ContinuationMessage:
        payload = self._serializer.deserialize(data)
        if not (isinstance(payload, tuple) and len(payload) == 5):
            raise ContinuationError("malformed continuation message")
        function, pse_id, out_node, in_node, variables = payload
        return ContinuationMessage(
            function=function,
            pse_id=pse_id,
            edge=(out_node, in_node),
            variables=variables,
        )

    def size(self, message: ContinuationMessage) -> int:
        """Wire size without serializing (the profiling fast path)."""
        payload = (
            message.function,
            message.pse_id,
            message.edge[0],
            message.edge[1],
            message.variables,
        )
        return measure_size(payload, self.registry, use_self_sizing=True)

    def payload_size(self, message: ContinuationMessage) -> int:
        """Wire size of the variables alone (the cost-model quantity)."""
        return measure_size(
            message.variables, self.registry, use_self_sizing=True
        )
