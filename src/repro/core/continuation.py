"""Remote Continuation messages (paper section 2.4).

When an active PSE fires, the modulator packs the live variables of the
edge (the INTER set) plus the PSE's unique ID into a *continuation
message* and hands it to the runtime system for delivery.  The demodulator
restores the variables, jumps to the PSE, and continues processing.

:class:`ContinuationMessage` is the wire object;
:class:`ContinuationCodec` binds it to the custom serializer so its size
can both be measured (profiling) and paid (simulated network).

Wire format: a message without trace context encodes as the original
bare 5-tuple ``(function, pse_id, out, in, variables)`` — byte-identical
to pre-tracing builds, so turning tracing off costs nothing on the wire.
With trace context the payload grows a versioned header::

    ("mp-cont", version, function, pse_id, out, in, variables,
     trace_id, parent_span_id)

Decoders accept both shapes; a headered payload with an unknown version
raises :class:`~repro.errors.SerializationError` (the peers disagree
about the protocol, which must not be silently mis-parsed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ContinuationError, SerializationError
from repro.ir.interpreter import Continuation, Edge
from repro.serialization import Serializer, SerializerRegistry, measure_size

#: header magic marking a versioned continuation payload
WIRE_MAGIC = "mp-cont"
#: current wire version (v1 was the headerless bare 5-tuple)
WIRE_VERSION = 2


@dataclass
class ContinuationMessage:
    """A serializable remote continuation.

    ``pse_id`` is the paper's "special ID for the PSE"; ``edge`` is its
    resolved (out, in) instruction pair; ``variables`` is the restored
    environment for the demodulator; ``trace`` is the optional causal
    trace context ``(trace_id, parent_span_id)`` carried across hosts.
    """

    function: str
    pse_id: str
    edge: Edge
    variables: Dict[str, object]
    trace: Optional[Tuple[int, int]] = None

    @classmethod
    def from_continuation(
        cls, continuation: Continuation, pse_id: str
    ) -> "ContinuationMessage":
        return cls(
            function=continuation.function,
            pse_id=pse_id,
            edge=continuation.edge,
            variables=dict(continuation.variables),
            trace=continuation.trace,
        )

    def to_continuation(self) -> Continuation:
        return Continuation(
            function=self.function,
            edge=self.edge,
            variables=dict(self.variables),
            trace=self.trace,
        )


def wire_payload(message: ContinuationMessage) -> tuple:
    """The serializable wire tuple for *message* (v1 bare / v2 headered).

    Shared by :class:`ContinuationCodec` (simulated links) and the
    network framing codec (:mod:`repro.net.framing`), so continuations
    are byte-compatible no matter which transport carries them.
    """
    if message.trace is None:
        return (
            message.function,
            message.pse_id,
            message.edge[0],
            message.edge[1],
            message.variables,
        )
    return (
        WIRE_MAGIC,
        WIRE_VERSION,
        message.function,
        message.pse_id,
        message.edge[0],
        message.edge[1],
        message.variables,
        message.trace[0],
        message.trace[1],
    )


def message_from_wire(payload: object) -> ContinuationMessage:
    """Rebuild a :class:`ContinuationMessage` from a decoded wire tuple.

    Accepts the bare 5-tuple (wire version 1) and the headered v2 shape;
    a headered payload with an unknown version raises
    :class:`~repro.errors.SerializationError`.
    """
    if not isinstance(payload, tuple):
        raise ContinuationError("malformed continuation message")
    if payload and payload[0] == WIRE_MAGIC:
        if len(payload) < 2 or payload[1] != WIRE_VERSION:
            version = payload[1] if len(payload) >= 2 else "<missing>"
            raise SerializationError(
                f"continuation wire version {version!r} not supported "
                f"(this build speaks version {WIRE_VERSION})"
            )
        if len(payload) != 9:
            raise ContinuationError("malformed continuation message")
        (
            _magic,
            _version,
            function,
            pse_id,
            out_node,
            in_node,
            variables,
            trace_id,
            parent_span,
        ) = payload
        return ContinuationMessage(
            function=function,
            pse_id=pse_id,
            edge=(out_node, in_node),
            variables=variables,
            trace=(trace_id, parent_span),
        )
    # headerless legacy payload (wire version 1)
    if len(payload) != 5:
        raise ContinuationError("malformed continuation message")
    function, pse_id, out_node, in_node, variables = payload
    return ContinuationMessage(
        function=function,
        pse_id=pse_id,
        edge=(out_node, in_node),
        variables=variables,
    )


class ContinuationCodec:
    """Wire encoding of continuation messages via the custom serializer."""

    def __init__(self, registry: Optional[SerializerRegistry] = None) -> None:
        self.registry = registry or SerializerRegistry()
        self._serializer = Serializer(self.registry)

    @staticmethod
    def _payload(message: ContinuationMessage) -> tuple:
        return wire_payload(message)

    def encode(self, message: ContinuationMessage) -> bytes:
        return self._serializer.serialize(self._payload(message))

    def decode(self, data: bytes) -> ContinuationMessage:
        return message_from_wire(self._serializer.deserialize(data))

    def size(self, message: ContinuationMessage) -> int:
        """Wire size without serializing (the profiling fast path)."""
        return measure_size(
            self._payload(message), self.registry, use_self_sizing=True
        )

    def payload_size(self, message: ContinuationMessage) -> int:
        """Wire size of the variables alone (the cost-model quantity)."""
        return measure_size(
            message.variables, self.registry, use_self_sizing=True
        )
