"""Diagnostics over a ConvexCut result: PSE ordering and plan rendering.

These are operator-facing views used by the CLI tools and the examples:

* :func:`pse_ordering` — which PSEs are strictly ordered on every
  execution (via post-dominance), so multi-flag plans can be reasoned
  about ("if both flags are set, the earlier edge always wins");
* :func:`render_partition` — the paper's Figure 1/6 view: the handler
  listing with StartNode/StopNodes and candidate/active split edges
  marked.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.postdominators import compute_postdominators
from repro.core.convexcut import ConvexCutResult
from repro.core.plan import PartitioningPlan
from repro.ir.interpreter import Edge
from repro.ir.printer import format_unit_graph


def pse_ordering(cut: ConvexCutResult) -> Tuple[Tuple[Edge, Edge], ...]:
    """Pairs (earlier, later) of PSEs strictly ordered on every execution.

    ``(a, b)`` means: every execution that crosses ``a`` would, absent a
    split, also cross ``b`` (b's in-node post-dominates a's in-node), and
    ``a`` comes first.  With both flags set, ``a`` always fires.
    """
    pdom = compute_postdominators(cut.ctx.graph)
    edges = sorted(cut.pses)
    pairs: List[Tuple[Edge, Edge]] = []
    for a in edges:
        for b in edges:
            if a == b:
                continue
            # b's entry post-dominates a's entry, and a can reach b
            if pdom.post_dominates(b[1], a[1]) and cut.ctx.graph.reaches(
                a[1], b[0]
            ):
                pairs.append((a, b))
    return tuple(pairs)


def render_partition(
    cut: ConvexCutResult, plan: Optional[PartitioningPlan] = None
) -> str:
    """ASCII view of the handler with split candidates and the active plan."""
    active = frozenset(plan.active) if plan is not None else frozenset()
    return format_unit_graph(
        cut.ctx.function,
        stop_nodes=cut.ctx.stops.nodes,
        pse_edges=cut.pse_edges,
        active_edges=active | (cut.terminal_edges() & active),
        start_node=cut.ctx.graph.start_node,
    )


def convexity_gap(
    cut: ConvexCutResult, snapshot: Optional[dict] = None
) -> Tuple[float, float]:
    """Quantify the cost of the convexity restriction (paper section 7).

    "Partitioning currently allows only convex cuts of the UG, thus
    potentially excluding better partitioning plans."  Returns
    ``(convex_value, relaxed_value)``: the min-cut value under the real
    rules vs the same selection with *only the poisoning step disabled* —
    loop-body PSE candidates become cuttable, everything else is
    unchanged.  A relaxed plan could not actually execute (data would flow
    demodulator → modulator), so the gap is a hypothetical upper bound on
    what the paper's future-work non-convex plans could save.

    Edge weights are profiled where *snapshot* has data, static lower
    bounds otherwise — the same weighting the Reconfiguration Unit uses.
    """
    from repro.core.convexcut import convex_cut as _convex_cut
    from repro.core.runtime.maxflow import INF, FlowNetwork

    relaxed = _convex_cut(
        cut.ctx, cut.cost_model, enforce_convexity=False
    )

    def solve(which: ConvexCutResult) -> float:
        ctx = which.ctx
        net = FlowNetwork()
        for edge in ctx.graph.edges():
            if edge in which.pses and edge not in which.poisoned:
                if snapshot is not None and edge in snapshot:
                    weight = max(
                        which.cost_model.runtime_edge_cost(snapshot[edge]),
                        1e-9,
                    )
                else:
                    weight = max(
                        which.pses[edge].static_cost.lower_bound, 1e-9
                    )
                net.add_edge(edge[0], edge[1], weight)
            else:
                net.add_edge(edge[0], edge[1], INF)
        sink = "$sink"
        for node in ctx.stops.nodes:
            net.add_edge(node, sink, INF)
        if not net.has_node(ctx.graph.start_node) or not net.has_node(sink):
            return 0.0
        value, _cut_edges, _side = net.min_cut(ctx.graph.start_node, sink)
        return value

    return solve(cut), solve(relaxed)


def describe_plan(cut: ConvexCutResult, plan: PartitioningPlan) -> str:
    """One line per activated PSE: id, edge, hand-over set."""
    lines = [f"plan {plan.name or '(unnamed)'}:"]
    if not plan.active:
        lines.append(
            "  (no optional flags set: splits happen at the forced "
            "terminal edges)"
        )
    for edge in sorted(plan.active):
        pse = cut.pses.get(edge)
        if pse is None:
            lines.append(f"  Edge{edge}: NOT A PSE (invalid)")
            continue
        inter = ", ".join(sorted(v.name for v in pse.inter)) or "∅"
        lines.append(f"  {pse.pse_id}: Edge{edge} ships {{{inter}}}")
    return "\n".join(lines)
