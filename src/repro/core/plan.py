"""Partitioning plans and their runtime flag representation.

An *actual partitioning* at an instant is the set of PSEs whose split flags
are set (paper section 2.1).  :class:`PartitioningPlan` is the immutable
description (what the Reconfiguration Unit computes and ships);
:class:`PlanRuntime` is the live flag table inside the modulator — applying
a plan "is as efficient as changing flag values".

Edges entering StopNodes are *forced* split points independent of flags:
if execution reaches a StopNode without an earlier PSE firing, the
modulator must hand over there, because StopNodes can only run at the
receiver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.core.convexcut import ConvexCutResult, PSE
from repro.errors import InvalidPlanError
from repro.ir.interpreter import Edge, SplitHook
from repro.ir.values import Var


@dataclass(frozen=True)
class PartitioningPlan:
    """An immutable set of activated PSE edges."""

    active: FrozenSet[Edge]
    name: str = ""

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Plan{label} active={sorted(self.active)}>"


def receiver_heavy_plan(cut: ConvexCutResult) -> PartitioningPlan:
    """Split as early as possible: ~all processing at the receiver.

    Activates, for each TargetPath, its earliest non-poisoned PSE.
    """
    active = set()
    for path, edges in cut.path_pse_edges:
        order = {e: i for i, e in enumerate(path.edges)}
        candidates = sorted(edges, key=lambda e: order.get(e, 1 << 30))
        if candidates:
            active.add(candidates[0])
    return PartitioningPlan(active=frozenset(active), name="receiver-heavy")


def sender_heavy_plan(cut: ConvexCutResult) -> PartitioningPlan:
    """Split as late as possible: ~all processing at the sender.

    Activates no optional PSEs at all — the forced terminal edges alone
    carry the hand-over right before each StopNode.
    """
    return PartitioningPlan(active=frozenset(), name="sender-heavy")


def static_optimal_plan(cut: ConvexCutResult) -> PartitioningPlan:
    """Activate, per path, the PSE with the lowest *static* cost.

    Non-determinable costs compare by lower bound; this is the best plan
    knowable before any profiling and is the deployment-time default.
    """
    active = set()
    for path, edges in cut.path_pse_edges:
        if not edges:
            continue
        best = min(
            edges,
            key=lambda e: (
                cut.pses[e].static_cost.lower_bound
                if e in cut.pses
                else float("inf")
            ),
        )
        active.add(best)
    return PartitioningPlan(active=frozenset(active), name="static-optimal")


def union_plan(
    plans: Iterable[PartitioningPlan], name: str = "union"
) -> PartitioningPlan:
    """The *deepest common split* plan for a fan-out of subscribers.

    A modulator serving N peers, each on its own plan, can share one
    run per message only up to the earliest split any peer wants: under
    the union of all active edge sets the interpreter stops at the
    first edge that is active for *any* peer — exactly the deepest
    point to which every peer's sender-side work agrees.  Peers whose
    own plan splits there ship the shared continuation as-is; peers
    wanting a deeper split resume (fork) from it under their own flag
    table.  The union of valid plans is valid: activating more known,
    non-poisoned PSE edges cannot introduce an unknown or poisoned one.
    """
    active: FrozenSet[Edge] = frozenset()
    for plan in plans:
        active = active | plan.active
    return PartitioningPlan(active=active, name=name)


def validate_plan(cut: ConvexCutResult, plan: PartitioningPlan) -> None:
    """Raise :class:`InvalidPlanError` unless *plan* is usable with *cut*.

    Checks: every activated edge is a known PSE; none is poisoned.  (Path
    coverage is not required — forced terminal edges guarantee a split on
    every execution.)
    """
    unknown = plan.active - cut.pse_edges
    if unknown:
        raise InvalidPlanError(
            f"plan activates non-PSE edges: {sorted(unknown)}"
        )
    bad = plan.active & cut.poisoned
    if bad:
        raise InvalidPlanError(
            f"plan activates convexity-poisoned edges: {sorted(bad)}"
        )


class PlanRuntime(SplitHook):
    """The modulator's live flag table; a :class:`SplitHook` for the
    interpreter.

    ``switch_count`` tracks plan applications so experiments can report
    adaptation-actuation counts; each application is O(#PSE) flag writes.
    """

    def __init__(self, cut: ConvexCutResult) -> None:
        self._cut = cut
        self._flags: Dict[Edge, bool] = {e: False for e in cut.pses}
        self._forced: FrozenSet[Edge] = cut.terminal_edges()
        self._inter: Dict[Edge, FrozenSet[Var]] = {
            e: p.inter for e, p in cut.pses.items()
        }
        # Compiled-backend fast path: the current split set as one frozenset
        # (O(1) membership in the hot loop) and per-edge capture specs as
        # name tuples.  Tuple order follows each INTER frozenset's own
        # iteration order so both backends build identical capture dicts.
        self._split_set: FrozenSet[Edge] = self._forced
        self._capture_specs: Dict[Edge, Tuple[str, ...]] = {
            e: tuple(v.name for v in inter)
            for e, inter in self._inter.items()
        }
        self.switch_count = 0
        self.current_plan: Optional[PartitioningPlan] = None

    # -- SplitHook interface -------------------------------------------------

    def should_split(self, edge: Edge) -> bool:
        return self._flags.get(edge, False) or edge in self._forced

    def live_vars(self, edge: Edge) -> FrozenSet[Var]:
        inter = self._inter.get(edge)
        if inter is not None:
            return inter
        # A forced edge that ConvexCut did not cost (possible only for
        # poisoned stop entries) still needs a hand-over set.
        return self._cut.ctx.inter(edge)

    def split_edge_set(self) -> FrozenSet[Edge]:
        return self._split_set

    def capture_specs(self) -> Dict[Edge, Tuple[str, ...]]:
        return self._capture_specs

    # -- plan application -------------------------------------------------------

    def apply_plan(self, plan: PartitioningPlan) -> None:
        validate_plan(self._cut, plan)
        for edge in self._flags:
            self._flags[edge] = edge in plan.active
        self._split_set = plan.active | self._forced
        self.current_plan = plan
        self.switch_count += 1

    def active_edges(self) -> FrozenSet[Edge]:
        return frozenset(e for e, on in self._flags.items() if on)

    def forced_edges(self) -> FrozenSet[Edge]:
        return self._forced
