"""Runtime Reconfiguration Unit (paper section 2.5).

Collects profiling feedback from the modulator and demodulator sides,
converts profiled PSE statistics into min-cut edge weights via the cost
model, and re-selects the optimal partitioning by solving a max-flow /
min-cut problem over the Unit Graph:

* the flow source is the handler's StartNode;
* every StopNode connects to a virtual sink with infinite capacity;
* PSE edges carry their runtime costs as capacities;
* every other edge (including convexity-poisoned PSE candidates) is
  uncuttable (infinite capacity).

The min cut is then exactly the cheapest valid convex partition, and its
edge set becomes the new plan's active flags.

The unit's *location* is variable — modulator side, demodulator side, or a
third party (paper: appropriate "when repartitioning requires large
amounts of computation").  The location only affects where the computation
runs (and, under simulation, which host pays its cycles); the algorithm is
identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.convexcut import ConvexCutResult
from repro.core.costmodels.base import CostModel
from repro.core.plan import PartitioningPlan
from repro.core.runtime.maxflow import INF, FlowNetwork
from repro.core.runtime.plancost import explain_edge_costs
from repro.core.runtime.profiling import ProfilingUnit, PSEStats
from repro.core.runtime.triggers import FeedbackTrigger, RateTrigger
from repro.ir.interpreter import Edge
from repro.obs.trace import PlanRecomputed, TriggerFired

#: Minimum capacity assigned to a PSE so the min cut stays well defined
#: even when a profiled cost is zero.
_EPSILON = 1e-9

_SINK = "$sink"


@dataclass
class ReconfigurationRecord:
    """One reconfiguration event, for experiment logs."""

    at_message: int
    plan: PartitioningPlan
    cut_value: float


class ReconfigurationUnit:
    """Selects partitioning plans from profiled costs."""

    def __init__(
        self,
        cut: ConvexCutResult,
        *,
        trigger: Optional[FeedbackTrigger] = None,
        location: str = "receiver",
        obs=None,
        quality=None,
    ) -> None:
        if location not in ("sender", "receiver", "third-party"):
            raise ValueError(
                "location must be 'sender', 'receiver' or 'third-party'"
            )
        self.cut = cut
        self.cost_model: CostModel = cut.cost_model
        self.trigger = trigger or RateTrigger()
        self.location = location
        #: optional AdaptationQuality — told about each recompute so the
        #: drift detector can re-baseline the model's predictions
        self.quality = quality
        self.history: list = []
        #: trace context ``(trace_id, span_id)`` of the last recompute's
        #: "plan.recompute" span — the parent for plan-update shipping
        self.last_trace_ctx: Optional[Tuple[int, int]] = None
        self.obs = obs
        if obs is not None:
            self._c_fires = obs.metrics.counter("reconfig.trigger_fires")
            self._c_recomputes = obs.metrics.counter("reconfig.recomputes")
        else:
            self._c_fires = None
            self._c_recomputes = None

    # -- plan selection ---------------------------------------------------------

    def select_plan(
        self, stats: Dict[Edge, PSEStats]
    ) -> Tuple[PartitioningPlan, float]:
        """Solve min-cut over the PSE graph under profiled costs."""
        graph = self.cut.ctx.graph
        start = graph.start_node
        network = FlowNetwork()
        pse_edges = self.cut.pse_edges
        poisoned = self.cut.poisoned
        stop_nodes = self.cut.ctx.stops.nodes

        for edge in graph.edges():
            if edge in pse_edges and edge not in poisoned:
                stat = stats.get(edge)
                if stat is not None:
                    weight = self.cost_model.runtime_edge_cost(stat)
                else:
                    pse = self.cut.pses[edge]
                    weight = pse.static_cost.lower_bound
                network.add_edge(edge[0], edge[1], max(weight, _EPSILON))
            else:
                network.add_edge(edge[0], edge[1], INF)
        for node in stop_nodes:
            network.add_edge(node, _SINK, INF)

        if not network.has_node(start) or not network.has_node(_SINK):
            return PartitioningPlan(active=frozenset(), name="min-cut"), 0.0

        value, cut_keys, _source_side = network.min_cut(start, _SINK)
        active = frozenset(
            key for key in cut_keys if key in pse_edges
        )
        return PartitioningPlan(active=active, name="min-cut"), value

    # -- the feedback loop ----------------------------------------------------------

    def consider(
        self, profiling: ProfilingUnit
    ) -> Optional[PartitioningPlan]:
        """Run the trigger; when it fires, recompute and return a new plan.

        Returns None when the trigger stays quiet — the common, zero-cost
        case ("adaptations simply involve changes to a few flag values",
        and most messages involve not even that).
        """
        if not self.trigger.should_fire(profiling):
            return None
        obs = self.obs
        tracer = obs.tracing if obs is not None else None
        trigger_span = None
        if obs is not None:
            self._c_fires.inc()
            obs.trace.record(
                TriggerFired(
                    at_message=profiling.messages_seen,
                    trigger=type(self.trigger).__name__,
                    reason=getattr(self.trigger, "last_reason", None),
                )
            )
        if tracer is not None:
            # Control-plane traces bypass sampling: a reconfiguration is
            # rare and always worth explaining.
            trace_id = tracer.start_trace(force=True)
            trigger_span = tracer.begin(
                "trigger",
                trace_id=trace_id,
                attrs={
                    "trigger": type(self.trigger).__name__,
                    "at_message": profiling.messages_seen,
                    "reason": getattr(self.trigger, "last_reason", None),
                },
            )
        self.trigger.fired(profiling)
        snapshot = profiling.snapshot()
        if tracer is not None:
            recompute_span = tracer.begin(
                "plan.recompute",
                trace_id=trigger_span.trace_id,
                parent_id=trigger_span.span_id,
            )
        plan, value = self.select_plan(snapshot)
        if tracer is not None:
            recompute_span.attrs = {
                "cut_value": value,
                "pses": list(self._pse_ids(plan.active)),
            }
            tracer.end(recompute_span)
            tracer.end(trigger_span)
            self.last_trace_ctx = (
                recompute_span.trace_id,
                recompute_span.span_id,
            )
        if obs is not None:
            self._c_recomputes.inc()
            obs.trace.record(
                PlanRecomputed(
                    at_message=profiling.messages_seen,
                    cut_value=value,
                    pse_ids=self._pse_ids(plan.active),
                    breakdown=tuple(
                        explain_edge_costs(self.cut, snapshot, plan.active)
                    ),
                )
            )
        if self.quality is not None:
            self.quality.on_plan_recomputed(
                profiling.messages_seen, plan, snapshot
            )
        self.history.append(
            ReconfigurationRecord(
                at_message=profiling.messages_seen,
                plan=plan,
                cut_value=value,
            )
        )
        return plan

    def _pse_ids(self, edges) -> Tuple[str, ...]:
        return tuple(
            sorted(
                str(self.cut.pses[e].pse_id) if e in self.cut.pses else str(e)
                for e in edges
            )
        )

    @property
    def reconfiguration_count(self) -> int:
        return len(self.history)
