"""Path-sensitive plan costing and exhaustive plan selection.

Paper section 2.3: "Profiling code can also be used to collect statistical
data about actual execution paths for path-sensitive optimization."  The
Profiling Unit already tracks per-PSE traversal probabilities; this module
turns them into *plan*-level expected costs:

* :func:`first_split_on_path` — which PSE a plan fires on a given
  TargetPath (the first activated-or-forced edge along it);
* :func:`expected_plan_cost` — the probability-weighted per-message cost
  of a plan: Σ over paths of P(path) × cost(split edge on that path);
* :func:`enumerate_plans` — the full valid plan space for small handlers
  (one activated candidate per TargetPath, or none → the forced terminal);
* :func:`exhaustive_best_plan` — brute-force argmin over that space.

The min-cut selector (:class:`ReconfigurationUnit`) is the scalable
mechanism; the exhaustive selector exists to *validate* it — the test
suite checks the two agree on the paper's handlers — and to power the
plan-selection ablation.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.paths import TargetPath
from repro.core.convexcut import ConvexCutResult
from repro.core.costmodels.base import CostModel
from repro.core.plan import PartitioningPlan
from repro.core.runtime.profiling import PSESnapshot
from repro.errors import PartitionError
from repro.ir.interpreter import Edge


def candidate_edge_costs(
    cut: ConvexCutResult,
    stats: Dict[Edge, PSESnapshot],
) -> Dict[Edge, Tuple[float, str]]:
    """Price every non-poisoned candidate PSE as plan selection does.

    Returns ``{edge: (cost, source)}`` where ``source`` is ``"profiled"``
    when a snapshot priced the edge via the cost model's runtime costing
    and ``"static"`` when it fell back to the static lower bound — the
    exact pricing rule :meth:`ReconfigurationUnit.select_plan` applies to
    min-cut capacities.  Shared by :func:`explain_edge_costs` and the
    counterfactual regret accounting in :mod:`repro.obs.quality`, so
    hindsight judgments use the same prices the decision did.
    """
    costs: Dict[Edge, Tuple[float, str]] = {}
    for edge, pse in cut.pses.items():
        if edge in cut.poisoned:
            continue
        snap = stats.get(edge)
        if snap is not None:
            costs[edge] = (cut.cost_model.runtime_edge_cost(snap), "profiled")
        else:
            costs[edge] = (pse.static_cost.lower_bound, "static")
    return costs


def counterfactual_edge_costs(
    cut: ConvexCutResult,
    stats: Dict[Edge, PSESnapshot],
    edge: Edge,
) -> Dict[Edge, Tuple[float, str]]:
    """Price every split that could have replaced a split at *edge*.

    The counterfactual for one message is path-local: only candidates on
    the path the message traversed could have carried its split, and the
    message definitely traversed them, so prices are the cost model's
    *raw* (probability-unweighted) per-execution costs — the same pricing
    :func:`expected_plan_cost` applies per path.  Since only the split
    edge is known, candidates are the intersection of the candidate sets
    of every TargetPath containing it: each is on the message's path no
    matter which of those paths it took.  On a single-chain handler that
    intersection is the whole candidate set and the min-cut argmin, so
    the regret of the active plan's split collapses to ~0 (see
    :class:`repro.obs.quality.RegretAccounting`).

    Returns ``{candidate: (cost, source)}`` with ``source`` ``"profiled"``
    or ``"static"`` as in :func:`candidate_edge_costs`; empty when *edge*
    is poisoned or unknown.
    """
    allowed: Optional[frozenset] = None
    for _path, edges in cut.path_pse_edges:
        if edge in edges:
            candidates = frozenset(
                e for e in edges if e not in cut.poisoned
            )
            allowed = (
                candidates if allowed is None else allowed & candidates
            )
    if allowed is None:
        allowed = (
            frozenset((edge,))
            if edge in cut.pses and edge not in cut.poisoned
            else frozenset()
        )
    model = cut.cost_model
    costs: Dict[Edge, Tuple[float, str]] = {}
    for candidate in allowed:
        snap = stats.get(candidate)
        if snap is not None:
            costs[candidate] = (
                model.runtime_edge_cost_raw(snap), "profiled"
            )
        else:
            costs[candidate] = (
                cut.pses[candidate].static_cost.lower_bound, "static"
            )
    return costs


def explain_edge_costs(
    cut: ConvexCutResult,
    stats: Dict[Edge, PSESnapshot],
    active: Iterable[Edge] = frozenset(),
) -> List[Dict[str, object]]:
    """Per-candidate-PSE cost table behind one plan decision.

    One row per non-poisoned PSE, sorted cheapest-first, mirroring
    exactly how :meth:`ReconfigurationUnit.select_plan` priced the edge:
    the cost model's runtime costing when a profile snapshot exists,
    else the static lower bound.  ``chosen`` marks edges the new plan
    activated; ``profile`` carries the snapshot that moved the price so
    ``tracereport --explain`` can show which observations did it.
    """
    chosen = frozenset(active)
    priced = candidate_edge_costs(cut, stats)
    rows: List[Dict[str, object]] = []
    for edge in sorted(priced):
        cost, source = priced[edge]
        snap = stats.get(edge) if source == "profiled" else None
        rows.append(
            {
                "pse_id": str(cut.pses[edge].pse_id),
                "edge": list(edge),
                "cost": cost,
                "chosen": edge in chosen,
                "source": source,
                "profile": snap.to_dict() if snap is not None else None,
            }
        )
    rows.sort(key=lambda row: (row["cost"], row["pse_id"]))
    return rows


def first_split_on_path(
    cut: ConvexCutResult, plan: PartitioningPlan, path: TargetPath
) -> Optional[Edge]:
    """The edge where *plan* splits an execution following *path*.

    The first activated or forced (terminal) edge along the path; None
    when the path has no split at all (possible only for paths ending in
    dead ends rather than StopNodes, e.g. loop-truncated paths).
    """
    forced = cut.terminal_edges()
    for edge in path.edges:
        if edge in plan.active or edge in forced:
            return edge
    return None


def _path_probabilities(
    cut: ConvexCutResult, snapshot: Dict[Edge, PSESnapshot]
) -> List[float]:
    """Empirical probability of each TargetPath from edge traversals.

    A path's probability is estimated from its most distinctive edge: the
    minimum traversal probability over its edges that are PSEs (distinct
    paths differ in at least their terminal PSE).  Falls back to uniform
    when nothing was profiled.
    """
    probs: List[float] = []
    for path in cut.ctx.paths:
        pse_edges = [e for e in path.edges if e in cut.pses]
        estimates = [
            snapshot[e].path_probability
            for e in pse_edges
            if e in snapshot and snapshot[e].path_probability > 0
        ]
        probs.append(min(estimates) if estimates else 0.0)
    if not any(probs):
        n = max(len(probs), 1)
        return [1.0 / n] * n
    total = sum(probs)
    return [p / total for p in probs]


def expected_plan_cost(
    cut: ConvexCutResult,
    plan: PartitioningPlan,
    snapshot: Dict[Edge, PSESnapshot],
    *,
    cost_model: Optional[CostModel] = None,
) -> float:
    """Probability-weighted per-message cost of *plan*.

    For each TargetPath, the plan fires exactly one split; the path
    contributes P(path) × cost(that edge).  Edge costs come from the cost
    model's runtime costing, *un*-weighted by the edge's own traversal
    probability (the path weighting here replaces it).
    """
    model = cost_model or cut.cost_model
    probs = _path_probabilities(cut, snapshot)
    total = 0.0
    for path, p_path in zip(cut.ctx.paths, probs):
        if p_path == 0.0:
            continue
        edge = first_split_on_path(cut, plan, path)
        if edge is None:
            continue
        snap = snapshot.get(edge)
        if snap is None:
            raise PartitionError(f"no snapshot for PSE {edge}")
        # The model's raw costing is unweighted and falls back to the
        # static lower bound for never-measured edges (e.g. sampled out),
        # so a count of zero is neither priced at 0 nor inflated by 1/ε.
        total += p_path * model.runtime_edge_cost_raw(snap)
    return total


def enumerate_plans(
    cut: ConvexCutResult, *, max_plans: int = 512
) -> Tuple[PartitioningPlan, ...]:
    """Every valid plan: one activated candidate (or none) per TargetPath.

    'None' means that path splits at its forced terminal edge.  Candidate
    sets come from ConvexCut's per-path MinCostEdgeSets.  Raises when the
    combinatorial space exceeds *max_plans* — use min-cut then.
    """
    per_path: List[List[Optional[Edge]]] = []
    count = 1
    for path, edges in cut.path_pse_edges:
        choices: List[Optional[Edge]] = [None]
        choices.extend(e for e in edges if e not in cut.poisoned)
        per_path.append(choices)
        count *= len(choices)
        if count > max_plans:
            raise PartitionError(
                f"plan space exceeds {max_plans}; use min-cut selection"
            )
    plans = []
    seen = set()
    for combo in itertools.product(*per_path):
        active = frozenset(e for e in combo if e is not None)
        if active in seen:
            continue
        seen.add(active)
        plans.append(
            PartitioningPlan(active=active, name=f"enum{len(plans)}")
        )
    return tuple(plans)


def exhaustive_best_plan(
    cut: ConvexCutResult,
    snapshot: Dict[Edge, PSESnapshot],
    *,
    cost_model: Optional[CostModel] = None,
    max_plans: int = 512,
) -> Tuple[PartitioningPlan, float]:
    """Brute-force argmin of :func:`expected_plan_cost` over the plan space."""
    best: Optional[PartitioningPlan] = None
    best_cost = float("inf")
    for plan in enumerate_plans(cut, max_plans=max_plans):
        cost = expected_plan_cost(
            cut, plan, snapshot, cost_model=cost_model
        )
        if cost < best_cost:
            best, best_cost = plan, cost
    if best is None:
        raise PartitionError("empty plan space")
    return best, best_cost
