"""Path-sensitive plan costing and exhaustive plan selection.

Paper section 2.3: "Profiling code can also be used to collect statistical
data about actual execution paths for path-sensitive optimization."  The
Profiling Unit already tracks per-PSE traversal probabilities; this module
turns them into *plan*-level expected costs:

* :func:`first_split_on_path` — which PSE a plan fires on a given
  TargetPath (the first activated-or-forced edge along it);
* :func:`expected_plan_cost` — the probability-weighted per-message cost
  of a plan: Σ over paths of P(path) × cost(split edge on that path);
* :func:`enumerate_plans` — the full valid plan space for small handlers
  (one activated candidate per TargetPath, or none → the forced terminal);
* :func:`exhaustive_best_plan` — brute-force argmin over that space.

The min-cut selector (:class:`ReconfigurationUnit`) is the scalable
mechanism; the exhaustive selector exists to *validate* it — the test
suite checks the two agree on the paper's handlers — and to power the
plan-selection ablation.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.paths import TargetPath
from repro.core.convexcut import ConvexCutResult
from repro.core.costmodels.base import CostModel
from repro.core.plan import PartitioningPlan
from repro.core.runtime.profiling import PSESnapshot
from repro.errors import PartitionError
from repro.ir.interpreter import Edge


def explain_edge_costs(
    cut: ConvexCutResult,
    stats: Dict[Edge, PSESnapshot],
    active: Iterable[Edge] = frozenset(),
) -> List[Dict[str, object]]:
    """Per-candidate-PSE cost table behind one plan decision.

    One row per non-poisoned PSE, sorted cheapest-first, mirroring
    exactly how :meth:`ReconfigurationUnit.select_plan` priced the edge:
    the cost model's runtime costing when a profile snapshot exists,
    else the static lower bound.  ``chosen`` marks edges the new plan
    activated; ``profile`` carries the snapshot that moved the price so
    ``tracereport --explain`` can show which observations did it.
    """
    chosen = frozenset(active)
    rows: List[Dict[str, object]] = []
    for edge in sorted(cut.pses):
        if edge in cut.poisoned:
            continue
        pse = cut.pses[edge]
        snap = stats.get(edge)
        if snap is not None:
            cost = cut.cost_model.runtime_edge_cost(snap)
            source = "profiled"
            profile: Optional[Dict[str, object]] = snap.to_dict()
        else:
            cost = pse.static_cost.lower_bound
            source = "static"
            profile = None
        rows.append(
            {
                "pse_id": str(pse.pse_id),
                "edge": list(edge),
                "cost": cost,
                "chosen": edge in chosen,
                "source": source,
                "profile": profile,
            }
        )
    rows.sort(key=lambda row: (row["cost"], row["pse_id"]))
    return rows


def first_split_on_path(
    cut: ConvexCutResult, plan: PartitioningPlan, path: TargetPath
) -> Optional[Edge]:
    """The edge where *plan* splits an execution following *path*.

    The first activated or forced (terminal) edge along the path; None
    when the path has no split at all (possible only for paths ending in
    dead ends rather than StopNodes, e.g. loop-truncated paths).
    """
    forced = cut.terminal_edges()
    for edge in path.edges:
        if edge in plan.active or edge in forced:
            return edge
    return None


def _path_probabilities(
    cut: ConvexCutResult, snapshot: Dict[Edge, PSESnapshot]
) -> List[float]:
    """Empirical probability of each TargetPath from edge traversals.

    A path's probability is estimated from its most distinctive edge: the
    minimum traversal probability over its edges that are PSEs (distinct
    paths differ in at least their terminal PSE).  Falls back to uniform
    when nothing was profiled.
    """
    probs: List[float] = []
    for path in cut.ctx.paths:
        pse_edges = [e for e in path.edges if e in cut.pses]
        estimates = [
            snapshot[e].path_probability
            for e in pse_edges
            if e in snapshot and snapshot[e].path_probability > 0
        ]
        probs.append(min(estimates) if estimates else 0.0)
    if not any(probs):
        n = max(len(probs), 1)
        return [1.0 / n] * n
    total = sum(probs)
    return [p / total for p in probs]


def expected_plan_cost(
    cut: ConvexCutResult,
    plan: PartitioningPlan,
    snapshot: Dict[Edge, PSESnapshot],
    *,
    cost_model: Optional[CostModel] = None,
) -> float:
    """Probability-weighted per-message cost of *plan*.

    For each TargetPath, the plan fires exactly one split; the path
    contributes P(path) × cost(that edge).  Edge costs come from the cost
    model's runtime costing, *un*-weighted by the edge's own traversal
    probability (the path weighting here replaces it).
    """
    model = cost_model or cut.cost_model
    probs = _path_probabilities(cut, snapshot)
    total = 0.0
    for path, p_path in zip(cut.ctx.paths, probs):
        if p_path == 0.0:
            continue
        edge = first_split_on_path(cut, plan, path)
        if edge is None:
            continue
        snap = snapshot.get(edge)
        if snap is None:
            raise PartitionError(f"no snapshot for PSE {edge}")
        # The model's raw costing is unweighted and falls back to the
        # static lower bound for never-measured edges (e.g. sampled out),
        # so a count of zero is neither priced at 0 nor inflated by 1/ε.
        total += p_path * model.runtime_edge_cost_raw(snap)
    return total


def enumerate_plans(
    cut: ConvexCutResult, *, max_plans: int = 512
) -> Tuple[PartitioningPlan, ...]:
    """Every valid plan: one activated candidate (or none) per TargetPath.

    'None' means that path splits at its forced terminal edge.  Candidate
    sets come from ConvexCut's per-path MinCostEdgeSets.  Raises when the
    combinatorial space exceeds *max_plans* — use min-cut then.
    """
    per_path: List[List[Optional[Edge]]] = []
    count = 1
    for path, edges in cut.path_pse_edges:
        choices: List[Optional[Edge]] = [None]
        choices.extend(e for e in edges if e not in cut.poisoned)
        per_path.append(choices)
        count *= len(choices)
        if count > max_plans:
            raise PartitionError(
                f"plan space exceeds {max_plans}; use min-cut selection"
            )
    plans = []
    seen = set()
    for combo in itertools.product(*per_path):
        active = frozenset(e for e in combo if e is not None)
        if active in seen:
            continue
        seen.add(active)
        plans.append(
            PartitioningPlan(active=active, name=f"enum{len(plans)}")
        )
    return tuple(plans)


def exhaustive_best_plan(
    cut: ConvexCutResult,
    snapshot: Dict[Edge, PSESnapshot],
    *,
    cost_model: Optional[CostModel] = None,
    max_plans: int = 512,
) -> Tuple[PartitioningPlan, float]:
    """Brute-force argmin of :func:`expected_plan_cost` over the plan space."""
    best: Optional[PartitioningPlan] = None
    best_cost = float("inf")
    for plan in enumerate_plans(cut, max_plans=max_plans):
        cost = expected_plan_cost(
            cut, plan, snapshot, cost_model=cost_model
        )
        if cost < best_cost:
            best, best_cost = plan, cost
    if best is None:
        raise PartitionError("empty plan space")
    return best, best_cost
