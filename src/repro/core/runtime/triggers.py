"""Feedback triggers (paper section 2.5).

"An application can choose to send feedback only when a certain amount of
time has elapsed (rate-triggered), or when the profiling data for one of
the PSEs has changed significantly (diff-triggered)."

Triggers decide when the profiling unit's snapshot travels to the
Reconfiguration Unit; they are the knob trading adaptation agility against
monitoring traffic.

Every trigger records *why* it last fired in ``last_reason`` (a small
JSON-serializable dict) so the Reconfiguration Unit can emit a
``TriggerFired`` trace event carrying the comparison that tripped.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple, Union

from repro.core.runtime.profiling import ProfilingUnit
from repro.ir.interpreter import Edge

#: a compared quantity: (edge, stat name) for PSE stats, (None, rate name)
#: for the side rates
_Subject = Tuple[Optional[Edge], str]

#: the PSEStats fields a diff trigger watches
_STAT_NAMES = ("data_size", "work_before", "work_after")
#: the ProfilingUnit side rates a diff trigger watches
_RATE_NAMES = ("sender_rate", "receiver_rate")


class FeedbackTrigger:
    """Decides whether to send feedback after the current message."""

    #: why the last ``should_fire`` returned True (diagnostic, optional)
    last_reason: Optional[Mapping[str, object]] = None

    def should_fire(self, unit: ProfilingUnit) -> bool:
        raise NotImplementedError

    def fired(self, unit: ProfilingUnit) -> None:
        """Notification that feedback was actually sent."""


class RateTrigger(FeedbackTrigger):
    """Fire every *period* handled messages."""

    def __init__(self, period: int = 50) -> None:
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period
        self._last_fired_at = 0
        self.last_reason = None

    def should_fire(self, unit: ProfilingUnit) -> bool:
        # A rewound message counter (ProfilingUnit.reset_counters) must not
        # silence the trigger until the count catches back up.
        if unit.messages_seen < self._last_fired_at:
            self._last_fired_at = unit.messages_seen
        since = unit.messages_seen - self._last_fired_at
        if since >= self.period:
            self.last_reason = {
                "trigger": "rate",
                "messages_since_fire": since,
                "period": self.period,
            }
            return True
        return False

    def fired(self, unit: ProfilingUnit) -> None:
        self._last_fired_at = unit.messages_seen


class DiffTrigger(FeedbackTrigger):
    """Fire when any PSE's profiled cost moved by more than *threshold*
    (relative) since the last feedback.

    ``should_fire`` and ``fired`` operate on the exact same value set —
    :meth:`_observed_values`, covering every per-PSE stat **and** the
    ``sender_rate`` / ``receiver_rate`` side rates.  The shared collection
    is what keeps the baseline honest: a value the comparison sees is
    always snapshotted on fire (so one drifted rate cannot re-fire
    forever), and a value that is snapshotted was always compared (so a
    drift cannot be silently absorbed by baselines it never raced
    against).
    """

    def __init__(self, threshold: float = 0.25, min_interval: int = 5) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_interval < 0:
            raise ValueError("min_interval must be >= 0")
        self.threshold = threshold
        self.min_interval = min_interval
        #: None until the first fire; then exactly the values last reported
        self._baseline: Optional[Dict[_Subject, float]] = None
        self._last_fired_at = 0
        self.last_reason = None

    @staticmethod
    def _observed_values(unit: ProfilingUnit) -> Dict[_Subject, float]:
        """Every quantity the trigger compares, keyed by subject.

        Only observed values (``count > 0``) participate: "never measured"
        is not a measurement of zero.
        """
        values: Dict[_Subject, float] = {}
        for edge, stats in unit.stats.items():
            for name in _STAT_NAMES:
                stat = getattr(stats, name)
                if stat.count:
                    values[(edge, name)] = stat.mean
        for name in _RATE_NAMES:
            stat = getattr(unit, name)
            if stat.count:
                values[(None, name)] = stat.mean
        return values

    @staticmethod
    def _subject_label(subject: _Subject) -> str:
        edge, name = subject
        return name if edge is None else f"{edge}:{name}"

    def should_fire(self, unit: ProfilingUnit) -> bool:
        # A rewound message counter (ProfilingUnit.reset_counters) must not
        # leave the trigger dead until messages_seen catches back up.
        if unit.messages_seen < self._last_fired_at:
            self._last_fired_at = unit.messages_seen
        if unit.messages_seen - self._last_fired_at < self.min_interval:
            return False
        current = self._observed_values(unit)
        if self._baseline is None:
            if current:
                self.last_reason = {
                    "trigger": "diff",
                    "cause": "first-data",
                    "observed": len(current),
                }
                return True
            return False
        for subject, value in current.items():
            prev = self._baseline.get(subject)
            if prev is None:
                # A quantity got its first observation since the last
                # report: the Reconfiguration Unit has never seen it.
                self.last_reason = {
                    "trigger": "diff",
                    "cause": "new-observation",
                    "subject": self._subject_label(subject),
                    "value": value,
                }
                return True
            scale = max(abs(prev), 1e-12)
            if abs(value - prev) / scale > self.threshold:
                self.last_reason = {
                    "trigger": "diff",
                    "cause": "drift",
                    "subject": self._subject_label(subject),
                    "value": value,
                    "baseline": prev,
                    "threshold": self.threshold,
                }
                return True
        return False

    def fired(self, unit: ProfilingUnit) -> None:
        self._last_fired_at = unit.messages_seen
        # Snapshot exactly the set of values should_fire compares.
        self._baseline = self._observed_values(unit)


class ValueDiffTrigger(FeedbackTrigger):
    """Fire when a watched scalar moves by more than *threshold* (relative).

    Generalizes the diff trigger to quantities living outside the
    profiling unit — e.g. a bandwidth-aware cost model's current
    seconds-per-byte estimate.  ``getter`` is called at each check.
    """

    def __init__(
        self,
        getter: Callable[[], float],
        *,
        threshold: float = 0.25,
        min_interval: int = 1,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_interval < 0:
            raise ValueError("min_interval must be >= 0")
        self.getter = getter
        self.threshold = threshold
        self.min_interval = min_interval
        self._reported: Optional[float] = None
        self._last_fired_at = 0
        self.last_reason = None

    def should_fire(self, unit: ProfilingUnit) -> bool:
        if unit.messages_seen < self._last_fired_at:
            self._last_fired_at = unit.messages_seen
        if unit.messages_seen - self._last_fired_at < self.min_interval:
            return False
        value = self.getter()
        if self._reported is None:
            self.last_reason = {
                "trigger": "value-diff",
                "cause": "first-data",
                "value": value,
            }
            return True
        scale = max(abs(self._reported), 1e-12)
        if abs(value - self._reported) / scale > self.threshold:
            self.last_reason = {
                "trigger": "value-diff",
                "cause": "drift",
                "value": value,
                "baseline": self._reported,
                "threshold": self.threshold,
            }
            return True
        return False

    def fired(self, unit: ProfilingUnit) -> None:
        self._last_fired_at = unit.messages_seen
        self._reported = self.getter()


class CompositeTrigger(FeedbackTrigger):
    """Fire when any member trigger fires (e.g. rate OR diff)."""

    def __init__(self, *members: FeedbackTrigger) -> None:
        if not members:
            raise ValueError("composite trigger needs members")
        self.members = members
        self.last_reason = None

    def should_fire(self, unit: ProfilingUnit) -> bool:
        for member in self.members:
            if member.should_fire(unit):
                self.last_reason = member.last_reason
                return True
        return False

    def fired(self, unit: ProfilingUnit) -> None:
        for m in self.members:
            m.fired(unit)


class DriftTrigger(FeedbackTrigger):
    """Fire when the cost-model drift detector has an unserviced detection.

    Closes the quality loop through observed *error* rather than raw
    rates: a :class:`~repro.obs.quality.DriftDetector` (duck-typed — any
    object with a boolean ``pending`` attribute works) flags predictions
    that stopped tracking reality, and this trigger turns the flag into
    a recompute.  ``fired`` clears the flag, so one excursion buys one
    recompute; usually composed with a rate or diff trigger via
    :class:`CompositeTrigger`.
    """

    def __init__(self, detector) -> None:
        self.detector = detector
        self.last_reason = None

    def should_fire(self, unit: ProfilingUnit) -> bool:
        if not getattr(self.detector, "pending", False):
            return False
        self.last_reason = {
            "trigger": "drift",
            "cause": "model-drift",
            "events": len(getattr(self.detector, "events", ()) or ()),
        }
        return True

    def fired(self, unit: ProfilingUnit) -> None:
        self.detector.pending = False


class NeverTrigger(FeedbackTrigger):
    """Feedback disabled: the no-adaptation baseline."""

    def should_fire(self, unit: ProfilingUnit) -> bool:
        return False
