"""Feedback triggers (paper section 2.5).

"An application can choose to send feedback only when a certain amount of
time has elapsed (rate-triggered), or when the profiling data for one of
the PSEs has changed significantly (diff-triggered)."

Triggers decide when the profiling unit's snapshot travels to the
Reconfiguration Unit; they are the knob trading adaptation agility against
monitoring traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core.runtime.profiling import ProfilingUnit
from repro.ir.interpreter import Edge


class FeedbackTrigger:
    """Decides whether to send feedback after the current message."""

    def should_fire(self, unit: ProfilingUnit) -> bool:
        raise NotImplementedError

    def fired(self, unit: ProfilingUnit) -> None:
        """Notification that feedback was actually sent."""


class RateTrigger(FeedbackTrigger):
    """Fire every *period* handled messages."""

    def __init__(self, period: int = 50) -> None:
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period
        self._last_fired_at = 0

    def should_fire(self, unit: ProfilingUnit) -> bool:
        return unit.messages_seen - self._last_fired_at >= self.period

    def fired(self, unit: ProfilingUnit) -> None:
        self._last_fired_at = unit.messages_seen


class DiffTrigger(FeedbackTrigger):
    """Fire when any PSE's profiled cost moved by more than *threshold*
    (relative) since the last feedback."""

    def __init__(self, threshold: float = 0.25, min_interval: int = 5) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.min_interval = min_interval
        self._reported: Dict[Edge, Dict[str, float]] = {}
        self._reported_rates: Dict[str, float] = {}
        self._last_fired_at = 0

    def should_fire(self, unit: ProfilingUnit) -> bool:
        if unit.messages_seen - self._last_fired_at < self.min_interval:
            return False
        for edge, stats in unit.stats.items():
            last = self._reported.get(edge)
            for name in ("data_size", "work_before", "work_after"):
                stat = getattr(stats, name)
                if stat.count == 0:
                    continue
                if last is None or name not in last:
                    return True
                prev = last[name]
                scale = max(abs(prev), 1e-12)
                if abs(stat.mean - prev) / scale > self.threshold:
                    return True
        # Host load changes show up in the side rates, not the work counts.
        for name in ("sender_rate", "receiver_rate"):
            stat = getattr(unit, name)
            if stat.count == 0:
                continue
            prev = self._reported_rates.get(name)
            if prev is None:
                return True
            scale = max(abs(prev), 1e-12)
            if abs(stat.mean - prev) / scale > self.threshold:
                return True
        return False

    def fired(self, unit: ProfilingUnit) -> None:
        self._last_fired_at = unit.messages_seen
        self._reported = {}
        for edge, stats in unit.stats.items():
            rec: Dict[str, float] = {}
            for name in ("data_size", "work_before", "work_after"):
                stat = getattr(stats, name)
                if stat.count:
                    rec[name] = stat.mean
            self._reported[edge] = rec
        self._reported_rates = {}
        for name in ("sender_rate", "receiver_rate"):
            stat = getattr(unit, name)
            if stat.count:
                self._reported_rates[name] = stat.mean


class ValueDiffTrigger(FeedbackTrigger):
    """Fire when a watched scalar moves by more than *threshold* (relative).

    Generalizes the diff trigger to quantities living outside the
    profiling unit — e.g. a bandwidth-aware cost model's current
    seconds-per-byte estimate.  ``getter`` is called at each check.
    """

    def __init__(
        self,
        getter: Callable[[], float],
        *,
        threshold: float = 0.25,
        min_interval: int = 1,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.getter = getter
        self.threshold = threshold
        self.min_interval = min_interval
        self._reported: Optional[float] = None
        self._last_fired_at = 0

    def should_fire(self, unit: ProfilingUnit) -> bool:
        if unit.messages_seen - self._last_fired_at < self.min_interval:
            return False
        value = self.getter()
        if self._reported is None:
            return True
        scale = max(abs(self._reported), 1e-12)
        return abs(value - self._reported) / scale > self.threshold

    def fired(self, unit: ProfilingUnit) -> None:
        self._last_fired_at = unit.messages_seen
        self._reported = self.getter()


class CompositeTrigger(FeedbackTrigger):
    """Fire when any member trigger fires (e.g. rate OR diff)."""

    def __init__(self, *members: FeedbackTrigger) -> None:
        if not members:
            raise ValueError("composite trigger needs members")
        self.members = members

    def should_fire(self, unit: ProfilingUnit) -> bool:
        return any(m.should_fire(unit) for m in self.members)

    def fired(self, unit: ProfilingUnit) -> None:
        for m in self.members:
            m.fired(unit)


class NeverTrigger(FeedbackTrigger):
    """Feedback disabled: the no-adaptation baseline."""

    def should_fire(self, unit: ProfilingUnit) -> bool:
        return False
