"""Max-flow / min-cut on the PSE graph (paper sections 2.1 and 2.5).

The Reconfiguration Unit "invokes a max-flow algorithm to re-select a
(near) optimal partition" — by max-flow/min-cut duality, the cheapest set
of edges separating the StartNode from every StopNode, where PSEs carry
their profiled costs as capacities and all other edges are uncuttable
(infinite capacity).

This is a from-scratch Dinic implementation over float capacities; the
test suite cross-checks it against ``networkx`` on random graphs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

INF = float("inf")


@dataclass
class _Arc:
    to: int
    cap: float
    rev: int  # index of the reverse arc in adj[to]
    #: user key of the original edge (None for reverse arcs)
    key: Optional[Tuple[Hashable, Hashable]] = None


class FlowNetwork:
    """Directed flow network over arbitrary hashable node ids."""

    def __init__(self) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._nodes: List[Hashable] = []
        self._adj: List[List[_Arc]] = []

    def _node(self, key: Hashable) -> int:
        if key not in self._ids:
            self._ids[key] = len(self._nodes)
            self._nodes.append(key)
            self._adj.append([])
        return self._ids[key]

    def add_edge(self, u: Hashable, v: Hashable, capacity: float) -> None:
        """Add a directed edge u→v.  Parallel edges accumulate naturally."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        ui, vi = self._node(u), self._node(v)
        self._adj[ui].append(
            _Arc(to=vi, cap=capacity, rev=len(self._adj[vi]), key=(u, v))
        )
        self._adj[vi].append(_Arc(to=ui, cap=0.0, rev=len(self._adj[ui]) - 1))

    def has_node(self, key: Hashable) -> bool:
        return key in self._ids

    # -- Dinic ---------------------------------------------------------------

    def max_flow(self, source: Hashable, sink: Hashable) -> float:
        if source not in self._ids or sink not in self._ids:
            return 0.0
        s, t = self._ids[source], self._ids[sink]
        if s == t:
            raise ValueError("source and sink must differ")
        flow = 0.0
        while True:
            level = self._bfs_levels(s, t)
            if level[t] < 0:
                return flow
            it = [0] * len(self._nodes)
            while True:
                pushed = self._dfs_push(s, t, INF, level, it)
                if pushed <= 0:
                    break
                flow += pushed
                if flow == INF:
                    return INF

    def _bfs_levels(self, s: int, t: int) -> List[int]:
        level = [-1] * len(self._nodes)
        level[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for arc in self._adj[u]:
                if arc.cap > 1e-12 and level[arc.to] < 0:
                    level[arc.to] = level[u] + 1
                    queue.append(arc.to)
        return level

    def _dfs_push(
        self, u: int, t: int, limit: float, level: List[int], it: List[int]
    ) -> float:
        if u == t:
            return limit
        while it[u] < len(self._adj[u]):
            arc = self._adj[u][it[u]]
            if arc.cap > 1e-12 and level[arc.to] == level[u] + 1:
                pushed = self._dfs_push(
                    arc.to, t, min(limit, arc.cap), level, it
                )
                if pushed > 0:
                    arc.cap -= pushed
                    self._adj[arc.to][arc.rev].cap += pushed
                    return pushed
            it[u] += 1
        return 0.0

    # -- min cut ------------------------------------------------------------------

    def min_cut(
        self, source: Hashable, sink: Hashable
    ) -> Tuple[float, FrozenSet[Tuple[Hashable, Hashable]], FrozenSet[Hashable]]:
        """Run max-flow, then return (value, cut edge keys, source side).

        Mutates the network (residual capacities); build a fresh network
        per query.  Returns the original user edge keys crossing the cut —
        for the Reconfiguration Unit these are exactly the PSE edges whose
        flags the new plan sets.
        """
        value = self.max_flow(source, sink)
        s = self._ids.get(source)
        if s is None:
            return 0.0, frozenset(), frozenset()
        # Source side = nodes reachable in the residual graph.
        reach: Set[int] = set()
        stack = [s]
        while stack:
            u = stack.pop()
            if u in reach:
                continue
            reach.add(u)
            for arc in self._adj[u]:
                if arc.cap > 1e-12 and arc.to not in reach:
                    stack.append(arc.to)
        cut_keys: Set[Tuple[Hashable, Hashable]] = set()
        for u in reach:
            for arc in self._adj[u]:
                if arc.key is not None and arc.to not in reach:
                    cut_keys.add(arc.key)
        source_side = frozenset(self._nodes[i] for i in reach)
        return value, frozenset(cut_keys), source_side
