"""Runtime Profiling Unit (paper section 2.5).

Profiling code inserted along each PSE measures what the cost model cannot
know statically.  Crucially, the unit "collects feedback containing
profiling information from **both the modulator and demodulator sides**":
a PSE that the current plan does not split at is still *traversed* — by the
modulator when it lies before the active split, by the demodulator when it
lies after — so its hypothetical cost can be profiled without ever
splitting there.  Per traversed PSE edge we record:

* ``data_size`` — serialized size of the edge's INTER set (the data-size
  model's cost), measured by the size-calculation tool on the live
  environment;
* ``work_before`` / ``work_after`` — abstract cycles of handler work on
  either side of the edge (machine-independent);
* traversal counts, giving each edge's path probability.

Separately, each *side* profiles its effective seconds-per-cycle rate from
actual service times, which is where host speed and perturbation load show
up.  The execution-time model's per-unit times are then derived as

    ``T_mod(e) = work_before(e) × sender_rate``
    ``T_demod(e) = work_after(e) × receiver_rate``

Profiling is conditional: each PSE has a dedicated profiling flag, and a
sampling period can skip the expensive size measurements ("if profiling is
expensive, such costs can be reduced by periodic sampling, at the expense
of having less timely statistics").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.convexcut import ConvexCutResult
from repro.ir.interpreter import Edge


@dataclass
class RunningStat:
    """Exponentially weighted running statistic with an update count.

    EWMA tracks drifting costs (the point of runtime reconfiguration) while
    ``count`` distinguishes "never measured" from "measured zero".
    """

    alpha: float = 0.3
    mean: float = 0.0
    count: int = 0

    def update(self, value: float) -> None:
        if self.count == 0:
            self.mean = value
        else:
            self.mean += self.alpha * (value - self.mean)
        self.count += 1

    def reset(self) -> None:
        self.mean = 0.0
        self.count = 0


@dataclass
class PSEStats:
    """Raw profiled observations of one PSE."""

    edge: Edge
    static_lower_bound: float
    data_size: RunningStat = field(default_factory=RunningStat)
    work_before: RunningStat = field(default_factory=RunningStat)
    work_after: RunningStat = field(default_factory=RunningStat)
    #: messages whose execution traversed this edge (either side)
    traversals: int = 0
    #: messages that actually split here
    splits: int = 0


@dataclass(frozen=True)
class PSESnapshot:
    """Resolved per-PSE numbers handed to the cost model / reconfigurator."""

    edge: Edge
    static_lower_bound: float
    #: mean INTER-set wire size; None when never measured
    data_size: Optional[float]
    data_size_count: int
    #: mean handler cycles before/after this edge; None when never observed
    work_before: Optional[float]
    work_after: Optional[float]
    #: derived per-message modulator/demodulator times; None when unknown
    t_mod: Optional[float]
    t_demod: Optional[float]
    #: fraction of messages whose execution passes this edge
    path_probability: float
    splits: int
    #: completed executions backing ``path_probability`` — 0 means the
    #: unit has observed nothing yet, so a probability of 0.0 is "no
    #: data", not "this path never executes"
    observed_executions: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form for plan-decision breakdowns."""
        return {
            "edge": list(self.edge),
            "static_lower_bound": self.static_lower_bound,
            "data_size": self.data_size,
            "data_size_count": self.data_size_count,
            "work_before": self.work_before,
            "work_after": self.work_after,
            "t_mod": self.t_mod,
            "t_demod": self.t_demod,
            "path_probability": self.path_probability,
            "splits": self.splits,
            "observed_executions": self.observed_executions,
        }


class ProfilingUnit:
    """Collects per-PSE measurements from modulator and demodulator sides."""

    def __init__(
        self,
        cut: ConvexCutResult,
        *,
        ewma_alpha: float = 0.3,
        sample_period: int = 1,
        obs=None,
    ) -> None:
        if sample_period < 1:
            raise ValueError("sample_period must be >= 1")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.cut = cut
        self.sample_period = sample_period
        self.ewma_alpha = ewma_alpha
        self.stats: Dict[Edge, PSEStats] = {}
        self.profile_flags: Dict[Edge, bool] = {}
        for edge, pse in cut.pses.items():
            stats = PSEStats(
                edge=edge,
                static_lower_bound=(
                    pse.static_cost.lower_bound
                    if not pse.static_cost.infinite
                    else 0.0
                ),
            )
            for name in ("data_size", "work_before", "work_after"):
                getattr(stats, name).alpha = ewma_alpha
            self.stats[edge] = stats
            self.profile_flags[edge] = cut.cost_model.needs_profiling(
                pse.static_cost
            )
        #: effective seconds per abstract cycle on each side
        self.sender_rate = RunningStat(alpha=ewma_alpha)
        self.receiver_rate = RunningStat(alpha=ewma_alpha)
        #: total handler cycles per message (modulator + demodulator),
        #: paired FIFO across the split (see record_mod_total /
        #: record_demod_total)
        self.total_work = RunningStat(alpha=ewma_alpha)
        self._pending_mod_totals: deque = deque(maxlen=1024)
        self._pending_demod_totals: deque = deque(maxlen=1024)
        self.messages_seen = 0
        #: executions whose observations are complete on both sides — the
        #: denominator for path probabilities.  Using messages_seen instead
        #: would systematically underestimate demodulator-observed edges:
        #: their traversal reports lag the sender by the in-flight window.
        self.executions_completed = 0
        self.measurements_taken = 0
        self.obs = obs
        if obs is not None:
            self._c_observations = obs.metrics.counter("profiling.observations")
            self._c_measurements = obs.metrics.counter("profiling.measurements")
        else:
            self._c_observations = None
            self._c_measurements = None

    # -- flag control --------------------------------------------------------

    def enable_profiling(self, edge: Edge, on: bool = True) -> None:
        if edge not in self.profile_flags:
            raise KeyError(f"edge {edge} is not a PSE")
        self.profile_flags[edge] = on

    def enable_all(self, on: bool = True) -> None:
        for edge in self.profile_flags:
            self.profile_flags[edge] = on

    def should_measure(self, edge: Edge) -> bool:
        """Whether the expensive profiling code along *edge* runs now."""
        if not self.profile_flags.get(edge, False):
            return False
        return self.messages_seen % self.sample_period == 0

    # -- recording -------------------------------------------------------------

    def record_message(self) -> None:
        """Count one message entering the modulator."""
        self.messages_seen += 1

    def record_edge_observation(
        self,
        edge: Edge,
        *,
        data_size: Optional[float] = None,
        work_before: Optional[float] = None,
        work_after: Optional[float] = None,
        is_split: bool = False,
        count_traversal: bool = True,
    ) -> None:
        """Record one traversal of a PSE edge (either side).

        ``count_traversal=False`` lets the demodulator attach its
        ``work_after`` to the split edge without double-counting the
        traversal the modulator already recorded.
        """
        stats = self.stats.get(edge)
        if stats is None:
            return
        if self._c_observations is not None:
            self._c_observations.inc()
        if count_traversal:
            stats.traversals += 1
        if is_split:
            stats.splits += 1
        if data_size is not None:
            stats.data_size.update(data_size)
            self.measurements_taken += 1
            if self._c_measurements is not None:
                self._c_measurements.inc()
        if work_before is not None:
            stats.work_before.update(work_before)
        if work_after is not None:
            stats.work_after.update(work_after)

    def record_sender_rate(self, seconds: float, cycles: float) -> None:
        """One modulator run's service time over its cycle count."""
        if cycles > 0:
            self.sender_rate.update(seconds / cycles)

    def record_receiver_rate(self, seconds: float, cycles: float) -> None:
        """One demodulator run's service time over its cycle count."""
        if cycles > 0:
            self.receiver_rate.update(seconds / cycles)

    def record_mod_total(self, cycles: float) -> None:
        """Modulator cycles of a message whose continuation was shipped.

        Paired head-to-head with :meth:`record_demod_total` — each side
        reports its messages in order, so matching the oldest unpaired
        report from each side yields the per-message total even when one
        side's reports arrive late (batched feedback).  The totals let
        :meth:`snapshot` reconstruct the missing side of any edge that
        only one side traversed — the combination of "profiling
        information from both the modulator and demodulator sides".
        """
        self._pending_mod_totals.append(cycles)
        self._pair_totals()

    def record_demod_total(self, cycles: float) -> None:
        """Demodulator cycles of one message, in receive order."""
        self.executions_completed += 1
        self._pending_demod_totals.append(cycles)
        self._pair_totals()

    def _pair_totals(self) -> None:
        while self._pending_mod_totals and self._pending_demod_totals:
            self.total_work.update(
                self._pending_mod_totals.popleft()
                + self._pending_demod_totals.popleft()
            )

    def record_local_completion(self) -> None:
        """An execution that never reached the demodulator (elided or
        completed inside the modulator)."""
        self.executions_completed += 1

    # -- feedback -----------------------------------------------------------------

    def snapshot(self) -> Dict[Edge, PSESnapshot]:
        """Resolve observations into the feedback payload."""
        out: Dict[Edge, PSESnapshot] = {}
        messages = max(self.executions_completed, 1)
        s_rate = self.sender_rate.mean if self.sender_rate.count else None
        r_rate = self.receiver_rate.mean if self.receiver_rate.count else None
        total = self.total_work.mean if self.total_work.count else None
        for edge, stats in self.stats.items():
            work_before = (
                stats.work_before.mean if stats.work_before.count else None
            )
            work_after = (
                stats.work_after.mean if stats.work_after.count else None
            )
            # Reconstruct the side the edge's traverser could not see from
            # the message's total work (two-sided feedback combination).
            if work_before is None and work_after is not None and total:
                work_before = max(total - work_after, 0.0)
            elif work_after is None and work_before is not None and total:
                work_after = max(total - work_before, 0.0)
            t_mod = None
            if work_before is not None and s_rate is not None:
                t_mod = work_before * s_rate
            t_demod = None
            if work_after is not None and r_rate is not None:
                t_demod = work_after * r_rate
            out[edge] = PSESnapshot(
                edge=edge,
                static_lower_bound=stats.static_lower_bound,
                data_size=(
                    stats.data_size.mean if stats.data_size.count else None
                ),
                data_size_count=stats.data_size.count,
                work_before=work_before,
                work_after=work_after,
                t_mod=t_mod,
                t_demod=t_demod,
                path_probability=min(stats.traversals / messages, 1.0),
                splits=stats.splits,
                observed_executions=self.executions_completed,
            )
        return out

    def reset_counters(self) -> None:
        self.messages_seen = 0
        self.measurements_taken = 0
        for stats in self.stats.values():
            stats.traversals = 0
            stats.splits = 0
