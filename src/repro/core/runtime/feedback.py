"""Distributed profiling feedback (paper section 2.5).

"The exchange of such [profiling] information between the modulator and
demodulator sides of an interacting component is activated by
application-defined triggers" — feedback is a *message*, not shared
memory.  This module makes that explicit:

* :class:`RemoteProfilingProxy` — stands in for the Profiling Unit on the
  side that does NOT host it.  It accepts the exact same recording calls
  the modulator/demodulator make, applies the same flag/sampling gating,
  and buffers :class:`ObservationRecord` entries instead of updating
  state.
* :meth:`RemoteProfilingProxy.flush` — drains the buffer into a feedback
  payload with an estimated wire size (what the FeedbackEnvelope carries).
* :func:`ingest` — replays a payload into the authoritative
  :class:`~repro.core.runtime.profiling.ProfilingUnit` on the other side.

Invariant (tested): recording through a proxy and ingesting every flush
yields byte-identical statistics to recording into the unit directly —
the only difference distribution introduces is *staleness* between
flushes, which is exactly the paper's sampling-vs-timeliness trade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.convexcut import ConvexCutResult
from repro.core.runtime.profiling import ProfilingUnit
from repro.ir.interpreter import Edge
from repro.obs.trace import FeedbackIngested, FeedbackSent

#: estimated wire bytes per observation record (kind tag + edge + floats)
_RECORD_BYTES = 28.0
#: envelope overhead of one feedback message
_ENVELOPE_BYTES = 32.0


@dataclass(frozen=True)
class ObservationRecord:
    """One buffered profiling event, replayable on the other side."""

    kind: str  # message | edge | sender_rate | receiver_rate |
    #            mod_total | demod_total | local_completion
    edge: Optional[Edge] = None
    data_size: Optional[float] = None
    work_before: Optional[float] = None
    work_after: Optional[float] = None
    is_split: bool = False
    count_traversal: bool = True
    seconds: float = 0.0
    cycles: float = 0.0


class RemoteProfilingProxy:
    """Profiling recorder for the side away from the Profiling Unit.

    Mirrors the unit's gating configuration (per-PSE profile flags and the
    sampling period) so the expensive measurements are skipped in the same
    pattern; everything recorded is buffered until :meth:`flush`.
    """

    def __init__(
        self,
        cut: ConvexCutResult,
        *,
        sample_period: int = 1,
        obs=None,
    ) -> None:
        if sample_period < 1:
            raise ValueError("sample_period must be >= 1")
        self.cut = cut
        self.sample_period = sample_period
        # same flag defaults as the authoritative unit
        self.profile_flags = {
            edge: cut.cost_model.needs_profiling(pse.static_cost)
            for edge, pse in cut.pses.items()
        }
        self.messages_seen = 0
        self._buffer: List[ObservationRecord] = []
        self.flushes = 0
        self.bytes_flushed = 0.0
        self.obs = obs
        if obs is not None:
            self._c_flushes = obs.metrics.counter("feedback.flushes")
            self._c_bytes = obs.metrics.counter("feedback.bytes")
            self._c_records = obs.metrics.counter("feedback.records")
        else:
            self._c_flushes = None
            self._c_bytes = None
            self._c_records = None

    # -- the recording interface the modulator/demodulator call ---------------

    def record_message(self) -> None:
        self.messages_seen += 1
        self._buffer.append(ObservationRecord(kind="message"))

    def should_measure(self, edge: Edge) -> bool:
        if not self.profile_flags.get(edge, False):
            return False
        return self.messages_seen % self.sample_period == 0

    def record_edge_observation(
        self,
        edge: Edge,
        *,
        data_size: Optional[float] = None,
        work_before: Optional[float] = None,
        work_after: Optional[float] = None,
        is_split: bool = False,
        count_traversal: bool = True,
    ) -> None:
        self._buffer.append(
            ObservationRecord(
                kind="edge",
                edge=edge,
                data_size=data_size,
                work_before=work_before,
                work_after=work_after,
                is_split=is_split,
                count_traversal=count_traversal,
            )
        )

    def record_sender_rate(self, seconds: float, cycles: float) -> None:
        self._buffer.append(
            ObservationRecord(
                kind="sender_rate", seconds=seconds, cycles=cycles
            )
        )

    def record_receiver_rate(self, seconds: float, cycles: float) -> None:
        self._buffer.append(
            ObservationRecord(
                kind="receiver_rate", seconds=seconds, cycles=cycles
            )
        )

    def record_mod_total(self, cycles: float) -> None:
        self._buffer.append(
            ObservationRecord(kind="mod_total", cycles=cycles)
        )

    def record_demod_total(self, cycles: float) -> None:
        self._buffer.append(
            ObservationRecord(kind="demod_total", cycles=cycles)
        )

    def record_local_completion(self) -> None:
        self._buffer.append(ObservationRecord(kind="local_completion"))

    # -- shipping --------------------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self._buffer)

    def flush(self) -> Tuple[List[ObservationRecord], float]:
        """Drain the buffer; returns (payload, estimated wire bytes)."""
        payload = self._buffer
        self._buffer = []
        size = _ENVELOPE_BYTES + _RECORD_BYTES * len(payload)
        self.flushes += 1
        self.bytes_flushed += size
        if self.obs is not None:
            self._c_flushes.inc()
            self._c_bytes.inc(size)
            self._c_records.inc(len(payload))
            self.obs.trace.record(
                FeedbackSent(records=len(payload), bytes=size)
            )
        return payload, size


def ingest(unit: ProfilingUnit, payload: List[ObservationRecord]) -> None:
    """Replay a feedback payload into the authoritative unit."""
    obs = getattr(unit, "obs", None)
    if obs is not None:
        obs.metrics.counter("feedback.ingested_records").inc(len(payload))
        obs.trace.record(FeedbackIngested(records=len(payload)))
    for rec in payload:
        if rec.kind == "message":
            unit.record_message()
        elif rec.kind == "edge":
            unit.record_edge_observation(
                rec.edge,
                data_size=rec.data_size,
                work_before=rec.work_before,
                work_after=rec.work_after,
                is_split=rec.is_split,
                count_traversal=rec.count_traversal,
            )
        elif rec.kind == "sender_rate":
            unit.record_sender_rate(rec.seconds, rec.cycles)
        elif rec.kind == "receiver_rate":
            unit.record_receiver_rate(rec.seconds, rec.cycles)
        elif rec.kind == "mod_total":
            unit.record_mod_total(rec.cycles)
        elif rec.kind == "demod_total":
            unit.record_demod_total(rec.cycles)
        elif rec.kind == "local_completion":
            unit.record_local_completion()
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown observation kind {rec.kind!r}")
