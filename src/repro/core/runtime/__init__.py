"""Runtime Profiling and Reconfiguration Units (paper section 2.5)."""

from repro.core.runtime.feedback import (
    ObservationRecord,
    RemoteProfilingProxy,
    ingest,
)
from repro.core.runtime.maxflow import INF, FlowNetwork
from repro.core.runtime.plancost import (
    enumerate_plans,
    exhaustive_best_plan,
    expected_plan_cost,
    first_split_on_path,
)
from repro.core.runtime.profiling import ProfilingUnit, PSEStats, RunningStat
from repro.core.runtime.reconfig import (
    ReconfigurationRecord,
    ReconfigurationUnit,
)
from repro.core.runtime.triggers import (
    CompositeTrigger,
    ValueDiffTrigger,
    DiffTrigger,
    FeedbackTrigger,
    NeverTrigger,
    RateTrigger,
)

__all__ = [
    "ProfilingUnit",
    "PSEStats",
    "RunningStat",
    "ReconfigurationUnit",
    "ReconfigurationRecord",
    "FeedbackTrigger",
    "RateTrigger",
    "DiffTrigger",
    "CompositeTrigger",
    "ValueDiffTrigger",
    "NeverTrigger",
    "FlowNetwork",
    "INF",
    "expected_plan_cost",
    "enumerate_plans",
    "exhaustive_best_plan",
    "first_split_on_path",
    "RemoteProfilingProxy",
    "ObservationRecord",
    "ingest",
]
