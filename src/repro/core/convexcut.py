"""The ConvexCut algorithm (paper Figure 3).

Identifies the Potential Split Edges of a message handler:

.. code-block:: text

    Algorithm ConvexCut
    1. MarkStopNodes(ug)
    2. foreach Edge(out, in) in the ddg:
    3.   foreach path p in ug that starts from in and ends at out:
    4.     mark each edge in p with infinite cost
    5. PSESet = ∅
    6. foreach TargetPath p:
    7.   PSESet += MinCostEdgeSet(p)

Line 2-4 enforce *convexity*: if data produced at node ``out`` is consumed
at node ``in`` and control can flow from ``in`` back to ``out`` (only
possible around a loop), cutting any edge on that back path would make data
flow from the demodulator back to the modulator.  Those edges are poisoned
with infinite cost.

``MinCostEdgeSet(p)`` returns the edges of ``p`` with minimal cost under
the partial order of :meth:`EdgeCost.determinably_less`: an edge survives
when no other edge on the path is *determinably* cheaper.  Edges whose
costs are identical for every execution (same deterministic part and same
alias-canonicalized symbolic set — this is where points-to analysis enters,
paper section 4.1) are deduplicated, keeping one representative.

Edges entering StopNodes are additionally kept as **terminal** PSEs: they
are the forced fallback split points, because a StopNode itself can only
execute at the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.paths import TargetPath
from repro.core.context import AnalysisContext
from repro.core.costmodels.base import INFINITE_COST, CostModel, EdgeCost
from repro.errors import PartitionError
from repro.ir.interpreter import Edge
from repro.ir.instructions import Goto, Nop, Return
from repro.ir.values import Var


@dataclass(frozen=True)
class PSE:
    """One Potential Split Edge.

    ``pse_id`` is the stable identifier shipped in continuation messages
    and plan updates.  ``terminal`` marks forced fallback edges (into
    StopNodes).  ``noop_resume`` marks PSEs whose demodulator-side residual
    performs no work (only nops/jumps/bare returns): continuations through
    them can be elided entirely — that is how "events ... will be filtered
    out" in the paper's example.
    """

    pse_id: str
    edge: Edge
    inter: FrozenSet[Var]
    static_cost: EdgeCost
    terminal: bool = False
    noop_resume: bool = False

    def __repr__(self) -> str:
        flags = []
        if self.terminal:
            flags.append("terminal")
        if self.noop_resume:
            flags.append("noop")
        suffix = f" [{','.join(flags)}]" if flags else ""
        return f"<PSE {self.pse_id} {self.edge}{suffix}>"


@dataclass
class ConvexCutResult:
    """Output of static analysis: the PSE set plus supporting data."""

    ctx: AnalysisContext
    cost_model: CostModel
    pses: Dict[Edge, PSE]
    poisoned: FrozenSet[Edge]
    #: per TargetPath, the cost-derived minimal PSE edges on it
    path_pse_edges: Tuple[Tuple[TargetPath, Tuple[Edge, ...]], ...]

    @property
    def pse_edges(self) -> FrozenSet[Edge]:
        return frozenset(self.pses)

    def terminal_edges(self) -> FrozenSet[Edge]:
        return frozenset(e for e, p in self.pses.items() if p.terminal)

    def pse_by_id(self, pse_id: str) -> PSE:
        for pse in self.pses.values():
            if pse.pse_id == pse_id:
                return pse
        raise PartitionError(f"unknown PSE id {pse_id!r}")

    def describe(self) -> str:
        lines = [
            f"ConvexCut of {self.ctx.function.name!r} "
            f"under {self.cost_model.name}:"
        ]
        for edge in sorted(self.pses):
            pse = self.pses[edge]
            inter = ", ".join(sorted(v.name for v in pse.inter))
            lines.append(
                f"  {pse.pse_id}: Edge{edge} INTER={{{inter}}} "
                f"cost={pse.static_cost.deterministic:g}"
                f"{'+sym' if pse.static_cost.symbolic else ''}"
                f"{' terminal' if pse.terminal else ''}"
                f"{' noop-resume' if pse.noop_resume else ''}"
            )
        return "\n".join(lines)


def convex_cut(
    ctx: AnalysisContext,
    cost_model: CostModel,
    *,
    enforce_convexity: bool = True,
) -> ConvexCutResult:
    """Run ConvexCut over an analyzed handler.

    ``enforce_convexity=False`` skips the poisoning step (lines 2-4 of the
    paper's algorithm), admitting cuts through loop bodies that a real
    system could not execute.  Exists ONLY for the section-7 ablation that
    measures what the convexity restriction costs; never execute plans
    from a non-convex cut.
    """
    poisoned = (
        _poison_backflow_edges(ctx) if enforce_convexity else frozenset()
    )
    path_results: List[Tuple[TargetPath, Tuple[Edge, ...]]] = []
    pse_edges: Set[Edge] = set()
    costs: Dict[Edge, EdgeCost] = {}

    for path in ctx.paths:
        min_edges = _min_cost_edge_set(ctx, cost_model, path, poisoned, costs)
        path_results.append((path, tuple(min_edges)))
        pse_edges.update(min_edges)

    # Terminal fallback edges: always instrumented, regardless of cost.
    terminal = set(ctx.stop_entry_edges()) - poisoned
    pse_edges.update(terminal)

    pses: Dict[Edge, PSE] = {}
    for i, edge in enumerate(sorted(pse_edges)):
        cost = costs.get(edge)
        if cost is None:
            cost = _edge_cost(ctx, cost_model, edge, path=None)
        pses[edge] = PSE(
            pse_id=f"pse{i}",
            edge=edge,
            inter=ctx.inter(edge),
            static_cost=cost,
            terminal=edge in terminal,
            noop_resume=_is_noop_resume(ctx, edge),
        )
    return ConvexCutResult(
        ctx=ctx,
        cost_model=cost_model,
        pses=pses,
        poisoned=poisoned,
        path_pse_edges=tuple(path_results),
    )


def _poison_backflow_edges(ctx: AnalysisContext) -> FrozenSet[Edge]:
    """Lines 2-4 of the algorithm: poison edges enabling backward data flow."""
    poisoned: Set[Edge] = set()
    graph = ctx.graph
    for def_node, use_node in ctx.ddg.edges:
        # Data flows def_node -> use_node.  If control can travel from the
        # use back to the def, every edge on such a path is poisoned.
        if graph.reaches(use_node, def_node):
            poisoned |= graph.edges_on_paths(use_node, def_node)
    return frozenset(poisoned)


def _edge_cost(
    ctx: AnalysisContext,
    cost_model: CostModel,
    edge: Edge,
    path: Optional[TargetPath],
) -> EdgeCost:
    from repro.errors import CostModelError

    try:
        return cost_model.static_edge_cost(ctx, edge, path)
    except CostModelError:
        # Path-relative models cannot cost an off-path edge; neutral cost.
        return EdgeCost(deterministic=0.0)


def _min_cost_edge_set(
    ctx: AnalysisContext,
    cost_model: CostModel,
    path: TargetPath,
    poisoned: FrozenSet[Edge],
    costs: Dict[Edge, EdgeCost],
) -> List[Edge]:
    """MinCostEdgeSet(p) with identical-cost deduplication."""
    edge_costs: List[Tuple[Edge, EdgeCost]] = []
    for edge in path.edges:
        if edge in poisoned:
            cost = INFINITE_COST
        else:
            cost = _edge_cost(ctx, cost_model, edge, path)
        costs[edge] = cost
        edge_costs.append((edge, cost))

    survivors: List[Tuple[Edge, EdgeCost]] = []
    for edge, cost in edge_costs:
        if cost.infinite:
            continue
        if any(
            other_cost.determinably_less(cost)
            for other_edge, other_cost in edge_costs
            if other_edge != edge
        ):
            continue
        survivors.append((edge, cost))

    # Deduplicate identical costs: keep one edge per identical-cost group,
    # preferring a terminal (stop-entry) edge so the kept representative is
    # also the forced fallback where possible; otherwise keep the first.
    stop_entries = set(ctx.stop_entry_edges())
    groups: List[Tuple[Edge, EdgeCost]] = []
    for edge, cost in survivors:
        placed = False
        for gi, (gedge, gcost) in enumerate(groups):
            if cost.identical_to(gcost) and _same_handover(
                ctx, edge, gedge
            ):
                if edge in stop_entries and gedge not in stop_entries:
                    groups[gi] = (edge, cost)
                placed = True
                break
        if not placed:
            groups.append((edge, cost))
    return [edge for edge, _ in groups]


def _same_handover(ctx: AnalysisContext, a: Edge, b: Edge) -> bool:
    """True when two edges hand over the same objects (alias-canonical)."""
    inter_a = ctx.aliases.canonicalize(ctx.inter(a))
    inter_b = ctx.aliases.canonicalize(ctx.inter(b))
    return inter_a == inter_b


def _is_noop_resume(ctx: AnalysisContext, edge: Edge) -> bool:
    """True when resuming at *edge* performs no observable work.

    The residual is a no-op when every instruction reachable from the
    edge's *in* node is a ``Nop``, ``Goto``, or value-less ``Return``.
    Splitting at such an edge means the receiver would do nothing, so the
    continuation message can be elided — the paper's event filtering.
    """
    fn = ctx.function
    for node in ctx.graph.reachable_from(edge[1]):
        instr = fn.instrs[node]
        if isinstance(instr, (Nop, Goto)):
            continue
        if isinstance(instr, Return) and instr.value is None:
            continue
        return False
    return True
