"""Cost models: the only deployment-time knowledge Method Partitioning needs.

* :class:`DataSizeCostModel` — minimize modulator→demodulator bytes
  (paper section 4.1).
* :class:`ExecutionTimeCostModel` + :class:`NetworkParameters` — minimize
  total program time via the Kim et al. segmentation model (section 4.2).
* :class:`CompositeCostModel`, :class:`PowerCostModel` — the extensions the
  paper lists as future work (section 7).
* :class:`EdgeCost` / :class:`CostModel` — the static/runtime interface.
"""

from repro.core.costmodels.base import INFINITE_COST, CostModel, EdgeCost
from repro.core.costmodels.composite import CompositeCostModel
from repro.core.costmodels.datasize import DataSizeCostModel
from repro.core.costmodels.exectime import (
    ExecutionTimeCostModel,
    NetworkParameters,
    predicted_total_time,
)
from repro.core.costmodels.power import PowerCostModel
from repro.core.costmodels.responsetime import ResponseTimeCostModel
from repro.core.costmodels.static_sizes import infer_static_sizes

__all__ = [
    "CostModel",
    "EdgeCost",
    "INFINITE_COST",
    "DataSizeCostModel",
    "ExecutionTimeCostModel",
    "NetworkParameters",
    "predicted_total_time",
    "CompositeCostModel",
    "PowerCostModel",
    "ResponseTimeCostModel",
    "infer_static_sizes",
]
