"""Composite cost models (paper section 7, future work).

"We would also like to ... experiment with composite cost models."  A
composite model combines member models by non-negative weights.  The
deterministic parts add (weighted); the symbolic parts union, so the
comparison rules of :class:`EdgeCost` stay sound (a composite cost is
determinable only when every member's is).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.context import AnalysisContext
from repro.core.costmodels.base import CostModel, EdgeCost
from repro.errors import CostModelError
from repro.ir.interpreter import Edge


class CompositeCostModel(CostModel):
    """Weighted combination of cost models."""

    name = "composite"

    def __init__(self, members: Sequence[Tuple[CostModel, float]]) -> None:
        if not members:
            raise CostModelError("composite model needs at least one member")
        for _, weight in members:
            if weight < 0:
                raise CostModelError("composite weights must be non-negative")
        self.members = tuple(members)
        self.name = "composite(" + "+".join(
            f"{w:g}*{m.name}" for m, w in self.members
        ) + ")"

    def static_edge_cost(
        self, ctx: AnalysisContext, edge: Edge, path=None
    ) -> EdgeCost:
        deterministic = 0.0
        symbolic = set()
        infinite = False
        for model, weight in self.members:
            cost = model.static_edge_cost(ctx, edge, path)
            if cost.infinite:
                infinite = True
                continue
            deterministic += weight * cost.deterministic
            symbolic |= set(cost.symbolic)
        if infinite:
            return EdgeCost(deterministic=float("inf"), infinite=True)
        return EdgeCost(
            deterministic=deterministic, symbolic=frozenset(symbolic)
        )

    def runtime_edge_cost(self, stats) -> float:
        return sum(
            weight * model.runtime_edge_cost(stats)
            for model, weight in self.members
        )

    def runtime_edge_cost_raw(self, snap) -> float:
        # Combine member raw costs directly: members may mix measured and
        # fallback values, which the base class's divide-back-out
        # derivation cannot unpick.
        return sum(
            weight * model.runtime_edge_cost_raw(snap)
            for model, weight in self.members
        )
