"""Cost model minimizing network communication (paper section 4.1).

"This cost model defines costs as proportional to the amount of data sent
from the modulator to the demodulator."  The cost of a PSE is the serialized
size of its INTER set — unique reachable objects plus back-references for
duplicates, which is exactly what :func:`repro.serialization.measure_size`
computes over the captured variables.

Statically, each INTER variable contributes either an exact size (from
:func:`infer_static_sizes`) to the deterministic part or its alias-class
representative to the symbolic part, enabling the paper's comparison rules
(lower bounds; identical symbolic sets compare by deterministic parts).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.context import AnalysisContext
from repro.core.costmodels.base import CostModel, EdgeCost
from repro.core.costmodels.static_sizes import infer_static_sizes
from repro.ir.interpreter import Edge


class DataSizeCostModel(CostModel):
    """Edge cost = bytes shipped in the continuation message."""

    name = "data-size"

    def __init__(self) -> None:
        self._size_cache: Dict[int, Dict[str, int]] = {}

    def _sizes_for(self, ctx: AnalysisContext) -> Dict[str, int]:
        key = id(ctx.function)
        if key not in self._size_cache:
            self._size_cache[key] = infer_static_sizes(ctx.function)
        return self._size_cache[key]

    def static_edge_cost(
        self, ctx: AnalysisContext, edge: Edge, path=None
    ) -> EdgeCost:
        sizes = self._sizes_for(ctx)
        inter = ctx.inter(edge)
        deterministic = 0.0
        symbolic = set()
        for var in inter:
            size = sizes.get(var.name)
            if size is not None:
                deterministic += size
            else:
                symbolic.add(ctx.aliases.canonical(var))
        return EdgeCost(
            deterministic=deterministic, symbolic=frozenset(symbolic)
        )

    def runtime_edge_cost(self, snap) -> float:
        """Expected bytes per message through this PSE.

        ``data_size`` is profiled by the size-calculation tool on the live
        environment whenever either side traverses the edge; weighting by
        the PSE's path probability makes rarely-executed expensive edges
        cheap in expectation, which is what the min-cut should optimize.
        """
        if self._edge_never_executes(snap):
            # The edge's path never executes: splitting there is free.
            return 0.0
        if snap.data_size is None:
            # Traversed but never measured: fall back to the static bound.
            return snap.static_lower_bound
        return snap.data_size * max(snap.path_probability, 0.0)
