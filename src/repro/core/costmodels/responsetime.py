"""Response-time cost model: per-message latency including the network.

The paper's execution-time model (section 4.2) assumes "the network
resources available to a message sender and receiver pair are guaranteed
and do not change over time" and overlaps communication with computation.
This model drops both assumptions to cover the *other* dynamic the paper
motivates — "dynamic changes in network capacity" (section 1): the cost
of splitting at an edge is the non-overlapped per-message response time

    ``cost(e) = T_mod(e) + β_now · size(e) + T_demod(e)``

where ``β_now`` is the *currently estimated* seconds-per-byte of the
link, fed in at runtime from observed transfers.  When bandwidth
collapses, edges shipping less data win even at higher CPU cost; when
bandwidth recovers, the optimum flips back — adaptation that neither the
data-size model (bandwidth-blind) nor the execution-time model
(network-blind) can express.
"""

from __future__ import annotations

from typing import Optional

from repro.core.context import AnalysisContext
from repro.core.costmodels.base import CostModel, EdgeCost
from repro.ir.interpreter import Edge


class ResponseTimeCostModel(CostModel):
    """Edge cost = estimated sender CPU + wire + receiver CPU time."""

    name = "response-time"

    def __init__(
        self,
        *,
        initial_beta: float = 1e-6,
        link_alpha: float = 0.0,
        estimate_alpha: float = 0.7,
    ) -> None:
        """``link_alpha`` is the link's known per-message setup time
        (deployment knowledge, like the execution-time model's α): it is
        subtracted from observed transfer times so small messages do not
        inflate the per-byte estimate."""
        if initial_beta <= 0:
            raise ValueError("initial_beta must be positive")
        if link_alpha < 0:
            raise ValueError("link_alpha must be non-negative")
        if not (0.0 < estimate_alpha <= 1.0):
            raise ValueError("estimate_alpha must be in (0, 1]")
        #: current seconds-per-byte estimate; update via observe_transfer
        self.beta_estimate = initial_beta
        self.link_alpha = link_alpha
        self._beta_alpha = estimate_alpha

    def observe_transfer(self, size: float, seconds: float) -> None:
        """Fold one observed transfer into the bandwidth estimate."""
        if size <= 0 or seconds < 0:
            return
        sample = max(seconds - self.link_alpha, 0.0) / size
        self.beta_estimate += self._beta_alpha * (
            sample - self.beta_estimate
        )

    def static_edge_cost(
        self, ctx: AnalysisContext, edge: Edge, path=None
    ) -> EdgeCost:
        # Entirely runtime-dependent: times and β are profiled.  Every
        # edge stays a candidate (unique symbolic identity), like the
        # execution-time model.
        return EdgeCost(
            deterministic=0.0,
            symbolic=frozenset((f"$rt@{edge[0]}-{edge[1]}",)),
        )

    def needs_profiling(self, cost: EdgeCost) -> bool:
        return True

    def runtime_edge_cost(self, snap) -> float:
        if self._edge_never_executes(snap):
            # The edge's path never executes: splitting there is free.
            return 0.0
        if snap.data_size is None or snap.t_mod is None or (
            snap.t_demod is None
        ):
            return snap.static_lower_bound
        total = (
            snap.t_mod + self.beta_estimate * snap.data_size + snap.t_demod
        )
        return total * max(snap.path_probability, 0.0)
