"""Cost model minimizing program execution time (paper section 4.2).

The paper models the time to send message *m* as ``T_s(m) = α + β·S(m)``
(eq. 1), assumes communication overlaps computation (eq. 2), and — using
the message-segmentation result of Kim et al. [40] — writes total program
time as

    ``T = n·max(T_mod(1), T_demod(1)) + α + σβ + σ·min(T_mod(1), T_demod(1))``  (eq. 3)

with the segment size constraint ``σ > α / (max(T_mod, T_demod) − β)``
(eq. 4).  When computation dominates and n ≫ 1, the dominant term is
``n·max(T_mod(1), T_demod(1))``: the adaptation target is to *balance the
per-unit load* between sender and receiver.

Statically, the model cannot know per-unit times, so it "assigns an edge
cost that simply depends on the differences in the edge's distances (in
terms of number of instructions) from the start of a path and to the end of
the path" — i.e. the most balanced split point has the lowest static cost.
At runtime, profiled ``T_mod(1)`` / ``T_demod(1)`` give the real cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.context import AnalysisContext
from repro.core.costmodels.base import CostModel, EdgeCost
from repro.errors import CostModelError
from repro.ir.interpreter import Edge


@dataclass(frozen=True)
class NetworkParameters:
    """The α/β link model of eq. 1 plus the unit count n.

    ``alpha``: per-message setup time; ``beta``: per-unit transfer time;
    ``units``: n, the number of data units the application ships.
    """

    alpha: float = 1.0
    beta: float = 0.001
    units: int = 1000


def predicted_total_time(
    t_mod: float, t_demod: float, net: NetworkParameters
) -> float:
    """Eq. 3: total program execution time for a given split.

    ``σ`` is chosen as the smallest value satisfying eq. 4 (the paper's
    stated adaptation target), clamped to at least one unit.
    """
    hi = max(t_mod, t_demod)
    lo = min(t_mod, t_demod)
    denom = hi - net.beta
    if denom <= 0:
        # Communication-bound (violates eq. 2): overlap no longer hides the
        # network, approximate with the serial sum.
        return net.units * (hi + net.beta) + net.alpha
    sigma = max(1.0, math.ceil(net.alpha / denom))
    return net.units * hi + net.alpha + sigma * net.beta + sigma * lo


class ExecutionTimeCostModel(CostModel):
    """Edge cost = predicted total time of splitting at that edge."""

    name = "execution-time"

    def __init__(self, network: Optional[NetworkParameters] = None) -> None:
        self.network = network or NetworkParameters()

    def static_edge_cost(
        self, ctx: AnalysisContext, edge: Edge, path=None
    ) -> EdgeCost:
        if path is None:
            raise CostModelError(
                "the execution-time model's static cost is path-relative; "
                "pass the TargetPath under consideration"
            )
        try:
            pos = path.edges.index(edge)
        except ValueError:
            raise CostModelError(
                f"edge {edge} is not on the supplied path"
            ) from None
        # Distance from path start vs distance to path end, in instructions:
        # the balance heuristic.  The true cost is runtime-dependent, so the
        # cost carries a per-edge symbolic component — no edge is
        # *determinably* cheaper than another, every candidate survives
        # MinCostEdgeSet, and none are deduplicated.  This is how the
        # paper's sensor handler ends up with 21 PSEs along one path: under
        # this model the whole chain of stage boundaries stays available
        # for runtime selection.
        d_start = pos + 1
        d_end = len(path.edges) - pos - 1
        return EdgeCost(
            deterministic=float(abs(d_start - d_end)),
            symbolic=frozenset((f"$time@{edge[0]}-{edge[1]}",)),
        )

    def needs_profiling(self, cost: EdgeCost) -> bool:
        # The static cost is only a balance heuristic; true per-unit times
        # always come from profiling (paper: "the costs in this model
        # heavily depend on runtime profiling").
        return True

    def runtime_edge_cost(self, snap) -> float:
        """Predicted program time (eq. 3) from derived per-unit times.

        ``t_mod`` / ``t_demod`` come from the profiling unit's combination
        of machine-independent work counts with each side's profiled
        seconds-per-cycle rate, so they track both host speed and
        perturbation load.  Falls back to the static lower bound when
        either side has not been profiled yet.
        """
        if self._edge_never_executes(snap):
            # The edge's path never executes: splitting there is free.
            return 0.0
        if snap.t_mod is None or snap.t_demod is None:
            return snap.static_lower_bound
        total = predicted_total_time(snap.t_mod, snap.t_demod, self.network)
        return total * max(snap.path_probability, 0.0)
