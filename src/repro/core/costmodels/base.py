"""Cost-model abstractions (paper sections 2.2 and 4).

A cost model assigns a cost to each Unit Graph edge; edge costs determine
partitioning-plan costs.  Two facts shape the interface:

* Some edge costs are **not statically determinable** — they depend on
  runtime values (e.g. the serialized size of an object behind an
  interface).  Static analysis still needs to *compare* such costs, so an
  :class:`EdgeCost` carries a determinable part, a lower bound, and the set
  of (alias-canonicalized) variables behind the non-determinable part.  Two
  non-determinable costs whose symbolic sets are identical can be compared
  by their determinable parts alone (paper section 4.1).
* Runtime reconfiguration needs a single number per edge, produced from
  profiled statistics (:meth:`CostModel.runtime_edge_cost`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, TYPE_CHECKING

from repro.errors import CostModelError
from repro.ir.interpreter import Edge

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.paths import TargetPath
    from repro.core.context import AnalysisContext
    from repro.core.runtime.profiling import PSEStats


@dataclass(frozen=True)
class EdgeCost:
    """The statically computed cost of a UG edge.

    ``deterministic`` is the statically-known partial cost; ``symbolic`` is
    the set of alias-class representatives whose runtime cost is unknown.
    When ``symbolic`` is empty the cost is fully determinable and equals
    ``deterministic``.  ``INFINITE`` poisons edges that would break
    convexity.
    """

    deterministic: float
    symbolic: FrozenSet[str] = frozenset()
    infinite: bool = False

    @property
    def determinable(self) -> bool:
        return not self.symbolic and not self.infinite

    @property
    def lower_bound(self) -> float:
        """A value the true runtime cost can never be below."""
        if self.infinite:
            return float("inf")
        # Each symbolic variable contributes at least one wire byte.
        return self.deterministic + len(self.symbolic)

    def determinably_less(self, other: "EdgeCost") -> bool:
        """True when self's cost is provably strictly below other's.

        This implements the paper's comparison rules:

        * two determinable costs compare numerically;
        * a determinable cost beats a non-determinable one when it is below
          the latter's lower bound;
        * two non-determinable costs with *identical* symbolic sets compare
          by their deterministic parts;
        * anything else is incomparable (returns False).
        """
        if self.infinite:
            return False
        if other.infinite:
            return True
        if self.determinable and other.determinable:
            return self.deterministic < other.deterministic
        if self.determinable:
            return self.deterministic < other.lower_bound
        if self.symbolic == other.symbolic:
            return self.deterministic < other.deterministic
        return False

    def identical_to(self, other: "EdgeCost") -> bool:
        """True when both costs are equal for every possible execution."""
        return (
            self.infinite == other.infinite
            and self.symbolic == other.symbolic
            and self.deterministic == other.deterministic
        )


INFINITE_COST = EdgeCost(deterministic=float("inf"), infinite=True)


class CostModel:
    """Interface between static analysis and the runtime units."""

    #: short name used in plan metadata and experiment logs
    name: str = "abstract"

    def static_edge_cost(
        self,
        ctx: "AnalysisContext",
        edge: Edge,
        path: Optional["TargetPath"] = None,
    ) -> EdgeCost:
        """Cost of *edge* as visible to static analysis.

        *path* is the TargetPath under consideration; models whose static
        costs are path-relative (the execution-time model) require it.
        """
        raise NotImplementedError

    def needs_profiling(self, cost: EdgeCost) -> bool:
        """Whether runtime profiling is required to know this edge's cost."""
        return not cost.determinable

    @staticmethod
    def _edge_never_executes(snap) -> bool:
        """True when profiling positively established the edge's path never
        executes — as opposed to a fresh unit that has observed nothing.

        ``observed_executions == 0`` means there is no data at all: a
        ``path_probability`` of 0.0 then says nothing about the edge, and
        treating it as "never executes" would price an unknown split at
        zero (the zero-observation bug).
        """
        return (
            snap.path_probability == 0.0
            and snap.splits == 0
            and getattr(snap, "observed_executions", 0) > 0
        )

    def runtime_edge_cost(self, stats: "PSEStats") -> float:
        """Scalar cost of splitting at a PSE given its profiled statistics.

        Weighted by the edge's path probability — used by the
        Reconfiguration Unit as the min-cut edge weight.
        """
        raise NotImplementedError

    def runtime_edge_cost_raw(self, snap) -> float:
        """Unweighted cost of one split at this PSE (no probability factor).

        Used by path-sensitive plan costing, which applies its own path
        weighting.  The default derivation divides the weighted cost back
        out; when the edge was never observed (``path_probability`` 0 with
        no completed executions) it falls back to the static lower bound
        instead of reporting a spurious zero or inflating an unweighted
        fallback by 1/ε.
        """
        if self._edge_never_executes(snap):
            return 0.0
        cost = self.runtime_edge_cost(snap)
        prob = snap.path_probability
        if prob > 0.0:
            return cost / prob
        # Unmeasured: runtime_edge_cost already returned an unweighted
        # fallback (typically the static lower bound) — don't rescale it.
        return max(cost, snap.static_lower_bound)

    def describe(self) -> str:
        return self.name
