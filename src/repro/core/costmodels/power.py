"""Power-consumption cost model (paper section 7, future work).

"We would also like to work on extending cost models to include
considerations of power consumption."  The model charges the
battery-constrained side (by default the receiver — a handheld) for

* CPU energy: joules per abstract cycle executed on that side, and
* radio energy: joules per byte received (or sent).

Statically this behaves like the data-size model scaled by the radio
coefficient, because the receive-side CPU share of an edge is not
statically known: the symbolic part therefore always includes a CPU
placeholder unless the edge ships nothing and leaves nothing to compute.
"""

from __future__ import annotations

from repro.core.context import AnalysisContext
from repro.core.costmodels.base import CostModel, EdgeCost
from repro.core.costmodels.datasize import DataSizeCostModel
from repro.ir.interpreter import Edge


class PowerCostModel(CostModel):
    """Edge cost = estimated joules drawn from the constrained side."""

    name = "power"

    def __init__(
        self,
        *,
        joules_per_byte: float = 1e-6,
        joules_per_cycle: float = 1e-9,
        constrained_side: str = "receiver",
    ) -> None:
        if constrained_side not in ("receiver", "sender"):
            raise ValueError("constrained_side must be 'receiver' or 'sender'")
        self.joules_per_byte = joules_per_byte
        self.joules_per_cycle = joules_per_cycle
        self.constrained_side = constrained_side
        self._datasize = DataSizeCostModel()

    def static_edge_cost(
        self, ctx: AnalysisContext, edge: Edge, path=None
    ) -> EdgeCost:
        base = self._datasize.static_edge_cost(ctx, edge, path)
        if base.infinite:
            return base
        symbolic = set(base.symbolic)
        # CPU share on the constrained side is runtime-dependent.
        symbolic.add(f"$cpu[{self.constrained_side}]")
        return EdgeCost(
            deterministic=base.deterministic * self.joules_per_byte,
            symbolic=frozenset(symbolic),
        )

    def needs_profiling(self, cost: EdgeCost) -> bool:
        # CPU draw is never statically known.
        return True

    def runtime_edge_cost(self, snap) -> float:
        if self._edge_never_executes(snap):
            # The edge's path never executes: splitting there is free.
            return 0.0
        work = (
            snap.work_after
            if self.constrained_side == "receiver"
            else snap.work_before
        )
        if snap.data_size is None and work is None:
            # Nothing measured yet: fall back to the static bound rather
            # than pricing the unknown split at zero joules.
            return snap.static_lower_bound
        radio = (
            snap.data_size * self.joules_per_byte
            if snap.data_size is not None
            else 0.0
        )
        cpu = work * self.joules_per_cycle if work is not None else 0.0
        return (radio + cpu) * max(snap.path_probability, 0.0)
