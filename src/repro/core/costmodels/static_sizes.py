"""Static inference of variable wire sizes.

The data-size cost model needs, for each variable in an INTER set, either
its exact serialized size (when every execution gives it the same size) or
the admission that the size is runtime-dependent.  "Programs can use
interfaces, superclasses and arrays whose sizes are only known at runtime"
(paper section 4.1) — the Python analogues are parameters, call results,
attribute loads and container builds with dynamic contents.

The inference is deliberately conservative: a variable has a known size
only when *all* of its definitions produce values of one statically fixed
wire size.  Booleans (from comparisons/isinstance) are 1 byte; ints and
floats are tag+8; constants measure exactly.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.function import IRFunction
from repro.ir.instructions import Assign, Identity
from repro.ir.values import (
    BinOp,
    Compare,
    Const,
    Expr,
    IsInstance,
    OperandExpr,
    UnaryOp,
    Var,
)
from repro.serialization import format as wf
from repro.serialization.sizing import measure_size

_BOOL_SIZE = wf.TAG_SIZE
_NUM_OPS_INT = {"+", "-", "*", "//", "%", "**", "<<", ">>", "&", "|", "^"}


def infer_static_sizes(fn: IRFunction) -> Dict[str, int]:
    """Map variable names to their exact wire size where determinable.

    Iterates to a fixpoint so sizes propagate through copy chains and
    integer arithmetic.  Variables absent from the result have
    runtime-dependent sizes.
    """
    # Collect definitions per variable.
    defs: Dict[str, list] = {}
    for instr in fn.instrs:
        if isinstance(instr, Assign):
            defs.setdefault(instr.target.name, []).append(instr.expr)
        elif isinstance(instr, Identity):
            # Parameters: unknown size.
            defs.setdefault(instr.target.name, []).append(None)

    sizes: Dict[str, int] = {}
    changed = True
    while changed:
        changed = False
        for name, exprs in defs.items():
            if name in sizes:
                continue
            candidate: Optional[int] = None
            ok = True
            for expr in exprs:
                s = _expr_size(expr, sizes)
                if s is None:
                    ok = False
                    break
                if candidate is None:
                    candidate = s
                elif candidate != s:
                    ok = False
                    break
            if ok and candidate is not None:
                sizes[name] = candidate
                changed = True
    return sizes


def _expr_size(expr: Optional[Expr], sizes: Dict[str, int]) -> Optional[int]:
    if expr is None:  # parameter
        return None
    if isinstance(expr, OperandExpr):
        return _operand_size(expr.operand, sizes)
    if isinstance(expr, (Compare, IsInstance)):
        return _BOOL_SIZE
    if isinstance(expr, BinOp):
        left = _operand_size(expr.left, sizes)
        right = _operand_size(expr.right, sizes)
        if left is None or right is None:
            return None
        # Integer-sized operands under closed numeric ops keep int size;
        # anything else (e.g. string concatenation) is value-dependent.
        int_size = wf.TAG_SIZE + wf.INT_SIZE
        if left == int_size and right == int_size and expr.op in _NUM_OPS_INT:
            return int_size
        if expr.op == "/" and left == int_size and right == int_size:
            return wf.TAG_SIZE + wf.FLOAT_SIZE
        return None
    if isinstance(expr, UnaryOp):
        inner = _operand_size(expr.operand, sizes)
        if expr.op == "not":
            return _BOOL_SIZE
        if expr.op in ("-", "+", "~"):
            return inner
        return None
    return None


def _operand_size(operand, sizes: Dict[str, int]) -> Optional[int]:
    if isinstance(operand, Const):
        value = operand.value
        if isinstance(value, (int, float, str, bytes, bool)) or value is None:
            return measure_size(value)
        return None
    if isinstance(operand, Var):
        return sizes.get(operand.name)
    return None
