"""Method Partitioning core: the paper's primary contribution.

* :class:`MethodPartitioner` — facade: handler + cost model → partitioned
  method.
* :func:`convex_cut` / :class:`ConvexCutResult` / :class:`PSE` — static
  analysis (paper Figure 3).
* :class:`PartitioningPlan` / :class:`PlanRuntime` and the plan helpers —
  flag-based actual partitionings.
* :class:`Modulator` / :class:`Demodulator` / :class:`PartitionedMethod` —
  the generated pair.
* :class:`ContinuationMessage` / :class:`ContinuationCodec` — Remote
  Continuation.
* :mod:`repro.core.runtime` — Profiling and Reconfiguration Units.
* :mod:`repro.core.costmodels` — deployment-time customization criteria.
"""

from repro.core.api import MethodPartitioner
from repro.core.context import AnalysisContext
from repro.core.continuation import ContinuationCodec, ContinuationMessage
from repro.core.convexcut import PSE, ConvexCutResult, convex_cut
from repro.core.placement import (
    Hop,
    PlacementController,
    StreamMeasurements,
    StreamPath,
    best_placement,
    predicted_bottleneck,
)
from repro.core.partitioned import (
    Demodulator,
    DemodulatorResult,
    Modulator,
    ModulatorResult,
    PartitionedMethod,
)
from repro.core.plan import (
    PartitioningPlan,
    PlanRuntime,
    receiver_heavy_plan,
    sender_heavy_plan,
    static_optimal_plan,
    validate_plan,
)

__all__ = [
    "MethodPartitioner",
    "AnalysisContext",
    "convex_cut",
    "ConvexCutResult",
    "PSE",
    "PartitioningPlan",
    "PlanRuntime",
    "receiver_heavy_plan",
    "sender_heavy_plan",
    "static_optimal_plan",
    "validate_plan",
    "Modulator",
    "ModulatorResult",
    "Demodulator",
    "DemodulatorResult",
    "PartitionedMethod",
    "ContinuationMessage",
    "ContinuationCodec",
    "Hop",
    "StreamPath",
    "StreamMeasurements",
    "PlacementController",
    "best_placement",
    "predicted_bottleneck",
]
