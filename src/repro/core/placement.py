"""Modulator placement along a multi-hop data stream (paper section 7).

"In addition, we are developing methods for propagating modulators upward
along a data stream, whenever this is useful for further optimization."

A data stream traverses a chain of hops (sensor → gateway → broker → …
→ client).  The receiver's modulator can live at *any* hop: hops before
it relay the raw event, the placement hop runs the modulator, hops after
it carry only the continuation.  This module provides

* :class:`StreamPath` — the chain description (per-hop CPU speed, per-link
  α/β);
* :func:`predicted_bottleneck` — steady-state per-message time of a given
  placement (the pipeline's slowest stage);
* :func:`best_placement` — argmin over hops;
* :class:`PlacementController` — the runtime policy: migrate the modulator
  upstream/downstream when another hop's predicted bottleneck beats the
  current one by a hysteresis margin *and* the improvement amortizes the
  one-time migration cost within a configured horizon.

Unlike flag flips, moving the modulator IS code migration — the paper's
installation costs (section 5.3) apply — so the controller treats it as
the expensive, rare adaptation it is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import PartitionError


@dataclass(frozen=True)
class Hop:
    """One host along the stream, plus the link toward the next hop.

    The final hop's link parameters are unused (it is the receiver).
    """

    name: str
    cpu_speed: float  # cycles per second
    link_alpha: float = 0.0  # toward the next hop
    link_beta: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu_speed <= 0:
            raise PartitionError(
                f"hop {self.name!r}: cpu_speed must be positive"
            )


@dataclass(frozen=True)
class StreamMeasurements:
    """Profiled per-message quantities the placement decision needs."""

    #: modulator cycles per message
    mod_cycles: float
    #: demodulator cycles per message
    demod_cycles: float
    #: wire bytes of the raw event
    raw_size: float
    #: wire bytes of the continuation message
    continuation_size: float
    #: cycles a relay hop spends forwarding one message
    relay_cycles: float = 10.0


class StreamPath:
    """A chain of hops; index 0 is the sender, the last is the receiver."""

    def __init__(self, hops: Sequence[Hop]) -> None:
        if len(hops) < 2:
            raise PartitionError("a stream path needs at least two hops")
        self.hops: Tuple[Hop, ...] = tuple(hops)

    def __len__(self) -> int:
        return len(self.hops)

    def __getitem__(self, i: int) -> Hop:
        return self.hops[i]

    def placements(self) -> range:
        """Hops that can host the modulator: anywhere but the receiver."""
        return range(len(self.hops) - 1)


def stage_times(
    path: StreamPath, placement: int, m: StreamMeasurements
) -> List[Tuple[str, float]]:
    """Per-stage service times of the pipeline for one placement.

    Stages: each hop's CPU work and each link's transmission time.  Hops
    strictly before the placement relay the raw event; the placement hop
    runs the modulator; hops after it (except the receiver) relay the
    continuation; the receiver runs the demodulator.  Links before the
    placement carry the raw event, links at/after it the continuation.
    """
    if placement not in path.placements():
        raise PartitionError(
            f"placement {placement} invalid for a {len(path)}-hop path"
        )
    stages: List[Tuple[str, float]] = []
    last = len(path) - 1
    for i, hop in enumerate(path.hops):
        if i == last:
            cycles = m.demod_cycles
        elif i == placement:
            cycles = m.mod_cycles + (m.relay_cycles if i > 0 else 0.0)
        elif i == 0:
            cycles = m.relay_cycles  # generation/forwarding
        else:
            cycles = m.relay_cycles
        stages.append((f"cpu:{hop.name}", cycles / hop.cpu_speed))
        if i < last:
            size = m.raw_size if i < placement else m.continuation_size
            stages.append(
                (
                    f"link:{hop.name}->{path[i + 1].name}",
                    hop.link_beta * size,
                )
            )
    return stages


def predicted_bottleneck(
    path: StreamPath, placement: int, m: StreamMeasurements
) -> float:
    """Steady-state per-message time: the slowest pipeline stage."""
    return max(t for _, t in stage_times(path, placement, m))


def best_placement(
    path: StreamPath, m: StreamMeasurements
) -> Tuple[int, float]:
    """The hop minimizing the predicted bottleneck (ties go upstream-most,
    which also minimizes raw-event traffic)."""
    best_idx = 0
    best_time = float("inf")
    for idx in path.placements():
        t = predicted_bottleneck(path, idx, m)
        if t < best_time - 1e-15:
            best_idx, best_time = idx, t
    return best_idx, best_time


class PlacementController:
    """Decides when moving the modulator to another hop pays off.

    Migration ships ``installation_bytes`` across every link between the
    current and the target hop; the controller migrates only when the
    predicted per-message saving, over ``amortization_messages`` messages,
    exceeds that cost *and* the relative improvement clears
    ``hysteresis`` (no flapping on noise).
    """

    def __init__(
        self,
        path: StreamPath,
        *,
        installation_bytes: float,
        initial_placement: int = 0,
        hysteresis: float = 0.1,
        amortization_messages: int = 200,
    ) -> None:
        if initial_placement not in path.placements():
            raise PartitionError(
                f"initial placement {initial_placement} invalid"
            )
        if not (0.0 <= hysteresis):
            raise PartitionError("hysteresis must be non-negative")
        self.path = path
        self.installation_bytes = installation_bytes
        self.placement = initial_placement
        self.hysteresis = hysteresis
        self.amortization_messages = amortization_messages
        self.migrations: List[Tuple[int, int]] = []

    def migration_cost_seconds(self, target: int) -> float:
        """Time to ship the modulator from the current hop to *target*."""
        lo, hi = sorted((self.placement, target))
        total = 0.0
        for i in range(lo, hi):
            hop = self.path[i]
            total += hop.link_alpha + hop.link_beta * self.installation_bytes
        return total

    def consider(self, m: StreamMeasurements) -> Optional[int]:
        """Return the new placement when migration is worth it, else None."""
        current_time = predicted_bottleneck(self.path, self.placement, m)
        target, target_time = best_placement(self.path, m)
        if target == self.placement:
            return None
        saving = current_time - target_time
        if saving <= current_time * self.hysteresis:
            return None
        if saving * self.amortization_messages < self.migration_cost_seconds(
            target
        ):
            return None
        self.migrations.append((self.placement, target))
        self.placement = target
        return target
