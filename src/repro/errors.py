"""Exception hierarchy for the Method Partitioning reproduction.

Every error raised by this library derives from :class:`ReproError`, so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IRError(ReproError):
    """Base class for errors in the IR substrate."""


class LoweringError(IRError):
    """A Python handler uses a construct outside the supported subset."""


class IRValidationError(IRError):
    """An :class:`~repro.ir.function.IRFunction` is structurally invalid."""


class InterpreterError(IRError):
    """A runtime failure while interpreting IR."""


class UnknownFunctionError(InterpreterError):
    """A handler calls a function that was never registered."""


class AnalysisError(ReproError):
    """Base class for static-analysis failures."""


class PartitionError(ReproError):
    """Base class for failures in partition-plan construction or use."""


class InvalidPlanError(PartitionError):
    """A partitioning plan does not form a valid convex cut."""


class ContinuationError(ReproError):
    """A remote continuation could not be captured or restored."""


class SerializationError(ReproError):
    """An object could not be serialized or deserialized."""


class UnsizedObjectError(SerializationError):
    """An object's size could not be computed."""


class SimulationError(ReproError):
    """Base class for discrete-event-simulation failures."""


class ChannelError(ReproError):
    """Base class for event-channel (JECho substrate) failures."""


class TransportError(ChannelError):
    """Base class for transport-layer failures (any Transport kind)."""


class ConnectionLostError(TransportError):
    """The peer went away: closed transport, dropped or refused
    connection.  Reconnecting transports raise this only when retry is
    impossible (the transport was closed) or exhausted."""


class SendTimeoutError(TransportError):
    """A send did not complete within the transport's send timeout."""


class FramingError(TransportError):
    """A byte stream violates the network frame layout (bad magic,
    unknown version or frame kind, oversized frame, corrupt length)."""


class ProtocolError(TransportError):
    """Peers disagree about the wire protocol (handshake version
    mismatch, unexpected frame for the negotiated role)."""


class CostModelError(ReproError):
    """A cost model was asked for a cost it cannot produce."""
