"""Modulator installation cost accounting (paper section 5.3).

The paper excludes modulator-installation costs from its measurements but
quantifies the footprint: "each additional PSE will require a new redirect
argument class (around 500 to 800 bytes in our experiments), and there are
increases [in] the sizes of the modulator and demodulator classes due to
instrumentation codes (about 150 bytes per PSE)".

:func:`estimate_installation` reproduces that accounting for a partitioned
method, so the overhead ablation can report the same quantities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partitioned import PartitionedMethod
from repro.ir.printer import format_function

#: per-PSE redirect-argument class footprint (paper: 500-800 bytes)
REDIRECT_CLASS_BYTES = 650
#: per-PSE instrumentation code in modulator+demodulator (paper: ~150 bytes)
INSTRUMENTATION_BYTES_PER_PSE = 150


@dataclass
class ModulatorInstallation:
    """Footprint of installing one modulator at a sender."""

    #: bytes of the handler program itself (textual IR as the mobile code)
    code_bytes: int
    pse_count: int
    redirect_class_bytes: int
    instrumentation_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.code_bytes
            + self.redirect_class_bytes
            + self.instrumentation_bytes
        )


def estimate_installation(partitioned: PartitionedMethod) -> ModulatorInstallation:
    """Estimate the one-time cost of shipping this modulator to a sender."""
    code = format_function(partitioned.function).encode("utf-8")
    n_pse = len(partitioned.pses)
    return ModulatorInstallation(
        code_bytes=len(code),
        pse_count=n_pse,
        redirect_class_bytes=n_pse * REDIRECT_CLASS_BYTES,
        instrumentation_bytes=n_pse * INSTRUMENTATION_BYTES_PER_PSE,
    )
