"""Third-party modulator placement: the Active-Broker extension.

The paper's section 7: "Future work conducted in our group is integrating
Third Party Derivation [28] with Method Partitioning, which allows a
modulator to operate inside a 'third party'."  This module implements that
extension over the event-channel substrate:

* the *sender* ships raw events over an **uplink** to a broker;
* the **broker** hosts the receiver's modulator (and, being a third party
  with cycles to spare, the Reconfiguration Unit — paper section 2.5
  notes third-party placement is "appropriate when repartitioning requires
  large amounts of computation");
* the broker's modulator filters/transforms and ships continuations over
  the **downlink** to the receiver's demodulator.

This wins when the sender is too weak to run the modulator itself (a bare
sensor) while the expensive network segment is the downlink: the broker
then plays the modulator's traffic-reduction role without burdening the
device.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.partitioned import PartitionedMethod
from repro.core.plan import PartitioningPlan
from repro.core.runtime.triggers import FeedbackTrigger
from repro.errors import ChannelError
from repro.jecho.events import ContinuationEnvelope, EventEnvelope
from repro.jecho.transport import LocalTransport, Transport
from repro.obs.trace import ContinuationShipped
from repro.serialization import SerializerRegistry, measure_size

_sub_ids = itertools.count(1000)


@dataclass
class BrokerStats:
    events_published: int = 0
    events_relayed: int = 0
    events_filtered_at_broker: int = 0
    continuations_sent: int = 0
    results_delivered: int = 0
    plan_updates: int = 0


class BrokerSubscription:
    """One receiver attached through the broker."""

    def __init__(
        self,
        channel: "BrokerChannel",
        partitioned: PartitionedMethod,
        *,
        plan: Optional[PartitioningPlan] = None,
        trigger: Optional[FeedbackTrigger] = None,
        sample_period: int = 1,
        on_result: Optional[Callable[[object], None]] = None,
    ) -> None:
        self.id = next(_sub_ids)
        self.channel = channel
        self.partitioned = partitioned
        self.on_result = on_result
        self.stats = BrokerStats()
        obs = channel.obs
        if obs is not None:
            partitioned.interpreter.attach_observability(obs)
        self.profiling = partitioned.make_profiling_unit(
            sample_period=sample_period, obs=obs
        )
        # The modulator is DEPLOYED AT THE BROKER, not the sender.
        self.modulator = partitioned.make_modulator(
            plan=plan, profiling=self.profiling, obs=obs
        )
        self.demodulator = partitioned.make_demodulator(
            profiling=self.profiling, obs=obs
        )
        # Reconfiguration Unit co-located with the broker's modulator.
        self.reconfig = (
            partitioned.make_reconfiguration_unit(
                trigger=trigger, location="third-party", obs=obs
            )
            if trigger is not None
            else None
        )

    # -- broker side -------------------------------------------------------

    def _broker_receive(self, envelope: EventEnvelope) -> None:
        """The broker runs the modulator on the relayed raw event."""
        self.stats.events_relayed += 1
        # Continue the uplink's trace through the relay hop: the broker's
        # modulate span parents under the uplink ship span.
        result = self.modulator.process(
            envelope.payload, trace_ctx=envelope.trace
        )
        if result.completed:
            self._deliver(result.value)
            self._maybe_reconfigure()
            return
        if result.message is None:
            self.stats.events_filtered_at_broker += 1
            self._maybe_reconfigure()
            return
        out = ContinuationEnvelope(
            continuation=result.message, subscription_id=self.id
        )
        size = self.partitioned.codec.size(result.message)
        self.stats.continuations_sent += 1
        obs = self.channel.obs
        if obs is not None:
            obs.metrics.counter("broker.continuations_sent").inc()
            obs.trace.record(
                ContinuationShipped(
                    pse_id=str(result.message.pse_id), bytes=float(size)
                )
            )
        self.channel.downlink.send(self._receiver_receive, out, size)
        self._maybe_reconfigure()

    def _maybe_reconfigure(self) -> None:
        if self.reconfig is None:
            return
        plan = self.reconfig.consider(self.profiling)
        if plan is not None:
            # Co-located with the modulator: direct flag flips.
            self.modulator.apply_plan(plan)
            self.stats.plan_updates += 1

    # -- receiver side -------------------------------------------------------

    def _receiver_receive(self, envelope: ContinuationEnvelope) -> None:
        outcome = self.demodulator.process(envelope.continuation)
        self._deliver(outcome.value)

    def _deliver(self, value: object) -> None:
        self.stats.results_delivered += 1
        if self.on_result is not None:
            self.on_result(value)


class BrokerChannel:
    """An event channel whose modulators run inside a broker."""

    def __init__(
        self,
        name: str = "broker-channel",
        *,
        uplink: Optional[Transport] = None,
        downlink: Optional[Transport] = None,
        serializer_registry: Optional[SerializerRegistry] = None,
        obs=None,
    ) -> None:
        self.name = name
        self.uplink = uplink or LocalTransport()
        self.downlink = downlink or LocalTransport()
        self.serializer_registry = serializer_registry or SerializerRegistry()
        self.obs = obs
        if obs is not None:
            self.uplink.attach_observability(obs, name="transport.uplink")
            self.downlink.attach_observability(obs, name="transport.downlink")
        self.subscriptions: List[BrokerSubscription] = []

    def subscribe_partitioned(
        self,
        partitioned: PartitionedMethod,
        *,
        plan: Optional[PartitioningPlan] = None,
        trigger: Optional[FeedbackTrigger] = None,
        sample_period: int = 1,
        on_result: Optional[Callable[[object], None]] = None,
    ) -> BrokerSubscription:
        sub = BrokerSubscription(
            self,
            partitioned,
            plan=plan,
            trigger=trigger,
            sample_period=sample_period,
            on_result=on_result,
        )
        self.subscriptions.append(sub)
        return sub

    def unsubscribe(self, sub: BrokerSubscription) -> None:
        try:
            self.subscriptions.remove(sub)
        except ValueError:
            raise ChannelError(
                f"subscription {sub.id} not on channel"
            ) from None

    def publish(self, event: object) -> None:
        """The sender relays the raw event to the broker — no handler code
        runs on the sender at all."""
        tracer = self.obs.tracing if self.obs is not None else None
        for sub in list(self.subscriptions):
            sub.stats.events_published += 1
            size = measure_size(
                event, self.serializer_registry, use_self_sizing=True
            )
            envelope = EventEnvelope(event)
            if tracer is not None:
                trace_id = tracer.start_trace()
                if trace_id is not None:
                    envelope.trace = (trace_id, None)
            self.uplink.send(sub._broker_receive, envelope, size)
