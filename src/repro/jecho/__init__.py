"""JECho-style distributed event system substrate.

* :class:`EventChannel` / :class:`Subscription` — pub/sub with plain and
  Method Partitioning subscriptions (the latter deploy modulators into
  senders).
* :class:`LocalTransport` / :class:`SimLinkTransport` — in-process and
  simulated-network delivery.
* :mod:`repro.jecho.events` — the four wire envelopes.
* :func:`estimate_installation` — modulator footprint accounting
  (paper section 5.3).
"""

from repro.jecho.broker import (
    BrokerChannel,
    BrokerStats,
    BrokerSubscription,
)
from repro.jecho.channel import (
    EventChannel,
    EventSource,
    PairState,
    Subscription,
    SubscriptionStats,
)
from repro.jecho.deployment import (
    INSTRUMENTATION_BYTES_PER_PSE,
    REDIRECT_CLASS_BYTES,
    ModulatorInstallation,
    estimate_installation,
)
from repro.jecho.events import (
    ContinuationEnvelope,
    EventEnvelope,
    FeedbackEnvelope,
    PlanEnvelope,
)
from repro.jecho.transport import LocalTransport, SimLinkTransport, Transport

__all__ = [
    "EventChannel",
    "EventSource",
    "PairState",
    "Subscription",
    "SubscriptionStats",
    "BrokerChannel",
    "BrokerSubscription",
    "BrokerStats",
    "Transport",
    "LocalTransport",
    "SimLinkTransport",
    "EventEnvelope",
    "ContinuationEnvelope",
    "FeedbackEnvelope",
    "PlanEnvelope",
    "ModulatorInstallation",
    "estimate_installation",
    "REDIRECT_CLASS_BYTES",
    "INSTRUMENTATION_BYTES_PER_PSE",
]
