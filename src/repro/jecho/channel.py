"""JECho-style event channels with Method Partitioning subscriptions.

A channel connects event *sources* (senders) to *sinks* (receivers), in
the many-to-many shape of paper Figure 1: "a receiver can apply handlers
to messages received from multiple remote components, and a single method
handler can be used to handle messages from multiple senders ... multiple
modulators (some of which may be derived from the same handling methods)
may reside in a single sender."

Two subscription styles exist:

* **plain** — the baseline: the full event ships to the receiver, whose
  handler runs there (the manual versions of the paper's evaluation are
  built from plain subscriptions);
* **partitioned** — Method Partitioning: subscribing deploys the
  receiver's *modulator* into **every** sender — one modulator instance,
  with its own flags, profiling and reconfiguration state, per
  (sender, subscription) pair, because different pairs see different data
  and resources and therefore settle on different splits.

The channel is transport-agnostic: a :class:`LocalTransport` gives a real
in-process system (examples, tests); a :class:`SimLinkTransport` pays for
every byte on a simulated link (experiment harnesses).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.continuation import ContinuationMessage
from repro.core.partitioned import Demodulator, Modulator, PartitionedMethod
from repro.core.plan import PartitioningPlan
from repro.core.runtime.profiling import ProfilingUnit
from repro.core.runtime.reconfig import ReconfigurationUnit
from repro.core.runtime.triggers import FeedbackTrigger
from repro.errors import ChannelError
from repro.jecho.events import (
    ContinuationEnvelope,
    EventEnvelope,
    PlanEnvelope,
)
from repro.jecho.transport import LocalTransport, Transport
from repro.obs.trace import ContinuationShipped
from repro.serialization import SerializerRegistry, measure_size

_sub_ids = itertools.count(1)
_source_ids = itertools.count(1)

#: Called at the receiver with each completed handler result.
ResultCallback = Callable[[object], None]


@dataclass
class SubscriptionStats:
    """Per-subscription traffic/outcome counters (summed over pairs)."""

    events_published: int = 0
    continuations_sent: int = 0
    events_filtered: int = 0
    results_delivered: int = 0
    plan_updates: int = 0


class EventSource:
    """One sender endpoint: where deployed modulators live."""

    def __init__(self, channel: "EventChannel", name: str) -> None:
        self.id = next(_source_ids)
        self.channel = channel
        self.name = name

    def publish(self, event: object) -> None:
        """Submit one event from this sender to every subscription."""
        for sub in list(self.channel.subscriptions):
            sub.push(event, self)

    def __repr__(self) -> str:
        return f"<EventSource {self.name!r}>"


class PairState:
    """Method Partitioning state of one (sender, subscription) pair.

    Each pair owns a modulator instance (its flags are the pair's current
    partitioning), a profiling unit, and optionally a Reconfiguration
    Unit — "different sender/receiver pairs may choose different cost
    models" (paper section 2.2); here each pair at least profiles and
    adapts independently.
    """

    def __init__(
        self,
        subscription: "Subscription",
        source: EventSource,
    ) -> None:
        self.subscription = subscription
        self.source = source
        partitioned = subscription.partitioned
        obs = subscription.channel.obs
        if obs is not None:
            partitioned.interpreter.attach_observability(obs)
        self.profiling: ProfilingUnit = partitioned.make_profiling_unit(
            sample_period=subscription.sample_period, obs=obs
        )
        self.modulator: Modulator = partitioned.make_modulator(
            plan=subscription.initial_plan, profiling=self.profiling, obs=obs
        )
        # One demodulator per pair so concurrent continuations from
        # different senders never share profiling state mid-flight.
        self.demodulator: Demodulator = partitioned.make_demodulator(
            profiling=self.profiling, obs=obs
        )
        self.reconfig: Optional[ReconfigurationUnit] = None
        if subscription.trigger_factory is not None:
            self.reconfig = partitioned.make_reconfiguration_unit(
                trigger=subscription.trigger_factory(),
                location="receiver",
                obs=obs,
            )
        self.plan_updates = 0


class Subscription:
    """One sink's attachment to a channel."""

    def __init__(
        self,
        channel: "EventChannel",
        *,
        partitioned: Optional[PartitionedMethod] = None,
        plain_handler: Optional[Callable[[object], object]] = None,
        plan: Optional[PartitioningPlan] = None,
        trigger_factory: Optional[Callable[[], FeedbackTrigger]] = None,
        sample_period: int = 1,
        on_result: Optional[ResultCallback] = None,
    ) -> None:
        if (partitioned is None) == (plain_handler is None):
            raise ChannelError(
                "a subscription is either partitioned or plain, not both"
            )
        self.id = next(_sub_ids)
        self.channel = channel
        self.partitioned = partitioned
        self.plain_handler = plain_handler
        self.initial_plan = plan
        self.trigger_factory = trigger_factory
        self.sample_period = sample_period
        self.on_result = on_result
        self.stats = SubscriptionStats()

        self._pairs: Dict[int, PairState] = {}
        if partitioned is not None:
            for source in channel.sources:
                self._deploy(source)

    # -- deployment ---------------------------------------------------------

    def _deploy(self, source: EventSource) -> PairState:
        """Install this sink's modulator into *source* (paper Figure 1)."""
        pair = PairState(self, source)
        self._pairs[source.id] = pair
        return pair

    def pair_for(self, source: EventSource) -> PairState:
        pair = self._pairs.get(source.id)
        if pair is None:
            raise ChannelError(
                f"source {source.name!r} has no modulator for "
                f"subscription {self.id}"
            )
        return pair

    @property
    def pairs(self) -> List[PairState]:
        return list(self._pairs.values())

    # -- back-compat single-sender views ------------------------------------

    @property
    def modulator(self) -> Modulator:
        """The default source's modulator (single-sender convenience)."""
        return self.pair_for(self.channel.default_source).modulator

    @property
    def profiling(self) -> ProfilingUnit:
        return self.pair_for(self.channel.default_source).profiling

    @property
    def demodulator(self) -> Demodulator:
        return self.pair_for(self.channel.default_source).demodulator

    @property
    def reconfig(self) -> Optional[ReconfigurationUnit]:
        return self.pair_for(self.channel.default_source).reconfig

    # -- sender side ------------------------------------------------------------

    def push(self, event: object, source: EventSource) -> None:
        """Run the sender-side share for one published event."""
        self.stats.events_published += 1
        if self.partitioned is None:
            size = measure_size(
                event, self.channel.serializer_registry, use_self_sizing=True
            )
            envelope = EventEnvelope(payload=event)
            obs = self.channel.obs
            tracer = obs.tracing if obs is not None else None
            if tracer is not None:
                trace_id = tracer.start_trace()
                if trace_id is not None:
                    envelope.trace = (trace_id, None)
            self.channel.transport.send(self._receive_event, envelope, size)
            return

        pair = self.pair_for(source)
        result = pair.modulator.process(event)
        if result.completed:
            # Handler finished entirely in the sender (no StopNode hit).
            self._deliver_result(result.value)
            return
        if result.elided:
            self.stats.events_filtered += 1
            return
        envelope = ContinuationEnvelope(
            continuation=result.message, subscription_id=self.id
        )
        size = self.partitioned.codec.size(result.message)
        self.stats.continuations_sent += 1
        obs = self.channel.obs
        if obs is not None:
            obs.metrics.counter("channel.continuations_sent").inc()
            obs.trace.record(
                ContinuationShipped(
                    pse_id=str(result.message.pse_id), bytes=float(size)
                )
            )
        self.channel.transport.send(
            lambda env, p=pair: self._receive_continuation(env, p),
            envelope,
            size,
        )

    # -- receiver side --------------------------------------------------------------

    def _receive_event(self, envelope: EventEnvelope) -> None:
        obs = self.channel.obs
        tracer = obs.tracing if obs is not None else None
        if tracer is not None and envelope.trace is not None:
            span = tracer.begin(
                "handle",
                trace_id=envelope.trace[0],
                parent_id=envelope.trace[1],
            )
            value = self.plain_handler(envelope.payload)
            tracer.end(span)
        else:
            value = self.plain_handler(envelope.payload)
        self._deliver_result(value)

    def _receive_continuation(
        self, envelope: ContinuationEnvelope, pair: PairState
    ) -> None:
        outcome = pair.demodulator.process(envelope.continuation)
        self._deliver_result(outcome.value)
        self._maybe_reconfigure(pair)

    def _deliver_result(self, value: object) -> None:
        self.stats.results_delivered += 1
        if self.on_result is not None:
            self.on_result(value)

    def _maybe_reconfigure(self, pair: PairState) -> None:
        """Receiver-located Reconfiguration Unit: trigger → plan update."""
        if pair.reconfig is None:
            return
        plan = pair.reconfig.consider(pair.profiling)
        if plan is None:
            return
        envelope = PlanEnvelope(subscription_id=self.id, plan=plan)
        obs = self.channel.obs
        if obs is not None and obs.tracing is not None:
            # Chain the update under the recompute's control-plane span.
            envelope.trace = pair.reconfig.last_trace_ctx
        # Plan updates are tiny: a few flags.
        size = 16.0 + 8.0 * len(plan.active)
        self.channel.feedback_transport.send(
            lambda env, p=pair: self._apply_plan_update(env, p),
            envelope,
            size,
        )

    def _apply_plan_update(
        self, envelope: PlanEnvelope, pair: PairState
    ) -> None:
        obs = self.channel.obs
        tracer = obs.tracing if obs is not None else None
        if tracer is not None and envelope.trace is not None:
            span = tracer.begin(
                "plan.apply",
                trace_id=envelope.trace[0],
                parent_id=envelope.trace[1],
                attrs={"plan": envelope.plan.name},
            )
            pair.modulator.apply_plan(envelope.plan)
            tracer.end(span)
        else:
            pair.modulator.apply_plan(envelope.plan)
        pair.plan_updates += 1
        self.stats.plan_updates += 1


class EventChannel:
    """A named channel with any number of sources and subscriptions."""

    def __init__(
        self,
        name: str = "channel",
        *,
        transport: Optional[Transport] = None,
        feedback_transport: Optional[Transport] = None,
        serializer_registry: Optional[SerializerRegistry] = None,
        obs=None,
    ) -> None:
        self.name = name
        self.transport = transport or LocalTransport()
        self.feedback_transport = feedback_transport or LocalTransport()
        self.serializer_registry = serializer_registry or SerializerRegistry()
        self.obs = obs
        if obs is not None:
            self.transport.attach_observability(obs, name="transport.data")
            self.feedback_transport.attach_observability(
                obs, name="transport.feedback"
            )
        self.subscriptions: List[Subscription] = []
        self.sources: List[EventSource] = []
        self.default_source = self.add_source("default")

    # -- sources ------------------------------------------------------------

    def add_source(self, name: Optional[str] = None) -> EventSource:
        """Attach a sender; existing subscriptions deploy modulators to it."""
        source = EventSource(self, name or f"source{len(self.sources)}")
        self.sources.append(source)
        for sub in self.subscriptions:
            if sub.partitioned is not None:
                sub._deploy(source)
        return source

    # -- subscriptions ---------------------------------------------------------

    def subscribe_partitioned(
        self,
        partitioned: PartitionedMethod,
        *,
        plan: Optional[PartitioningPlan] = None,
        trigger: Optional[FeedbackTrigger] = None,
        trigger_factory: Optional[Callable[[], FeedbackTrigger]] = None,
        sample_period: int = 1,
        on_result: Optional[ResultCallback] = None,
    ) -> Subscription:
        """Attach a Method Partitioning sink; deploys modulators to every
        source.

        ``trigger`` is the single-sender convenience (it becomes the
        default source's trigger and other pairs share its construction via
        ``trigger_factory`` when given).  With multiple sources, pass
        ``trigger_factory`` so each pair adapts independently.
        """
        if trigger is not None and trigger_factory is not None:
            raise ChannelError("pass either trigger or trigger_factory")
        factory = trigger_factory
        if trigger is not None:
            first = [trigger]

            def factory():  # first pair gets the given instance
                if first:
                    return first.pop()
                raise ChannelError(
                    "a single trigger instance cannot serve multiple "
                    "sources; pass trigger_factory instead"
                )

        sub = Subscription(
            self,
            partitioned=partitioned,
            plan=plan,
            trigger_factory=factory,
            sample_period=sample_period,
            on_result=on_result,
        )
        self.subscriptions.append(sub)
        return sub

    def subscribe_plain(
        self,
        handler: Callable[[object], object],
        *,
        on_result: Optional[ResultCallback] = None,
    ) -> Subscription:
        """Attach a conventional sink: full events ship, handler runs there."""
        sub = Subscription(self, plain_handler=handler, on_result=on_result)
        self.subscriptions.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        try:
            self.subscriptions.remove(sub)
        except ValueError:
            raise ChannelError(f"subscription {sub.id} not on channel") from None

    def publish(self, event: object) -> None:
        """Submit one event from the default source (single-sender use)."""
        self.default_source.publish(event)
