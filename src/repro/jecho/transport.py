"""Transports: how envelopes move from sender to receiver.

* :class:`LocalTransport` — synchronous in-process delivery; the examples
  and tests use it to exercise the full modulator/demodulator path without
  a simulator.
* :class:`SimLinkTransport` — delivery through a :class:`repro.simnet.Link`
  with sizes paid on the simulated network; used by the experiment
  harnesses.

Both count messages and bytes so experiments can report traffic.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.simnet.link import Link
from repro.simnet.simulator import Simulator

#: A delivery target: any callable accepting the envelope.
Destination = Callable[[object], None]


class Transport:
    """Base transport with traffic accounting."""

    def __init__(self) -> None:
        self.messages_sent = 0
        self.bytes_sent = 0.0
        self.obs = None
        self._c_messages = None
        self._c_bytes = None
        self._h_sizes = None

    def attach_observability(self, obs, *, name: str = "transport") -> None:
        """Register this transport's counters under ``<name>.*``.

        Counter objects are cached so :meth:`send` pays no registry lookup;
        the size histogram exposes per-message wire overhead.
        """
        self.obs = obs
        self._c_messages = obs.metrics.counter(f"{name}.messages")
        self._c_bytes = obs.metrics.counter(f"{name}.bytes")
        self._h_sizes = obs.metrics.histogram(f"{name}.message_bytes")

    def send(self, destination: Destination, envelope: object, size: float) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        if self._c_messages is not None:
            self._c_messages.inc()
            self._c_bytes.inc(size)
            self._h_sizes.observe(size)
        self._deliver(destination, envelope, size)

    def _deliver(
        self, destination: Destination, envelope: object, size: float
    ) -> None:
        raise NotImplementedError


class LocalTransport(Transport):
    """Immediate, zero-latency delivery (same process)."""

    def _deliver(
        self, destination: Destination, envelope: object, size: float
    ) -> None:
        destination(envelope)


class SimLinkTransport(Transport):
    """Delivery over a simulated link; arrival is scheduled on the DES."""

    def __init__(self, sim: Simulator, link: Link) -> None:
        super().__init__()
        self.sim = sim
        self.link = link

    def _deliver(
        self, destination: Destination, envelope: object, size: float
    ) -> None:
        arrival = self.link.delivery_time(size)
        self.sim.schedule(arrival - self.sim.now, destination, envelope)
