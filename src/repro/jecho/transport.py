"""Transports: how envelopes move from sender to receiver.

* :class:`LocalTransport` — synchronous in-process delivery; the examples
  and tests use it to exercise the full modulator/demodulator path without
  a simulator.
* :class:`SimLinkTransport` — delivery through a :class:`repro.simnet.Link`
  with sizes paid on the simulated network; used by the experiment
  harnesses.

Both count messages and bytes so experiments can report traffic.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConnectionLostError, TransportError
from repro.jecho.events import envelope_trace, set_envelope_trace
from repro.simnet.link import Link
from repro.simnet.simulator import Simulator

#: A delivery target: any callable accepting the envelope.
Destination = Callable[[object], None]


class Transport:
    """Base transport with traffic accounting.

    Transport-layer failures raise the typed hierarchy from
    :mod:`repro.errors`: :class:`~repro.errors.TransportError` for
    invalid use, :class:`~repro.errors.ConnectionLostError` for sends on
    a closed transport, :class:`~repro.errors.SendTimeoutError` for
    timed-out sends (networked transports).  Exceptions raised *by the
    destination handler* are application errors and propagate unchanged.
    """

    def __init__(self) -> None:
        self.messages_sent = 0
        self.bytes_sent = 0.0
        self.closed = False
        self.obs = None
        self._c_messages = None
        self._c_bytes = None
        self._h_sizes = None
        #: host lane for ship spans in the trace timeline
        self._trace_host: Optional[str] = None
        #: name of the last attach, so re-attachment can tell whether
        #: ``_trace_host`` was attach-derived or subclass-pinned
        self._obs_name: Optional[str] = None

    def attach_observability(self, obs, *, name: str = "transport") -> None:
        """Register this transport's counters under ``<name>.*``.

        Counter objects are cached so :meth:`send` pays no registry lookup;
        the size histogram exposes per-message wire overhead.  Repeated
        attachment (harness re-runs, a transport moved to a fresh
        :class:`~repro.obs.Observability`) *replaces* the cached handles —
        instruments are get-or-create in the registry, so attaching twice
        to the same registry reuses the same counters rather than
        double-registering, and attaching under a new name stops feeding
        the old one.
        """
        self.obs = obs
        self._c_messages = obs.metrics.counter(f"{name}.messages")
        self._c_bytes = obs.metrics.counter(f"{name}.bytes")
        self._h_sizes = obs.metrics.histogram(f"{name}.message_bytes")
        if self._trace_host is None or self._trace_host == self._obs_name:
            # attach-derived lane (not pinned by a subclass): follow the
            # new name instead of keeping a stale label forever
            self._trace_host = name
        self._obs_name = name

    def close(self) -> None:
        """Release the transport; subsequent sends raise
        :class:`~repro.errors.ConnectionLostError`."""
        self.closed = True

    def send(self, destination: Destination, envelope: object, size: float) -> None:
        if self.closed:
            raise ConnectionLostError(
                f"send on closed transport {type(self).__name__}"
            )
        if size < 0:
            raise TransportError(f"negative message size {size!r}")
        self.messages_sent += 1
        self.bytes_sent += size
        if self._c_messages is not None:
            self._c_messages.inc()
            self._c_bytes.inc(size)
            self._h_sizes.observe(size)
        tracer = self.obs.tracing if self.obs is not None else None
        if tracer is not None:
            ctx = envelope_trace(envelope)
            if ctx is not None:
                span = tracer.begin(
                    "ship",
                    trace_id=ctx[0],
                    parent_id=ctx[1],
                    host=self._trace_host or "wire",
                    attrs={"bytes": size},
                )
                # Re-parent the receiver side under the ship span so the
                # trace reads modulate → ship → demodulate.
                set_envelope_trace(envelope, (ctx[0], span.span_id))
                self._deliver(destination, envelope, size)
                tracer.end(span, end=self._wire_end())
                return
        self._deliver(destination, envelope, size)

    def _wire_end(self) -> Optional[float]:
        """When delivery is scheduled for later, the arrival instant;
        None means "close at clock() now" (synchronous delivery)."""
        return None

    def _deliver(
        self, destination: Destination, envelope: object, size: float
    ) -> None:
        raise NotImplementedError


class LocalTransport(Transport):
    """Immediate, zero-latency delivery (same process).

    With tracing on, the ship span *encloses* the handler's spans (the
    destination runs synchronously inside it) — correct nesting for a
    zero-latency hop.
    """

    def _deliver(
        self, destination: Destination, envelope: object, size: float
    ) -> None:
        destination(envelope)


class SimLinkTransport(Transport):
    """Delivery over a simulated link; arrival is scheduled on the DES."""

    def __init__(self, sim: Simulator, link: Link) -> None:
        super().__init__()
        self.sim = sim
        self.link = link
        self._trace_host = link.name
        self._last_arrival: Optional[float] = None

    def _wire_end(self) -> Optional[float]:
        return self._last_arrival

    def _deliver(
        self, destination: Destination, envelope: object, size: float
    ) -> None:
        arrival = self.link.delivery_time(size)
        self._last_arrival = arrival
        self.sim.schedule(arrival - self.sim.now, destination, envelope)
