"""Message envelopes of the event system.

Four message kinds travel between a sender and a receiver:

* :class:`EventEnvelope` — an *unmodulated* application event (used by
  subscriptions without Method Partitioning, i.e. the manual baselines);
* :class:`ContinuationEnvelope` — a modulated event: the PSE id plus the
  handed-over live variables (paper Figure 2);
* :class:`FeedbackEnvelope` — profiling feedback from the demodulator side
  to the Reconfiguration Unit;
* :class:`PlanEnvelope` — a new partitioning plan pushed to the modulator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.continuation import ContinuationMessage
from repro.core.plan import PartitioningPlan

_seq = itertools.count()


def next_sequence() -> int:
    return next(_seq)


@dataclass
class EventEnvelope:
    """A raw application event on the wire."""

    payload: object
    seq: int = field(default_factory=next_sequence)
    #: causal trace context ``(trace_id, parent_span_id)``, when traced
    trace: Optional[Tuple[int, int]] = None


@dataclass
class ContinuationEnvelope:
    """A modulated event: continuation message plus bookkeeping."""

    continuation: ContinuationMessage
    subscription_id: int
    seq: int = field(default_factory=next_sequence)


@dataclass
class FeedbackEnvelope:
    """Profiling feedback (PSE stats snapshot), receiver → reconfigurator."""

    subscription_id: int
    #: edge -> (t_demod mean, t_demod count) — the demodulator-side share
    demod_stats: Dict[Tuple[int, int], Tuple[float, int]]
    seq: int = field(default_factory=next_sequence)
    trace: Optional[Tuple[int, int]] = None


@dataclass
class PlanEnvelope:
    """A plan update, reconfigurator → modulator.

    ``version`` is the idempotency key: the reconfigurator assigns a
    per-subscription monotonically increasing number to every plan it
    ships, and the modulator ignores any PLAN frame whose version it has
    already applied.  A duplicated or retransmitted frame (at-least-once
    delivery of the head frame across a reconnect) therefore cannot
    re-run the apply path.  ``version=0`` marks an unversioned frame
    (legacy senders); those are always applied.
    """

    subscription_id: int
    plan: PartitioningPlan
    seq: int = field(default_factory=next_sequence)
    trace: Optional[Tuple[int, int]] = None
    version: int = 0


def envelope_trace(envelope: object) -> Optional[Tuple[int, int]]:
    """The trace context an envelope carries, wherever it lives.

    Continuation envelopes carry it *inside the continuation wire
    format* (it survives serialization); the other kinds carry it as
    delivery metadata on the envelope itself.
    """
    if isinstance(envelope, ContinuationEnvelope):
        return envelope.continuation.trace
    return getattr(envelope, "trace", None)


def set_envelope_trace(
    envelope: object, ctx: Optional[Tuple[int, int]]
) -> None:
    """Restamp an envelope's trace context (e.g. to parent under a ship
    span recorded mid-flight)."""
    if isinstance(envelope, ContinuationEnvelope):
        envelope.continuation.trace = ctx
    elif hasattr(envelope, "trace"):
        envelope.trace = ctx
