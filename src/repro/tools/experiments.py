"""Regenerate the paper's tables and figures from the command line.

Usage::

    python -m repro.tools.experiments table2
    python -m repro.tools.experiments table4 --quick
    python -m repro.tools.experiments all
    python -m repro.tools.experiments figure7 --quick --obs-report fig7.json

``--quick`` shrinks message counts and seed sets for a fast look; the
benchmark suite (``pytest benchmarks/ --benchmark-only``) runs the
full-size versions and asserts the paper's shapes.

``--backend {compiled,tree,codegen}`` selects the execution backend for
the adaptive (Method Partitioning) runs.  All three produce byte-identical
results; ``tree`` is the reference tree-walking interpreter, ``compiled``
(the default) is the closure-compiled fast path, ``codegen`` lowers each
handler to generated Python source once and runs the compiled module.

``--obs-report FILE`` attaches an :class:`repro.obs.Observability` to the
adaptive (Method Partitioning) runs, prints the instrumentation report
after the experiment output, and writes the raw dump as JSON to FILE
(render it again later with ``python -m repro.tools.obsreport FILE``).

``--trace-export FILE`` additionally enables span tracing (sampling rate
1.0) on the attached observability, prints the trace summary, and writes
a Chrome-trace (``chrome://tracing`` / Perfetto) ``trace_events`` JSON
file.  Inspect the span trees with ``python -m repro.tools.tracereport``
against the ``--obs-report`` dump.

A failing experiment does not abort the rest of an ``all`` run: its name
and error go to stderr, the remaining experiments still run, and the exit
status is nonzero.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import traceback

EXPERIMENTS = ("table2", "table3", "table4", "figure7", "figure8")


def run_table2(quick: bool, obs=None, backend: str = "compiled") -> str:
    from repro.apps.imagestream import (
        Table2Config,
        format_table2,
        run_table2 as run,
    )

    config = Table2Config(n_frames=100 if quick else 300, backend=backend)
    return format_table2(run(config))


def run_table3(quick: bool, obs=None, backend: str = "compiled") -> str:
    from repro.apps.sensor import format_table3, run_table3 as run

    return format_table3(
        run(n_messages=60 if quick else 200, obs=obs, backend=backend)
    )


def run_table4(quick: bool, obs=None, backend: str = "compiled") -> str:
    from repro.apps.sensor import format_table4, run_table4 as run

    seeds = (1, 2) if quick else (1, 2, 3, 4, 5)
    return format_table4(
        run(
            n_messages=60 if quick else 150,
            seeds=seeds,
            obs=obs,
            backend=backend,
        )
    )


def run_figure7(quick: bool, obs=None, backend: str = "compiled") -> str:
    from repro.apps.sensor import format_curves, run_figure7 as run
    from repro.tools.charts import render_chart

    seeds = (1,) if quick else (1, 2, 3)
    curves = run(
        n_messages=60 if quick else 150, seeds=seeds, obs=obs, backend=backend
    )
    return (
        format_curves(curves, "Consumer AProb")
        + "\n\n"
        + render_chart(curves, x_label="Consumer AProb")
    )


def run_figure8(quick: bool, obs=None, backend: str = "compiled") -> str:
    from repro.apps.sensor import format_curves, run_figure8 as run
    from repro.tools.charts import render_chart

    seeds = (1,) if quick else (1, 2, 3)
    curves = run(
        n_messages=150 if quick else 400, seeds=seeds, obs=obs, backend=backend
    )
    return (
        format_curves(curves, "Consumer PLen(s)")
        + "\n\n"
        + render_chart(curves, x_label="Consumer PLen (s)")
    )


_RUNNERS = {
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "figure7": run_figure7,
    "figure8": run_figure8,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.experiments", description=__doc__
    )
    parser.add_argument(
        "experiment", choices=EXPERIMENTS + ("all",)
    )
    parser.add_argument("--quick", action="store_true")
    parser.add_argument(
        "--backend",
        choices=("compiled", "tree", "codegen"),
        default="compiled",
        help="execution backend for the Method Partitioning version "
        "(default: compiled; 'tree' is the reference tree-walker, "
        "'codegen' lowers handlers to generated Python source)",
    )
    parser.add_argument(
        "--obs-report",
        metavar="FILE",
        default=None,
        help="collect observability from adaptive runs; print the report "
        "and write the JSON dump to FILE",
    )
    parser.add_argument(
        "--trace-export",
        metavar="FILE",
        default=None,
        help="enable span tracing on the adaptive runs and write a "
        "Chrome-trace (trace_events) JSON file to FILE",
    )
    parser.add_argument(
        "--quality-report",
        metavar="FILE",
        default=None,
        help="enable adaptation-quality accounting (counterfactual "
        "regret + cost-model drift) on the adaptive runs, print the "
        "regret table and write the quality report JSON to FILE",
    )
    parser.add_argument(
        "--expose",
        metavar="PORT",
        type=int,
        default=None,
        help="serve the collected observability on this port "
        "(OpenMetrics at /metrics; 0 binds an ephemeral port)",
    )
    parser.add_argument(
        "--expose-linger",
        metavar="SECONDS",
        type=float,
        default=0.0,
        help="keep the exposition endpoint up this long after the "
        "experiments finish (for interactive scraping)",
    )
    args = parser.parse_args(argv)

    obs = None
    if (
        args.obs_report is not None
        or args.trace_export is not None
        or args.quality_report is not None
        or args.expose is not None
    ):
        from repro.obs import Observability

        obs = Observability()
        if args.trace_export is not None:
            obs.enable_tracing(sampling_rate=1.0)
        if args.quality_report is not None:
            # A window shorter than the quick-mode runs (60 messages) so
            # at least one window closes entirely after a recompute.
            obs.enable_quality(regret_window=16)

    exposer = None
    if args.expose is not None:
        from repro.obs.exposition import start_http_exposer

        exposer = start_http_exposer(obs.to_dict, port=args.expose)
        print(f"EXPOSING {exposer.port}", flush=True)

    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    failures = []
    for name in names:
        started = time.perf_counter()
        try:
            text = _RUNNERS[name](args.quick, obs=obs, backend=args.backend)
        except Exception as exc:
            failures.append(name)
            print(
                f"experiment {name!r} failed: {type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            traceback.print_exc(file=sys.stderr)
            continue
        elapsed = time.perf_counter() - started
        print(f"=== {name} ({elapsed:.1f}s) ===")
        print(text)
        print()

    if obs is not None:
        from repro.tools.obsreport import render

        print("=== observability ===")
        print(render(obs))
        if args.obs_report is not None:
            try:
                with open(args.obs_report, "w", encoding="utf-8") as handle:
                    json.dump(obs.to_dict(), handle, indent=2)
            except OSError as exc:
                print(
                    f"cannot write obs report {args.obs_report}: {exc}",
                    file=sys.stderr,
                )
                failures.append("obs-report")
            else:
                print(f"\n(dump written to {args.obs_report})")

    if args.trace_export is not None and obs is not None:
        from repro.obs.export import chrome_trace, render_trace_summary

        tracing = obs.tracing.to_dict()
        print("=== tracing ===")
        print(render_trace_summary(tracing))
        try:
            with open(args.trace_export, "w", encoding="utf-8") as handle:
                json.dump(chrome_trace(tracing), handle, indent=2)
        except OSError as exc:
            print(
                f"cannot write trace export {args.trace_export}: {exc}",
                file=sys.stderr,
            )
            failures.append("trace-export")
        else:
            print(f"\n(chrome trace written to {args.trace_export})")

    if args.quality_report is not None and obs is not None:
        from repro.tools.obsreport import build_quality_report, render_quality

        report = build_quality_report(obs)
        print("=== adaptation quality ===")
        print(render_quality(report))
        try:
            with open(args.quality_report, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2)
        except OSError as exc:
            print(
                f"cannot write quality report {args.quality_report}: {exc}",
                file=sys.stderr,
            )
            failures.append("quality-report")
        else:
            print(f"\n(quality report written to {args.quality_report})")

    if exposer is not None:
        if args.expose_linger > 0:
            print(
                f"exposition lingering {args.expose_linger:.0f}s at "
                f"{exposer.url}",
                flush=True,
            )
            time.sleep(args.expose_linger)
        exposer.close()

    if failures:
        print(
            "failed experiments: " + ", ".join(failures), file=sys.stderr
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
