"""Regenerate the paper's tables and figures from the command line.

Usage::

    python -m repro.tools.experiments table2
    python -m repro.tools.experiments table4 --quick
    python -m repro.tools.experiments all

``--quick`` shrinks message counts and seed sets for a fast look; the
benchmark suite (``pytest benchmarks/ --benchmark-only``) runs the
full-size versions and asserts the paper's shapes.
"""

from __future__ import annotations

import argparse
import sys
import time

EXPERIMENTS = ("table2", "table3", "table4", "figure7", "figure8")


def run_table2(quick: bool) -> str:
    from repro.apps.imagestream import (
        Table2Config,
        format_table2,
        run_table2 as run,
    )

    config = Table2Config(n_frames=100 if quick else 300)
    return format_table2(run(config))


def run_table3(quick: bool) -> str:
    from repro.apps.sensor import format_table3, run_table3 as run

    return format_table3(run(n_messages=60 if quick else 200))


def run_table4(quick: bool) -> str:
    from repro.apps.sensor import format_table4, run_table4 as run

    seeds = (1, 2) if quick else (1, 2, 3, 4, 5)
    return format_table4(
        run(n_messages=60 if quick else 150, seeds=seeds)
    )


def run_figure7(quick: bool) -> str:
    from repro.apps.sensor import format_curves, run_figure7 as run
    from repro.tools.charts import render_chart

    seeds = (1,) if quick else (1, 2, 3)
    curves = run(n_messages=60 if quick else 150, seeds=seeds)
    return (
        format_curves(curves, "Consumer AProb")
        + "\n\n"
        + render_chart(curves, x_label="Consumer AProb")
    )


def run_figure8(quick: bool) -> str:
    from repro.apps.sensor import format_curves, run_figure8 as run
    from repro.tools.charts import render_chart

    seeds = (1,) if quick else (1, 2, 3)
    curves = run(n_messages=150 if quick else 400, seeds=seeds)
    return (
        format_curves(curves, "Consumer PLen(s)")
        + "\n\n"
        + render_chart(curves, x_label="Consumer PLen (s)")
    )


_RUNNERS = {
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "figure7": run_figure7,
    "figure8": run_figure8,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.experiments", description=__doc__
    )
    parser.add_argument(
        "experiment", choices=EXPERIMENTS + ("all",)
    )
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)

    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        started = time.perf_counter()
        text = _RUNNERS[name](args.quick)
        elapsed = time.perf_counter() - started
        print(f"=== {name} ({elapsed:.1f}s) ===")
        print(text)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
