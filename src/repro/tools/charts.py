"""Terminal charts for experiment curves.

A tiny dependency-free renderer used by ``repro.tools.experiments`` to
show Figures 7/8 as something a human can eyeball, mirroring the paper's
plots: x = the swept parameter, y = average processing time, one mark per
version.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: mark characters assigned to series in order
MARKS = "ox+*#@%&"


def render_chart(
    curves: Dict[str, List[Tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "ms",
) -> str:
    """Render series of (x, y) points as an ASCII scatter with a legend."""
    if not curves:
        return "(no data)"
    points = [
        (x, y) for series in curves.values() for x, y in series
    ]
    if not points:
        return "(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, mark: str) -> None:
        col = round((x - x_lo) / x_span * (width - 1))
        row = round((y - y_lo) / y_span * (height - 1))
        row = height - 1 - row  # y grows upward
        cell = grid[row][col]
        grid[row][col] = mark if cell in (" ", mark) else "?"

    legend = []
    for i, (name, series) in enumerate(curves.items()):
        mark = MARKS[i % len(MARKS)]
        legend.append(f"{mark} = {name}")
        for x, y in series:
            plot(x, y, mark)

    lines = []
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{y_hi:>8.1f} |"
        elif r == height - 1:
            label = f"{y_lo:>8.1f} |"
        else:
            label = f"{'':>8} |"
        lines.append(label + "".join(row))
    lines.append(f"{'':>8} +" + "-" * width)
    lines.append(
        f"{'':>10}{x_lo:<10g}{x_label:^{max(width - 20, 0)}}{x_hi:>10g}"
    )
    lines.append("  " + "    ".join(legend))
    lines.append(f"  ('?' marks overlapping series; y in {y_label})")
    return "\n".join(lines)
