"""Render an observability dump (registry + decision trace) as text.

Usage::

    python -m repro.tools.obsreport run.obs.json
    python -m repro.tools.obsreport run.obs.json --events 50
    python -m repro.tools.experiments figure7 --quick --obs-report fig7.json
    python -m repro.tools.obsreport fig7.json

The input is the JSON produced by
:meth:`repro.obs.Observability.to_dict` (``json.dump`` it wherever is
convenient); :func:`render` also accepts a live
:class:`~repro.obs.Observability` for in-process reporting.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Mapping, Optional

_DEFAULT_EVENT_LIMIT = 20


def _format_value(value: object) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _render_histogram(name: str, data: Mapping) -> List[str]:
    count = data.get("count", 0)
    total = data.get("total", 0.0)
    mean = total / count if count else 0.0
    lines = [
        f"  {name}: count={count} total={_format_value(total)} "
        f"mean={_format_value(mean)}"
    ]
    bounds = list(data.get("bounds", ()))
    counts = list(data.get("counts", ()))
    if count and bounds:
        from repro.obs.metrics import bucket_quantile

        lines.append(
            "    p50={p50} p95={p95} p99={p99}".format(
                p50=_format_value(bucket_quantile(bounds, counts, 0.50)),
                p95=_format_value(bucket_quantile(bounds, counts, 0.95)),
                p99=_format_value(bucket_quantile(bounds, counts, 0.99)),
            )
        )
    labels = [f"<={_format_value(b)}" for b in bounds] + ["+Inf"]
    for label, n in zip(labels, counts):
        if n:
            lines.append(f"    {label:>12}: {n}")
    return lines


def _render_event(event: Mapping) -> str:
    kind = event.get("kind", "?")
    fields = ", ".join(
        f"{key}={_format_value(value)}"
        for key, value in event.items()
        if key != "kind" and value is not None
    )
    return f"  {kind}({fields})"


def render_report(
    data: Mapping, *, event_limit: Optional[int] = _DEFAULT_EVENT_LIMIT
) -> str:
    """Text report from an ``Observability.to_dict()`` mapping."""
    lines: List[str] = []
    metrics = data.get("metrics", {})

    counters = metrics.get("counters", {})
    lines.append(f"== counters ({len(counters)}) ==")
    for name in sorted(counters):
        lines.append(f"  {name}: {_format_value(counters[name])}")

    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append(f"== gauges ({len(gauges)}) ==")
        for name in sorted(gauges):
            lines.append(f"  {name}: {_format_value(gauges[name])}")

    histograms = metrics.get("histograms", {})
    lines.append("")
    lines.append(f"== histograms ({len(histograms)}) ==")
    for name in sorted(histograms):
        lines.extend(_render_histogram(name, histograms[name]))

    trace = data.get("trace", {})
    counts = trace.get("counts", {})
    dropped = trace.get("dropped", 0)
    kept = len(trace.get("events", []))
    lines.append("")
    lines.append("== trace ==")
    for kind in sorted(counts):
        lines.append(f"  {kind}: {counts[kind]}")
    lines.append(f"  ring: {kept} kept, {dropped} dropped")

    events = trace.get("events", [])
    if event_limit is None:
        shown = events
    elif event_limit <= 0:
        shown = []
    else:
        shown = events[-event_limit:]
    lines.append("")
    lines.append(f"== events (last {len(shown)} of {len(events)} kept) ==")
    for event in shown:
        lines.append(_render_event(event))

    tracing = data.get("tracing")
    if tracing:
        from repro.obs.export import render_trace_summary

        lines.append("")
        lines.append("== tracing ==")
        for line in render_trace_summary(tracing).splitlines():
            lines.append(f"  {line}")
    return "\n".join(lines)


def render(obs, *, event_limit: Optional[int] = _DEFAULT_EVENT_LIMIT) -> str:
    """Text report straight from a live Observability instance."""
    return render_report(obs.to_dict(), event_limit=event_limit)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.obsreport", description=__doc__
    )
    parser.add_argument(
        "dump", help="JSON file produced by Observability.to_dict()"
    )
    parser.add_argument(
        "--events",
        type=int,
        default=_DEFAULT_EVENT_LIMIT,
        help="how many trailing trace events to print (0 for none)",
    )
    args = parser.parse_args(argv)
    try:
        with open(args.dump, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"obsreport: cannot read {args.dump}: {exc}", file=sys.stderr)
        return 1
    print(render_report(data, event_limit=args.events))
    return 0


if __name__ == "__main__":
    sys.exit(main())
