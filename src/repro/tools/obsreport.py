"""Render an observability dump (registry + decision trace) as text.

Usage::

    python -m repro.tools.obsreport run.obs.json
    python -m repro.tools.obsreport run.obs.json --events 50
    python -m repro.tools.experiments figure7 --quick --obs-report fig7.json
    python -m repro.tools.obsreport fig7.json

The input is the JSON produced by
:meth:`repro.obs.Observability.to_dict` (``json.dump`` it wherever is
convenient); :func:`render` also accepts a live
:class:`~repro.obs.Observability` for in-process reporting.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Mapping, Optional

_DEFAULT_EVENT_LIMIT = 20


def _format_value(value: object) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _render_histogram(name: str, data: Mapping) -> List[str]:
    count = data.get("count", 0)
    total = data.get("total", 0.0)
    mean = total / count if count else 0.0
    lines = [
        f"  {name}: count={count} total={_format_value(total)} "
        f"mean={_format_value(mean)}"
    ]
    bounds = list(data.get("bounds", ()))
    counts = list(data.get("counts", ()))
    if count and bounds:
        from repro.obs.metrics import bucket_quantile

        lines.append(
            "    p50={p50} p95={p95} p99={p99}".format(
                p50=_format_value(bucket_quantile(bounds, counts, 0.50)),
                p95=_format_value(bucket_quantile(bounds, counts, 0.95)),
                p99=_format_value(bucket_quantile(bounds, counts, 0.99)),
            )
        )
    labels = [f"<={_format_value(b)}" for b in bounds] + ["+Inf"]
    for label, n in zip(labels, counts):
        if n:
            lines.append(f"    {label:>12}: {n}")
    return lines


def _render_event(event: Mapping) -> str:
    kind = event.get("kind", "?")
    fields = ", ".join(
        f"{key}={_format_value(value)}"
        for key, value in event.items()
        if key != "kind" and value is not None
    )
    return f"  {kind}({fields})"


def _overhead_rows(data: Mapping) -> List:
    """(label, seconds) rows describing what observability itself cost.

    Prefers the ``obs.overhead.*`` gauges refreshed at dump time and
    falls back to the per-instrument dump fields for older artifacts,
    so one report answers "what did watching this run cost us?".
    """
    rows: dict = {}
    gauges = data.get("metrics", {}).get("gauges", {})
    for name, value in gauges.items():
        if name.startswith("obs.overhead."):
            rows[name[len("obs.overhead."):]] = float(value)
    tracing = data.get("tracing") or {}
    if "overhead_seconds" in tracing:
        rows.setdefault(
            "tracer_seconds", float(tracing["overhead_seconds"])
        )
    flight = data.get("flight") or {}
    if "overhead_seconds" in flight:
        rows.setdefault(
            "flight_seconds", float(flight["overhead_seconds"])
        )
    profile = data.get("profile") or {}
    if "self_seconds" in profile:
        rows.setdefault(
            "profiler_self_seconds", float(profile["self_seconds"])
        )
    return sorted(rows.items())


def render_report(
    data: Mapping, *, event_limit: Optional[int] = _DEFAULT_EVENT_LIMIT
) -> str:
    """Text report from an ``Observability.to_dict()`` mapping."""
    lines: List[str] = []
    metrics = data.get("metrics", {})

    counters = metrics.get("counters", {})
    lines.append(f"== counters ({len(counters)}) ==")
    for name in sorted(counters):
        lines.append(f"  {name}: {_format_value(counters[name])}")

    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append(f"== gauges ({len(gauges)}) ==")
        for name in sorted(gauges):
            lines.append(f"  {name}: {_format_value(gauges[name])}")

    histograms = metrics.get("histograms", {})
    lines.append("")
    lines.append(f"== histograms ({len(histograms)}) ==")
    for name in sorted(histograms):
        lines.extend(_render_histogram(name, histograms[name]))

    trace = data.get("trace", {})
    counts = trace.get("counts", {})
    dropped = trace.get("dropped", 0)
    kept = len(trace.get("events", []))
    lines.append("")
    lines.append("== trace ==")
    for kind in sorted(counts):
        lines.append(f"  {kind}: {counts[kind]}")
    lines.append(f"  ring: {kept} kept, {dropped} dropped")

    events = trace.get("events", [])
    if event_limit is None:
        shown = events
    elif event_limit <= 0:
        shown = []
    else:
        shown = events[-event_limit:]
    lines.append("")
    lines.append(f"== events (last {len(shown)} of {len(events)} kept) ==")
    for event in shown:
        lines.append(_render_event(event))

    tracing = data.get("tracing")
    if tracing:
        from repro.obs.export import render_trace_summary

        lines.append("")
        lines.append("== tracing ==")
        for line in render_trace_summary(tracing).splitlines():
            lines.append(f"  {line}")

    quality = data.get("quality")
    if quality:
        lines.append("")
        lines.append("== adaptation quality ==")
        for line in render_quality(quality).splitlines():
            lines.append(f"  {line}")

    flight = data.get("flight")
    if flight:
        events = flight.get("events", [])
        lines.append("")
        lines.append(
            f"== flight recorder ({flight.get('recorded', 0)} recorded, "
            f"{flight.get('dropped', 0)} dropped) =="
        )
        by_kind: dict = {}
        for event in events:
            by_kind[event.get("kind", "?")] = (
                by_kind.get(event.get("kind", "?"), 0) + 1
            )
        for kind in sorted(by_kind):
            lines.append(f"  {kind}: {by_kind[kind]}")
        for event in events[-10:]:
            fields = ", ".join(
                f"{k}={_format_value(v)}"
                for k, v in event.items()
                if k not in ("kind", "t", "host")
            )
            lines.append(f"  {event.get('kind', '?')}({fields})")

    profile = data.get("profile")
    if profile:
        from repro.obs.prof import component_table

        rate = (
            f"{1.0 / profile['interval']:.0f} Hz"
            if profile.get("interval")
            else "?"
        )
        lines.append("")
        lines.append(
            f"== profile ({profile.get('samples', 0)} samples @ {rate}) =="
        )
        for row in component_table(profile):
            lines.append(
                f"  {row['component']:<14} {row['samples']:>8} "
                f"{row['share']:>7.1%}"
            )
        if profile.get("truncated"):
            lines.append(
                f"  ({profile['truncated']} sample(s) in overflow bucket)"
            )

    overhead = _overhead_rows(data)
    if overhead:
        lines.append("")
        lines.append("== observability cost ==")
        for name, seconds in overhead:
            lines.append(f"  {name}: {_format_value(seconds)}s")

    fleet = data.get("fleet")
    if fleet:
        lines.append("")
        lines.append(f"== fleet health (overall: {fleet.get('overall')}) ==")
        for name, ph in sorted((fleet.get("peers") or {}).items()):
            rtt = ph.get("rtt_ewma")
            rtt_text = f"{rtt * 1e3:.1f}ms" if rtt is not None else "-"
            lines.append(
                f"  {name}: {ph.get('state')} (rtt {rtt_text}, "
                f"sheds {ph.get('sheds_total', 0)}, "
                f"drift {ph.get('drift_total', 0)}, "
                f"telemetry {ph.get('telemetry_frames', 0)}, "
                f"{len(ph.get('transitions') or [])} transition(s))"
            )
            for t in (ph.get("transitions") or [])[-5:]:
                lines.append(
                    f"    {t.get('from')} -> {t.get('to')}: "
                    f"{t.get('reason')}"
                )
    return "\n".join(lines)


def render_quality(quality: Mapping) -> str:
    """Regret table + drift summary from a quality report mapping.

    Accepts either one handler's ``AdaptationQuality.report()`` or the
    cross-run report of :func:`build_quality_report` (same key names).
    """
    lines: List[str] = []
    active = quality.get("active_pses") or []
    if active:
        lines.append(f"active PSEs: {', '.join(str(p) for p in active)}")
    transitions = quality.get("transitions") or []
    if transitions:
        lines.append(f"plan transitions: {len(transitions)}")
    regret = quality.get("regret") or {}
    windows = regret.get("windows") or quality.get("regret_windows") or []
    sampled = regret.get("sampled")
    if sampled is not None:
        lines.append(
            f"regret: {sampled} sampled of {regret.get('messages', 0)} "
            f"messages ({regret.get('unpriced', 0)} unpriced)"
        )
    if windows:
        lines.append(
            f"{'window':>7} {'msgs':>11} {'mean':>12} {'rel':>8} "
            f"{'after-plan@':>11}  per-PSE"
        )
        for window in windows[-10:]:
            span = f"{window['start_message']}-{window['end_message']}"
            per_pse = ", ".join(
                f"{pid}={_format_value(value)}"
                for pid, value in (window.get("per_pse") or {}).items()
            )
            transition = window.get("transition")
            lines.append(
                f"{window['index']:>7} {span:>11} "
                f"{_format_value(window['mean_regret']):>12} "
                f"{window['rel_mean_regret']:>8.2%} "
                f"{str(transition) if transition is not None else '-':>11}"
                f"  {per_pse}"
            )
    else:
        lines.append("no closed regret window")
    drift = quality.get("drift") or {}
    residuals = drift.get("residuals") or quality.get("drift_residuals") or []
    events = drift.get("events") or quality.get("drift_events") or []
    if residuals:
        lines.append(f"drift residuals ({len(residuals)}):")
        for row in residuals:
            flag = "  FLAGGED" if row.get("flagged") else ""
            lines.append(
                f"  {row['pse_id']:<8} {row['channel']:<8} "
                f"{row['residual']:+.3f} (n={row['count']}){flag}"
            )
    lines.append(f"drift events: {len(events)}")
    for event in events[-5:]:
        lines.append(
            f"  {event['pse_id']}/{event['channel']} residual "
            f"{event['residual']:+.3f} at msg {event['at_message']} "
            f"(predicted {_format_value(event['predicted'])}, "
            f"observed {_format_value(event['observed'])})"
        )
    return "\n".join(lines)


def build_quality_report(obs) -> dict:
    """Cross-run quality report from a live Observability.

    An experiment sweep (e.g. figure 7) builds one adaptive harness per
    configuration, each with its own
    :class:`~repro.obs.quality.AdaptationQuality`; the shared trace log
    is the record that spans all of them.  This collects every
    ``RegretWindow`` / ``DriftDetected`` / ``PlanRecomputed`` event plus
    the ``quality.*`` instruments, and the last handler's own report.
    """
    events = obs.trace.to_dicts()
    metrics = obs.metrics.to_dict()
    quality_counters = {
        name: value
        for name, value in metrics["counters"].items()
        if name.startswith("quality.")
    }
    quality_gauges = {
        name: value
        for name, value in metrics["gauges"].items()
        if name.startswith("quality.")
    }
    return {
        "schema": "mp.quality.v1",
        "config": (
            obs.quality.report()["config"]
            if obs.quality is not None
            else None
        ),
        "counters": quality_counters,
        "gauges": quality_gauges,
        "transitions": [
            {"at_message": e["at_message"], "pse_ids": list(e["pse_ids"])}
            for e in events
            if e.get("kind") == "PlanRecomputed"
        ],
        "regret_windows": [
            e for e in events if e.get("kind") == "RegretWindow"
        ],
        "drift_events": [
            e for e in events if e.get("kind") == "DriftDetected"
        ],
        "last_handler": (
            obs.quality.report() if obs.quality is not None else None
        ),
    }


def report_json(data: Mapping) -> dict:
    """Stable machine-readable summary of an observability dump.

    The schema (``mp.obsreport.v1``) is what the monitor tests and
    scripts consume: raw counters/gauges, histogram summaries with
    interpolated quantiles, trace counts, tracing totals and the quality
    report — everything derivable without re-parsing the full dump.
    """
    from repro.obs.metrics import bucket_quantile

    metrics = data.get("metrics", {})
    histograms = {}
    for name, h in sorted(metrics.get("histograms", {}).items()):
        count = int(h.get("count", 0))
        total = float(h.get("total", 0.0))
        bounds = list(h.get("bounds", ()))
        counts = list(h.get("counts", ()))
        histograms[name] = {
            "count": count,
            "total": total,
            "mean": total / count if count else 0.0,
            "p50": bucket_quantile(bounds, counts, 0.50) if bounds else 0.0,
            "p95": bucket_quantile(bounds, counts, 0.95) if bounds else 0.0,
            "p99": bucket_quantile(bounds, counts, 0.99) if bounds else 0.0,
        }
    trace = data.get("trace", {})
    tracing = data.get("tracing") or None
    return {
        "schema": "mp.obsreport.v1",
        "counters": dict(sorted(metrics.get("counters", {}).items())),
        "gauges": dict(sorted(metrics.get("gauges", {}).items())),
        "histograms": histograms,
        "trace": {
            "counts": dict(sorted(trace.get("counts", {}).items())),
            "dropped": trace.get("dropped", 0),
            "events_kept": len(trace.get("events", [])),
        },
        "tracing": (
            {
                "recorded": tracing.get("recorded", 0),
                "dropped": tracing.get("dropped", 0),
                "spans": len(tracing.get("spans", [])),
                "overhead_seconds": tracing.get("overhead_seconds", 0.0),
            }
            if tracing
            else None
        ),
        "quality": data.get("quality") or None,
        "flight": (
            {
                "recorded": data["flight"].get("recorded", 0),
                "dropped": data["flight"].get("dropped", 0),
                "events_kept": len(data["flight"].get("events", [])),
            }
            if data.get("flight")
            else None
        ),
        "fleet": data.get("fleet") or None,
        "profile": (
            {
                "samples": data["profile"].get("samples", 0),
                "interval": data["profile"].get("interval"),
                "self_seconds": data["profile"].get("self_seconds", 0.0),
                "components": dict(
                    sorted(
                        (data["profile"].get("components") or {}).items()
                    )
                ),
            }
            if data.get("profile")
            else None
        ),
        "obs_overhead": dict(_overhead_rows(data)),
    }


def render(obs, *, event_limit: Optional[int] = _DEFAULT_EVENT_LIMIT) -> str:
    """Text report straight from a live Observability instance."""
    return render_report(obs.to_dict(), event_limit=event_limit)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.obsreport", description=__doc__
    )
    parser.add_argument(
        "dump", help="JSON file produced by Observability.to_dict()"
    )
    parser.add_argument(
        "--events",
        type=int,
        default=_DEFAULT_EVENT_LIMIT,
        help="how many trailing trace events to print (0 for none)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable mp.obsreport.v1 summary instead "
        "of the text report",
    )
    args = parser.parse_args(argv)
    try:
        with open(args.dump, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"obsreport: cannot read {args.dump}: {exc}", file=sys.stderr)
        return 1
    if "metrics" not in data and "obs" in data:
        # A live result file (broker.json / receiver0.json) wraps the
        # obs dump under "obs"; the post-drain fleet snapshot rides at
        # the top level and wins over the dump-time section.
        wrapped = dict(data["obs"])
        if "fleet" in data:
            wrapped["fleet"] = data["fleet"]
        data = wrapped
    if args.json:
        json.dump(report_json(data), sys.stdout, indent=2)
        print()
    else:
        print(render_report(data, event_limit=args.events))
    return 0


if __name__ == "__main__":
    sys.exit(main())
