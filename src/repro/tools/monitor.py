"""Live TTY dashboard over one or more exposition endpoints.

Polls each source's ``/metrics.json`` (the full observability dump the
HTTP exposer serves next to ``/metrics``) and renders a refreshing
terminal view of the adaptation loop's health:

* active PSEs and recent plan transitions (quality report);
* message/byte rates — counter deltas between polls via
  :func:`repro.obs.metrics.snapshot_delta`;
* per-PSE p50/p95 latency and shipped bytes (tracer histograms);
* counterfactual regret of the running plan (last closed window, per
  PSE) and cost-model drift residuals.

Sources are URLs (scraped live) or paths to dump files (rendered
offline — rates need two polls, so file sources show totals only on the
first frame).  Usage::

    python -m repro.tools.monitor http://127.0.0.1:9464 --interval 2
    python -m repro.tools.monitor sender-dump.json receiver-dump.json --once
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.obs.export import pse_quantiles
from repro.obs.metrics import snapshot_delta

__all__ = ["fetch_dump", "render_frame", "main"]

_CLEAR = "\x1b[2J\x1b[H"


def fetch_dump(source: str, timeout: float = 2.0) -> Dict[str, object]:
    """Load one observability dump from a URL or a JSON file path."""
    if source.startswith("http://") or source.startswith("https://"):
        import urllib.request

        url = source.rstrip("/")
        if not url.endswith("/metrics.json"):
            url += "/metrics.json"
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return json.loads(response.read().decode())
    with open(source) as handle:
        data = json.load(handle)
    # Accept both a bare obs dump and a result file embedding one.
    if "metrics" not in data and "obs" in data:
        return data["obs"]
    return data


def _fmt_rate(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 1:
        return f"{value:.1f}"
    return f"{value:.3f}"


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def _section_rates(
    lines: List[str],
    prev_metrics: Optional[Dict[str, object]],
    metrics: Dict[str, object],
    seconds: float,
    top: int = 10,
) -> None:
    counters = metrics.get("counters", {})
    if prev_metrics is None or seconds <= 0:
        busiest = sorted(
            counters.items(), key=lambda kv: -float(kv[1])
        )[:top]
        if busiest:
            lines.append("  counters (totals; rates need a second poll):")
            for name, value in busiest:
                lines.append(f"    {name:<40} {_fmt_rate(float(value))}")
        return
    delta = snapshot_delta(prev_metrics, metrics)
    moving = sorted(
        (
            (name, d / seconds)
            for name, d in delta["counters"].items()
            if d > 0
        ),
        key=lambda kv: -kv[1],
    )[:top]
    if moving:
        lines.append(f"  rates over the last {seconds:.1f}s (/s):")
        for name, rate in moving:
            lines.append(f"    {name:<40} {_fmt_rate(rate)}")
    else:
        lines.append("  no counter movement since the last poll")


def _section_pse(lines: List[str], dump: Dict[str, object]) -> None:
    pse = (dump.get("tracing") or {}).get("pse") or {}
    rows = []
    for pid in sorted(pse):
        latency = pse_quantiles(pse[pid].get("latency"))
        size = pse_quantiles(pse[pid].get("bytes"))
        if latency is None and size is None:
            continue
        rows.append((pid, latency, size))
    if not rows:
        return
    lines.append("  per-PSE (latency p50/p95, bytes p50):")
    for pid, latency, size in rows:
        p50 = _fmt_seconds(latency["p50"] if latency else None)
        p95 = _fmt_seconds(latency["p95"] if latency else None)
        bytes_p50 = f"{size['p50']:.0f}B" if size else "-"
        lines.append(f"    {pid:<10} {p50:>10} {p95:>10} {bytes_p50:>10}")


def _section_quality(lines: List[str], dump: Dict[str, object]) -> None:
    quality = dump.get("quality")
    if not quality:
        return
    active = quality.get("active_pses") or []
    transitions = quality.get("transitions") or []
    lines.append(
        f"  active PSEs: {', '.join(active) if active else '(initial plan)'}"
        f"   transitions: {len(transitions)}"
    )
    regret = quality.get("regret") or {}
    windows = regret.get("windows") or []
    if windows:
        last = windows[-1]
        per_pse = ", ".join(
            f"{pid}={value:.3g}"
            for pid, value in (last.get("per_pse") or {}).items()
        )
        lines.append(
            f"  regret window #{last['index']}: mean {last['mean_regret']:.4g}"
            f" (rel {last['rel_mean_regret']:.2%}) over {last['count']} msgs"
            + (f"  [{per_pse}]" if per_pse else "")
        )
    else:
        lines.append(
            f"  regret: {regret.get('sampled', 0)} sampled, "
            f"no closed window yet"
        )
    drift = quality.get("drift") or {}
    residuals = drift.get("residuals") or []
    flagged = [r for r in residuals if r.get("flagged")]
    if residuals:
        shown = sorted(
            residuals, key=lambda r: -abs(float(r.get("residual", 0.0)))
        )[:6]
        parts = ", ".join(
            f"{r['pse_id']}/{r['channel']}={float(r['residual']):+.2f}"
            for r in shown
        )
        lines.append(
            f"  drift residuals ({len(flagged)} flagged): {parts}"
        )
    events = drift.get("events") or []
    if events:
        last = events[-1]
        lines.append(
            f"  last drift: {last['pse_id']}/{last['channel']} residual "
            f"{float(last['residual']):+.2f} at msg {last['at_message']}"
        )


def render_frame(
    sources: List[str],
    dumps: List[Optional[Dict[str, object]]],
    prev: List[Optional[Dict[str, object]]],
    seconds: float,
) -> str:
    """One dashboard frame; pure text so tests can assert on it."""
    lines: List[str] = []
    for source, dump, before in zip(sources, dumps, prev):
        lines.append(f"== {source}")
        if dump is None:
            lines.append("  (unreachable)")
            lines.append("")
            continue
        metrics = dump.get("metrics") or {}
        prev_metrics = (before or {}).get("metrics") if before else None
        _section_quality(lines, dump)
        _section_rates(lines, prev_metrics, metrics, seconds)
        _section_pse(lines, dump)
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.monitor",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "sources", nargs="+",
        help="exposition URLs (http://host:port) and/or dump files",
    )
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between polls")
    parser.add_argument("--iterations", type=int, default=0,
                        help="stop after N frames (0 = until Ctrl-C)")
    parser.add_argument("--once", action="store_true",
                        help="print a single frame and exit")
    parser.add_argument("--no-clear", action="store_true",
                        help="append frames instead of redrawing the screen")
    args = parser.parse_args(argv)
    if args.once:
        args.iterations = 1

    prev: List[Optional[Dict[str, object]]] = [None] * len(args.sources)
    last_poll: Optional[float] = None
    frames = 0
    try:
        while True:
            dumps: List[Optional[Dict[str, object]]] = []
            for source in args.sources:
                try:
                    dumps.append(fetch_dump(source))
                except Exception:
                    dumps.append(None)
            now = time.time()
            seconds = (now - last_poll) if last_poll is not None else 0.0
            frame = render_frame(args.sources, dumps, prev, seconds)
            if not args.once and not args.no_clear and sys.stdout.isatty():
                sys.stdout.write(_CLEAR)
            stamp = time.strftime("%H:%M:%S")
            print(f"-- repro monitor @ {stamp} --")
            print(frame, flush=True)
            prev = dumps
            last_poll = now
            frames += 1
            if args.iterations and frames >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
