"""Static-analysis report for a message handler.

Usage::

    python -m repro.tools.inspect --app push
    python -m repro.tools.inspect --app sensor --cost-model exectime
    python -m repro.tools.inspect --file my_setup.py

``--file`` loads a Python file that defines a ``get_setup()`` function
returning ``(handler_source, registry, serializer_registry, cost_model)``;
the presets under ``--app`` cover the paper's handlers.

The report shows: the Jimple-style listing, StopNodes with reasons,
TargetPaths, the ConvexCut PSE set, the annotated Unit Graph, the default
plans, and the PSE ordering diagnostics.
"""

from __future__ import annotations

import argparse
import runpy
import sys
from typing import Tuple

from repro.core.api import MethodPartitioner
from repro.core.costmodels import (
    CostModel,
    DataSizeCostModel,
    ExecutionTimeCostModel,
    PowerCostModel,
)
from repro.core.diagnostics import describe_plan, pse_ordering, render_partition
from repro.core.plan import (
    receiver_heavy_plan,
    sender_heavy_plan,
    static_optimal_plan,
)
from repro.ir.printer import format_function
from repro.ir.registry import FunctionRegistry
from repro.serialization import SerializerRegistry

_COST_MODELS = {
    "datasize": DataSizeCostModel,
    "exectime": ExecutionTimeCostModel,
    "power": PowerCostModel,
}


def _push_setup() -> Tuple[str, FunctionRegistry, SerializerRegistry]:
    """The paper's running example (Appendix A)."""
    from repro.ir.registry import default_registry

    class ImageData:
        def __init__(self, template=None, w=100, h=100):
            self.width = w
            self.buff = bytes(w * h)

    registry = default_registry()
    registry.register_class(ImageData)
    registry.register_function(
        "display_image", lambda img: None, receiver_only=True, pure=False
    )
    serializer_registry = SerializerRegistry()
    serializer_registry.register(ImageData, fields=("width", "buff"))
    source = (
        "def push(event):\n"
        "    if isinstance(event, ImageData):\n"
        "        rd = ImageData(event, 100, 100)\n"
        "        display_image(rd)\n"
    )
    return source, registry, serializer_registry


def _image_setup():
    from repro.apps.imagestream.app import (
        IMAGE_HANDLER_SOURCE,
        build_image_registries,
    )

    registry, serializer_registry, _sink = build_image_registries()
    # resolve the display constants as the app does
    source = IMAGE_HANDLER_SOURCE
    return source, registry, serializer_registry, {"DISPLAY_W": 160, "DISPLAY_H": 160}


def _sensor_setup():
    from repro.apps.sensor.pipeline import (
        build_sensor_registries,
        make_sensor_handler_source,
    )

    registry, serializer_registry, _sink = build_sensor_registries()
    return make_sensor_handler_source(), registry, serializer_registry, {}


def build_report(args: argparse.Namespace) -> str:
    constants = {}
    if args.file:
        namespace = runpy.run_path(args.file)
        if "get_setup" not in namespace:
            raise SystemExit(f"{args.file} does not define get_setup()")
        source, registry, serializer_registry, model = namespace["get_setup"]()
    else:
        if args.app == "push":
            source, registry, serializer_registry = _push_setup()
        elif args.app == "image":
            source, registry, serializer_registry, constants = _image_setup()
        elif args.app == "sensor":
            source, registry, serializer_registry, constants = _sensor_setup()
        else:
            raise SystemExit(f"unknown app {args.app!r}")
        model = _COST_MODELS[args.cost_model]()

    partitioner = MethodPartitioner(registry, serializer_registry)
    partitioned = partitioner.partition(source, model, constants=constants)
    cut = partitioned.cut

    sections = []
    sections.append("== Listing ==")
    sections.append(format_function(partitioned.function))

    sections.append("\n== StopNodes ==")
    for node, reason in sorted(cut.ctx.stops.reasons.items()):
        sections.append(f"  node {node}: {reason}")

    sections.append("\n== TargetPaths ==")
    for i, path in enumerate(cut.ctx.paths):
        sections.append(f"  tp{i}: {' -> '.join(map(str, path.nodes))}")

    sections.append(f"\n== ConvexCut ({model.name}) ==")
    sections.append(cut.describe())
    if cut.poisoned:
        sections.append(f"  poisoned (convexity): {sorted(cut.poisoned)}")

    sections.append("\n== Annotated Unit Graph ==")
    sections.append(render_partition(cut, static_optimal_plan(cut)))

    sections.append("\n== Default plans ==")
    for plan in (
        static_optimal_plan(cut),
        sender_heavy_plan(cut),
        receiver_heavy_plan(cut),
    ):
        sections.append(describe_plan(cut, plan))

    ordering = pse_ordering(cut)
    if ordering:
        sections.append("\n== PSE ordering (earlier fires first) ==")
        for a, b in ordering:
            sections.append(
                f"  {cut.pses[a].pse_id} Edge{a}  before  "
                f"{cut.pses[b].pse_id} Edge{b}"
            )
    return "\n".join(sections)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.inspect", description=__doc__
    )
    parser.add_argument(
        "--app",
        choices=("push", "image", "sensor"),
        default="push",
        help="built-in handler preset",
    )
    parser.add_argument(
        "--file", help="Python file defining get_setup()", default=None
    )
    parser.add_argument(
        "--cost-model",
        choices=tuple(_COST_MODELS),
        default="datasize",
    )
    args = parser.parse_args(argv)
    print(build_report(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
