"""Command-line tools.

* ``python -m repro.tools.inspect`` — static-analysis report for a handler
  (listing, StopNodes, TargetPaths, PSEs, default plans).
* ``python -m repro.tools.experiments`` — regenerate the paper's tables
  and figures from the command line.
"""
