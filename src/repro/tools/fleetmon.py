"""Fleet health dashboard over the broker's aggregated telemetry.

Where :mod:`repro.tools.monitor` watches one process's adaptation loop,
``fleetmon`` watches the *fleet*: it polls the broker's
``/metrics.json`` (whose obs dump carries the ``fleet`` section the
:class:`~repro.obs.health.HealthMonitor` publishes) and renders one row
per peer — health state, **circuit-breaker state**, heartbeat-RTT EWMA,
outbound queue depth, dropped frames with a **drop burn rate** (frames
shed per second since the previous poll), telemetry freshness, dedupe
and drift counts.  The frame header names the elected **leader** (the
receiver owning the ReconfigurationUnit, from the broker's resilience
section).  A peer shedding faster than ``--alert-drop-rate`` gets an
``ALERT`` tag, and any peer not ``healthy`` is called out in the frame
header.

A source going unreachable does not kill the dashboard: the last good
frame keeps rendering under a ``STALE`` banner while the poller retries
with exponential backoff (capped at ``--backoff-cap``), and the banner
counts the silence so a dead broker is obvious without the tool dying
mid-incident.

Sources are URLs (polled live) or paths to dump files (a broker result
JSON or a bare obs dump; burn rates need two polls, so file sources
show totals).  Usage::

    python -m repro.tools.fleetmon http://127.0.0.1:9464 --interval 1
    python -m repro.tools.fleetmon live-results/broker.json --once
    python -m repro.tools.fleetmon http://127.0.0.1:9464 --json --once
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.tools.monitor import fetch_dump

__all__ = ["fleet_view", "render_fleet_frame", "main"]

_CLEAR = "\x1b[2J\x1b[H"


def _labeled_gauge(
    metrics: Dict[str, object], base: str, peer: str
) -> Optional[float]:
    value = (metrics.get("gauges") or {}).get(f'{base}{{peer="{peer}"}}')
    return float(value) if value is not None else None


def _fmt_ms(value: Optional[float]) -> str:
    return f"{value * 1e3:.1f}ms" if value is not None else "-"


def fleet_view(
    dump: Dict[str, object],
    prev: Optional[Dict[str, object]] = None,
    seconds: float = 0.0,
    *,
    alert_drop_rate: float = 10.0,
) -> Dict[str, object]:
    """Distill one obs dump into the fleet table (pure data).

    ``prev`` is the previous poll's dump; with it and a positive
    ``seconds`` the per-peer dropped-frame delta becomes a burn rate.
    """
    fleet = dump.get("fleet") or {}
    metrics = dump.get("metrics") or {}
    resilience = dump.get("resilience") or {}
    res_peers = resilience.get("peers") or {}
    prev_metrics = (prev or {}).get("metrics") or {}
    peers = []
    for name, ph in sorted((fleet.get("peers") or {}).items()):
        dropped = _labeled_gauge(metrics, "broker.dropped_frames", name)
        if dropped is None:
            dropped = float(ph.get("sheds_total") or 0)
        burn = None
        before = _labeled_gauge(prev_metrics, "broker.dropped_frames", name)
        if before is not None and seconds > 0:
            burn = max(0.0, dropped - before) / seconds
        res = res_peers.get(name) or {}
        breaker = res.get("breaker") or {}
        peers.append({
            "peer": name,
            "state": ph.get("state"),
            "breaker": breaker.get("state"),
            "retracted": bool(
                res.get("retracted") or res.get("retracting")
            ),
            "connected": ph.get("connected"),
            "rtt_ewma": ph.get("rtt_ewma"),
            "queue": _labeled_gauge(metrics, "broker.queue_depth", name),
            "dropped": dropped,
            "drop_rate": burn,
            "alert": burn is not None and burn >= alert_drop_rate,
            "telemetry_frames": ph.get("telemetry_frames"),
            "staleness": ph.get("staleness"),
            "duplicates": ph.get("duplicates_total"),
            "drift": ph.get("drift_total"),
            "transitions": len(ph.get("transitions") or []),
        })
    return {
        "overall": fleet.get("overall", "?"),
        "leader": resilience.get("leader"),
        "retractions": resilience.get("retractions"),
        "peers": peers,
        "unhealthy": [
            p["peer"] for p in peers if p["state"] not in ("healthy", None)
        ],
        "open_breakers": [
            p["peer"]
            for p in peers
            if p["breaker"] not in ("closed", None)
        ],
        "alerts": [p["peer"] for p in peers if p["alert"]],
    }


def render_fleet_frame(
    source: str,
    view: Optional[Dict[str, object]],
    *,
    stale_seconds: Optional[float] = None,
    failures: int = 0,
) -> str:
    """One dashboard frame; pure text so tests can assert on it.

    ``stale_seconds`` marks the view as the *last good* poll of a
    currently unreachable source: the table still renders (an operator
    mid-incident wants the last known state, not a blank screen) under
    a banner counting the silence and the failed polls.
    """
    title = f"== {source}"
    if stale_seconds is not None:
        title += (
            f"   [STALE {stale_seconds:.1f}s, "
            f"{failures} failed poll(s), retrying]"
        )
    lines = [title]
    if view is None:
        lines.append("  (unreachable, no data yet — retrying)")
        return "\n".join(lines)
    header = f"  fleet: {view['overall']}"
    if view.get("leader"):
        header += f"   leader: {view['leader']}"
    if view["unhealthy"]:
        header += f"   not healthy: {', '.join(view['unhealthy'])}"
    if view.get("open_breakers"):
        header += f"   BREAKER: {', '.join(view['open_breakers'])}"
    if view["alerts"]:
        header += f"   SHED ALERT: {', '.join(view['alerts'])}"
    lines.append(header)
    if not view["peers"]:
        lines.append("  (no peers yet)")
        return "\n".join(lines)
    lines.append(
        f"  {'peer':<14} {'state':<11} {'brk':<10} {'rtt':>8} "
        f"{'queue':>6} {'dropped':>8} {'drop/s':>7} {'telem':>6} "
        f"{'stale':>7} {'dup':>5} {'drift':>5}"
    )
    for p in view["peers"]:
        state = str(p["state"] or "?")
        if p["state"] not in ("healthy", None):
            state = state.upper()
        if p["alert"]:
            state += "!"
        brk = str(p.get("breaker") or "-")
        if p.get("breaker") not in ("closed", None):
            brk = brk.upper()
        if p.get("retracted"):
            brk += "*"
        queue = f"{p['queue']:.0f}" if p["queue"] is not None else "-"
        burn = f"{p['drop_rate']:.1f}" if p["drop_rate"] is not None else "-"
        stale = (
            f"{p['staleness']:.2f}s" if p["staleness"] is not None else "-"
        )
        lines.append(
            f"  {p['peer']:<14} {state:<11} {brk:<10} "
            f"{_fmt_ms(p['rtt_ewma']):>8} "
            f"{queue:>6} {p['dropped']:>8.0f} {burn:>7} "
            f"{p['telemetry_frames'] or 0:>6} {stale:>7} "
            f"{p['duplicates'] or 0:>5} {p['drift'] or 0:>5}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.fleetmon",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "sources", nargs="+",
        help="broker exposition URLs (http://host:port) and/or dump files",
    )
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between polls")
    parser.add_argument("--iterations", type=int, default=0,
                        help="stop after N frames (0 = until Ctrl-C)")
    parser.add_argument("--once", action="store_true",
                        help="print a single frame and exit; status is 1 "
                        "when any source is unreachable or any peer is "
                        "unhealthy, breaker-open or shed-alerting")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON object per frame instead of "
                        "the TTY table")
    parser.add_argument("--alert-drop-rate", type=float, default=10.0,
                        help="frames shed per second that flags a peer")
    parser.add_argument("--backoff-cap", type=float, default=30.0,
                        help="max seconds between retries of an "
                        "unreachable source")
    parser.add_argument("--no-clear", action="store_true",
                        help="append frames instead of redrawing the screen")
    args = parser.parse_args(argv)
    if args.once:
        args.iterations = 1

    # Per-source poll state: the last good dump keeps rendering (under
    # a STALE banner) while an unreachable source is retried with
    # exponential backoff — a dead broker must not kill the dashboard.
    states: List[Dict[str, object]] = [
        {
            "last_good": None,
            "good_at": None,
            "prev": None,
            "prev_at": None,
            "failures": 0,
            "next_try": 0.0,
        }
        for _ in args.sources
    ]
    frames = 0
    try:
        while True:
            now = time.time()
            for source, st in zip(args.sources, states):
                if st["failures"] and now < st["next_try"]:
                    continue  # still backing off this source
                try:
                    dump = fetch_dump(source)
                except Exception:
                    st["failures"] = int(st["failures"]) + 1
                    st["next_try"] = now + min(
                        args.interval * (2 ** int(st["failures"])),
                        args.backoff_cap,
                    )
                    continue
                st["prev"] = st["last_good"]
                st["prev_at"] = st["good_at"]
                st["last_good"] = dump
                st["good_at"] = now
                st["failures"] = 0
                st["next_try"] = 0.0

            def view_of(st: Dict[str, object]):
                if st["last_good"] is None:
                    return None
                seconds = (
                    float(st["good_at"]) - float(st["prev_at"])
                    if st["prev_at"] is not None
                    else 0.0
                )
                return fleet_view(
                    st["last_good"],
                    st["prev"],
                    seconds,
                    alert_drop_rate=args.alert_drop_rate,
                )

            if args.json:
                frame = {
                    "at": now,
                    "sources": {
                        source: {
                            "view": view_of(st),
                            "stale_seconds": (
                                now - float(st["good_at"])
                                if st["failures"]
                                and st["good_at"] is not None
                                else None
                            ),
                            "failed_polls": st["failures"],
                        }
                        for source, st in zip(args.sources, states)
                    },
                }
                print(json.dumps(frame, default=str), flush=True)
            else:
                if (
                    not args.once
                    and not args.no_clear
                    and sys.stdout.isatty()
                ):
                    sys.stdout.write(_CLEAR)
                stamp = time.strftime("%H:%M:%S")
                print(f"-- repro fleetmon @ {stamp} --")
                for source, st in zip(args.sources, states):
                    stale = (
                        now - float(st["good_at"])
                        if st["failures"] and st["good_at"] is not None
                        else None
                    )
                    print(
                        render_fleet_frame(
                            source,
                            view_of(st),
                            stale_seconds=stale,
                            failures=int(st["failures"]),
                        ),
                        flush=True,
                    )
            frames += 1
            if args.iterations and frames >= args.iterations:
                if not args.once:
                    return 0
                # Single-shot gate: nonzero when any source is
                # unreachable or any peer needs attention, so cron and
                # CI can alert on the fleet without parsing the frame.
                bad = False
                for st in states:
                    if st["last_good"] is None or st["failures"]:
                        bad = True
                        continue
                    view = view_of(st)
                    if view is not None and (
                        view["unhealthy"]
                        or view["open_breakers"]
                        or view["alerts"]
                    ):
                        bad = True
                return 1 if bad else 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
