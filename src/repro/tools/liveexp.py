"""Two-process live network experiment orchestrator.

Launches the receiver and the sender halves of :mod:`repro.net.live` as
separate OS processes on localhost, runs the figure-7-style sensor
workload over real TCP, and collects:

* per-process JSON results (traffic counters, plan timeline, per-PSE
  latency quantiles);
* one **merged Chrome trace** — the per-process tracer dumps use
  disjoint span-id bases and a shared wall clock, so the sender's
  ``modulate``/``ship`` spans and the receiver's ``demodulate`` spans
  join into single causal trees across process boundaries;
* a pass/fail check report asserting the run exercised what it claims:
  nonzero cross-process traffic, at least one mid-stream plan shipped
  over the wire (and applied by the sender), and — when a drop is
  injected — a reconnect with deliveries resuming afterwards.

Usage::

    python -m repro.tools.liveexp --quick --outdir live-results
    python -m repro.tools.liveexp --messages 300 --drop-after 40

Exit status is nonzero when any check fails, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs.export import chrome_trace, merge_tracer_dumps

__all__ = ["run_live_experiment", "main"]

_SRC_ROOT = str(Path(__file__).resolve().parents[2])


def _child_env() -> Dict[str, str]:
    env = dict(os.environ)
    parts = [_SRC_ROOT]
    if env.get("PYTHONPATH"):
        parts.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


def _wait_for_ports(
    proc: subprocess.Popen, timeout: float, *, want_expose: bool
) -> Tuple[int, Optional[int]]:
    """Read the receiver's stdout for LISTENING (and EXPOSING) lines."""
    deadline = time.time() + timeout
    assert proc.stdout is not None
    port: Optional[int] = None
    expose: Optional[int] = None
    while time.time() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"receiver exited early with status {proc.returncode}"
            )
        line = proc.stdout.readline()
        if not line:
            time.sleep(0.02)
            continue
        text = line.strip()
        if text.startswith("LISTENING "):
            port = int(text.split()[1])
        elif text.startswith("EXPOSING "):
            expose = int(text.split()[1])
        if port is not None and (expose is not None or not want_expose):
            return port, expose
    raise RuntimeError("receiver never announced its port")


def _scrape_exposition(
    port: int, sender: subprocess.Popen, timeout: float
) -> Dict[str, object]:
    """Poll the receiver's /metrics while the stream runs.

    Keeps the last text that parsed as valid OpenMetrics; stops early
    once both a per-PSE regret sample and a drift-residual sample have
    shown up (they appear after the first mid-stream recompute).
    """
    import urllib.request

    from repro.obs.exposition import parse_openmetrics

    url = f"http://127.0.0.1:{port}/metrics"
    state: Dict[str, object] = {
        "text": None,
        "valid": False,
        "regret": False,
        "drift": False,
        "error": None,
    }
    deadline = time.time() + timeout
    sender_gone_attempts = 0
    while time.time() < deadline and sender_gone_attempts <= 2:
        if sender.poll() is not None:
            # The receiver lingers briefly after the sender exits; take
            # a couple of last-chance scrapes, then stop.
            sender_gone_attempts += 1
        try:
            with urllib.request.urlopen(url, timeout=2.0) as response:
                text = response.read().decode()
            families = parse_openmetrics(text)
        except Exception as exc:  # noqa: BLE001 - report the last failure
            state["error"] = repr(exc)
            time.sleep(0.2)
            continue
        state["text"] = text
        state["valid"] = True
        regret = families.get("quality_regret", {})
        state["regret"] = state["regret"] or any(
            "pse" in sample["labels"]
            for sample in regret.get("samples", [])
        )
        drift = families.get("quality_drift_residual", {})
        state["drift"] = state["drift"] or bool(drift.get("samples"))
        if state["regret"] and state["drift"]:
            break
        time.sleep(0.2)
    return state


def _check(
    checks: List[Tuple[str, bool, str]],
    name: str,
    passed: bool,
    detail: str,
) -> None:
    checks.append((name, passed, detail))


def _verify(
    sender: Dict[str, object],
    receiver: Dict[str, object],
    merged: Dict[str, object],
    *,
    drop_after: int,
) -> List[Tuple[str, bool, str]]:
    checks: List[Tuple[str, bool, str]] = []
    shipped = int(sender["shipped"])
    demodulated = int(receiver["demodulated"])
    _check(
        checks,
        "cross-process traffic",
        shipped > 0 and demodulated > 0,
        f"sender shipped {shipped}, receiver demodulated {demodulated}",
    )
    _check(
        checks,
        "deliveries complete",
        int(receiver["delivered"]) == demodulated,
        f"delivered {receiver['delivered']} of {demodulated} demodulated",
    )
    plan_ships = int(receiver["plan_ships"])
    plan_applied = int(sender["plan_updates_applied"])
    _check(
        checks,
        "plan shipped over TCP",
        plan_ships >= 1 and plan_applied >= 1,
        f"receiver shipped {plan_ships} plan(s), "
        f"sender applied {plan_applied}",
    )
    _check(
        checks,
        "plan actually moved",
        sender["final_plan_edges"] != sender["initial_plan_edges"],
        f"{sender['initial_plan_edges']} -> {sender['final_plan_edges']}",
    )
    _check(
        checks,
        "sender/receiver agree on final plan",
        sender["final_plan_edges"] == receiver["final_plan_edges"],
        f"sender {sender['final_plan_edges']}, "
        f"receiver {receiver['final_plan_edges']}",
    )
    if drop_after > 0:
        transport = sender["transport"]
        _check(
            checks,
            "drop injected",
            int(receiver["drops_injected"]) >= 1,
            f"{receiver['drops_injected']} drop(s)",
        )
        _check(
            checks,
            "sender reconnected",
            int(transport["reconnects"]) >= 1,
            f"{transport['reconnects']} reconnect(s), "
            f"{transport['connections']} connection(s)",
        )
        _check(
            checks,
            "deliveries resumed after drop",
            demodulated > drop_after,
            f"{demodulated} demodulated > drop point {drop_after}",
        )
    # Merged-trace smoke checks: both hosts present, and at least one
    # trace id with spans recorded by both processes (a causal chain
    # that crossed the socket).
    spans = merged.get("spans", [])
    hosts = {s.get("host") for s in spans}
    _check(
        checks,
        "merged trace has both hosts",
        "sender" in hosts and "receiver" in hosts,
        f"hosts: {sorted(h for h in hosts if h)}",
    )
    by_trace: Dict[object, set] = {}
    for span in spans:
        by_trace.setdefault(span["trace"], set()).add(span.get("host"))
    crossing = [
        t
        for t, h in by_trace.items()
        if "sender" in h and "receiver" in h
    ]
    _check(
        checks,
        "cross-process causal trees",
        len(crossing) >= 1,
        f"{len(crossing)} trace(s) span both processes",
    )
    names = {str(s["name"]) for s in spans}
    wanted = {"modulate", "ship", "demodulate"}
    _check(
        checks,
        "span kinds present",
        wanted <= names,
        f"have {sorted(names & (wanted | {'plan.ship', 'plan.apply'}))}",
    )
    return checks


def run_live_experiment(
    *,
    messages: int = 300,
    samples: int = 64,
    drop_after: int = 40,
    rate_scale: float = 4.0,
    trigger_period: int = 10,
    feedback_period: int = 8,
    interval: float = 0.005,
    timeout: float = 120.0,
    expose: bool = True,
    outdir: Path = Path("live-results"),
) -> Tuple[Dict[str, object], List[Tuple[str, bool, str]]]:
    """Run the two processes; returns (summary, checks).

    ``expose=True`` (the default) turns on the receiver's adaptation-
    quality accounting and its live ``/metrics`` endpoint, scrapes it
    mid-stream and validates the OpenMetrics text — proving the
    telemetry a long-lived deployment would be monitored through.
    """
    outdir.mkdir(parents=True, exist_ok=True)
    recv_out = outdir / "receiver.json"
    send_out = outdir / "sender.json"
    env = _child_env()

    common = [
        "--messages", str(messages),
        "--samples", str(samples),
        "--timeout", str(timeout),
    ]
    receiver_cmd = [
        sys.executable, "-m", "repro.net.live", "receiver",
        *common,
        "--rate-scale", str(rate_scale),
        "--trigger-period", str(trigger_period),
        "--drop-after", str(drop_after),
        "--out", str(recv_out),
    ]
    if expose:
        receiver_cmd += ["--quality", "--expose", "0"]
    receiver = subprocess.Popen(
        receiver_cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    exposition: Optional[Dict[str, object]] = None
    try:
        port, expose_port = _wait_for_ports(
            receiver, timeout=min(30.0, timeout), want_expose=expose
        )
        sender_cmd = [
            sys.executable, "-m", "repro.net.live", "sender",
            *common,
            "--port", str(port),
            "--feedback-period", str(feedback_period),
            "--interval", str(interval),
            "--out", str(send_out),
        ]
        sender = subprocess.Popen(sender_cmd, env=env)
        try:
            if expose_port is not None:
                exposition = _scrape_exposition(
                    expose_port, sender, timeout=timeout
                )
            sender_status = sender.wait(timeout=timeout)
        finally:
            if sender.poll() is None:
                sender.kill()
                sender.wait()
        receiver_status = receiver.wait(timeout=timeout)
    finally:
        if receiver.poll() is None:
            receiver.kill()
            receiver.wait()
    if sender_status != 0:
        raise RuntimeError(f"sender exited with status {sender_status}")
    if receiver_status != 0:
        raise RuntimeError(
            f"receiver exited with status {receiver_status}"
        )

    with open(send_out) as handle:
        sender_result = json.load(handle)
    with open(recv_out) as handle:
        receiver_result = json.load(handle)

    dumps = [
        result["obs"]["tracing"]
        for result in (sender_result, receiver_result)
        if "tracing" in result.get("obs", {})
    ]
    merged = merge_tracer_dumps(dumps)
    merged_path = outdir / "merged_trace.json"
    with open(merged_path, "w") as handle:
        json.dump(merged, handle)
    chrome_path = outdir / "merged_chrome_trace.json"
    with open(chrome_path, "w") as handle:
        json.dump(chrome_trace(merged), handle)

    checks = _verify(
        sender_result, receiver_result, merged, drop_after=drop_after
    )
    if exposition is not None:
        if exposition["text"]:
            with open(outdir / "metrics.txt", "w") as handle:
                handle.write(str(exposition["text"]))
        _check(
            checks,
            "exposition scraped & valid",
            bool(exposition["valid"]),
            "live /metrics parsed as OpenMetrics"
            if exposition["valid"]
            else f"scrape failed: {exposition['error']}",
        )
        # Fall back to rendering the receiver's final dump when the
        # mid-stream scrapes raced the series' first appearance.
        regret_seen = bool(exposition["regret"])
        drift_seen = bool(exposition["drift"])
        regret_how = drift_how = "live scrape"
        if not (regret_seen and drift_seen):
            from repro.obs.exposition import (
                parse_openmetrics,
                render_openmetrics,
            )

            families = parse_openmetrics(
                render_openmetrics(receiver_result["obs"]["metrics"])
            )
            if not regret_seen and any(
                "pse" in s["labels"]
                for s in families.get("quality_regret", {}).get(
                    "samples", []
                )
            ):
                regret_seen, regret_how = True, "final dump"
            if not drift_seen and families.get(
                "quality_drift_residual", {}
            ).get("samples"):
                drift_seen, drift_how = True, "final dump"
        _check(
            checks,
            "regret series exposed",
            regret_seen,
            f"per-PSE quality_regret present ({regret_how})"
            if regret_seen
            else "no per-PSE quality_regret sample",
        )
        _check(
            checks,
            "drift residual exposed",
            drift_seen,
            f"quality_drift_residual present ({drift_how})"
            if drift_seen
            else "no quality_drift_residual sample",
        )
    summary = {
        "messages": messages,
        "drop_after": drop_after,
        "rate_scale": rate_scale,
        "sender": {
            k: sender_result[k]
            for k in (
                "published",
                "shipped",
                "plan_updates_applied",
                "initial_plan_edges",
                "final_plan_edges",
                "transport",
            )
        },
        "receiver": {
            k: receiver_result[k]
            for k in (
                "demodulated",
                "delivered",
                "plan_ships",
                "drops_injected",
                "duplicates_skipped",
                "msgs_per_second",
                "latency_by_pse",
                "final_plan_edges",
            )
        },
        "quality": receiver_result.get("quality"),
        "checks": [
            {"name": n, "passed": p, "detail": d} for n, p, d in checks
        ],
    }
    with open(outdir / "summary.json", "w") as handle:
        json.dump(summary, handle, indent=2)
    return summary, checks


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.liveexp",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--messages", type=int, default=300)
    parser.add_argument("--samples", type=int, default=64)
    parser.add_argument("--drop-after", type=int, default=40,
                        help="0 disables the injected connection drop")
    parser.add_argument("--rate-scale", type=float, default=4.0)
    parser.add_argument("--trigger-period", type=int, default=10)
    parser.add_argument("--feedback-period", type=int, default=8)
    parser.add_argument("--interval", type=float, default=0.005)
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--outdir", type=Path,
                        default=Path("live-results"))
    parser.add_argument("--no-expose", action="store_true",
                        help="skip the live /metrics endpoint and the "
                        "quality accounting it exposes")
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    args = parser.parse_args(argv)

    if args.quick:
        args.messages = min(args.messages, 120)
        args.drop_after = min(args.drop_after, 25) if args.drop_after else 0

    summary, checks = run_live_experiment(
        messages=args.messages,
        samples=args.samples,
        drop_after=args.drop_after,
        rate_scale=args.rate_scale,
        trigger_period=args.trigger_period,
        feedback_period=args.feedback_period,
        interval=args.interval,
        timeout=args.timeout,
        expose=not args.no_expose,
        outdir=args.outdir,
    )
    sender = summary["sender"]
    receiver = summary["receiver"]
    print(
        f"sender: published {sender['published']}, "
        f"shipped {sender['shipped']}, "
        f"plans applied {sender['plan_updates_applied']}"
    )
    print(
        f"receiver: demodulated {receiver['demodulated']}, "
        f"delivered {receiver['delivered']}, "
        f"{receiver['msgs_per_second']:.1f} msg/s, "
        f"plan ships {receiver['plan_ships']}, "
        f"drops {receiver['drops_injected']}"
    )
    failed = 0
    for name, passed, detail in checks:
        mark = "ok  " if passed else "FAIL"
        print(f"  [{mark}] {name}: {detail}")
        failed += 0 if passed else 1
    print(f"artifacts in {args.outdir}/")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
