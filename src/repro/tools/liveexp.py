"""Live network experiment orchestrator (two-process and fan-out).

Launches the receiver and the sender halves of :mod:`repro.net.live` as
separate OS processes on localhost, runs the figure-7-style sensor
workload over real TCP, and collects:

* per-process JSON results (traffic counters, plan timeline, per-PSE
  latency quantiles);
* one **merged Chrome trace** — the per-process tracer dumps use
  disjoint span-id bases and a shared wall clock, so the sender's
  ``modulate``/``ship`` spans and the receiver's ``demodulate`` spans
  join into single causal trees across process boundaries;
* a pass/fail check report asserting the run exercised what it claims:
  nonzero cross-process traffic, at least one mid-stream plan shipped
  over the wire (and applied by the sender), and — when a drop is
  injected — a reconnect with deliveries resuming afterwards.

``--fanout N`` switches to the broker topology: one broker process
publishing to N receiver processes with *heterogeneous* emulated loads,
so their adaptation loops converge to different PSEs while the broker
shares each modulation up to the deepest common split.  One receiver
goes dark mid-stream (``--wedge-after``) to prove the broker's bounded
per-peer queues shed that peer's backlog without stalling the others.
The fan-out run additionally writes ``BENCH_net_fanout.json``
(aggregate delivered msg/s against N) for CI's benchmark artifacts.

Usage::

    python -m repro.tools.liveexp --quick --outdir live-results
    python -m repro.tools.liveexp --messages 300 --drop-after 40
    python -m repro.tools.liveexp --fanout 3 --quick

Exit status is nonzero when any check fails, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs.export import chrome_trace, merge_tracer_dumps
from repro.obs.flight import merge_flight_dumps
from repro.obs.prof import merge_profile_dumps, speedscope_from_dump

__all__ = ["run_live_experiment", "run_fanout_experiment", "main"]

_SRC_ROOT = str(Path(__file__).resolve().parents[2])


def _child_env() -> Dict[str, str]:
    env = dict(os.environ)
    parts = [_SRC_ROOT]
    if env.get("PYTHONPATH"):
        parts.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


def _wait_for_ports(
    proc: subprocess.Popen, timeout: float, *, want_expose: bool
) -> Tuple[int, Optional[int]]:
    """Read the receiver's stdout for LISTENING (and EXPOSING) lines."""
    deadline = time.time() + timeout
    assert proc.stdout is not None
    port: Optional[int] = None
    expose: Optional[int] = None
    while time.time() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"receiver exited early with status {proc.returncode}"
            )
        line = proc.stdout.readline()
        if not line:
            time.sleep(0.02)
            continue
        text = line.strip()
        if text.startswith("LISTENING "):
            port = int(text.split()[1])
        elif text.startswith("EXPOSING "):
            expose = int(text.split()[1])
        if port is not None and (expose is not None or not want_expose):
            return port, expose
    raise RuntimeError("receiver never announced its port")


def _scrape_exposition(
    port: int, sender: subprocess.Popen, timeout: float
) -> Dict[str, object]:
    """Poll the receiver's /metrics while the stream runs.

    Keeps the last text that parsed as valid OpenMetrics; stops early
    once both a per-PSE regret sample and a drift-residual sample have
    shown up (they appear after the first mid-stream recompute).
    """
    import urllib.request

    from repro.obs.exposition import parse_openmetrics

    url = f"http://127.0.0.1:{port}/metrics"
    state: Dict[str, object] = {
        "text": None,
        "valid": False,
        "regret": False,
        "drift": False,
        "error": None,
    }
    deadline = time.time() + timeout
    sender_gone_attempts = 0
    while time.time() < deadline and sender_gone_attempts <= 2:
        if sender.poll() is not None:
            # The receiver lingers briefly after the sender exits; take
            # a couple of last-chance scrapes, then stop.
            sender_gone_attempts += 1
        try:
            with urllib.request.urlopen(url, timeout=2.0) as response:
                text = response.read().decode()
            families = parse_openmetrics(text)
        except Exception as exc:  # noqa: BLE001 - report the last failure
            state["error"] = repr(exc)
            time.sleep(0.2)
            continue
        state["text"] = text
        state["valid"] = True
        regret = families.get("quality_regret", {})
        state["regret"] = state["regret"] or any(
            "pse" in sample["labels"]
            for sample in regret.get("samples", [])
        )
        drift = families.get("quality_drift_residual", {})
        state["drift"] = state["drift"] or bool(drift.get("samples"))
        if state["regret"] and state["drift"]:
            break
        time.sleep(0.2)
    return state


def _merge_profiles(
    results: List[Dict[str, object]], outdir: Path
) -> Optional[Dict[str, object]]:
    """Merge per-process profiler dumps into one cross-host profile.

    Writes ``merged_profile.json`` (raw dump, the input format for
    ``repro.tools.profreport``) and ``profile.speedscope.json``
    alongside the trace/flight merges.  Returns the merged dump, or
    ``None`` when no process ran with ``--profile``.
    """
    dumps = [
        result["obs"]["profile"]
        for result in results
        if "profile" in result.get("obs", {})
    ]
    if not dumps:
        return None
    merged = merge_profile_dumps(dumps)
    with open(outdir / "merged_profile.json", "w") as handle:
        json.dump(merged, handle, indent=2)
    with open(outdir / "profile.speedscope.json", "w") as handle:
        json.dump(
            speedscope_from_dump(merged, name="liveexp"), handle
        )
    return merged


def _check(
    checks: List[Tuple[str, bool, str]],
    name: str,
    passed: bool,
    detail: str,
) -> None:
    checks.append((name, passed, detail))


def _verify(
    sender: Dict[str, object],
    receiver: Dict[str, object],
    merged: Dict[str, object],
    *,
    drop_after: int,
) -> List[Tuple[str, bool, str]]:
    checks: List[Tuple[str, bool, str]] = []
    shipped = int(sender["shipped"])
    demodulated = int(receiver["demodulated"])
    _check(
        checks,
        "cross-process traffic",
        shipped > 0 and demodulated > 0,
        f"sender shipped {shipped}, receiver demodulated {demodulated}",
    )
    _check(
        checks,
        "deliveries complete",
        int(receiver["delivered"]) == demodulated,
        f"delivered {receiver['delivered']} of {demodulated} demodulated",
    )
    plan_ships = int(receiver["plan_ships"])
    plan_applied = int(sender["plan_updates_applied"])
    _check(
        checks,
        "plan shipped over TCP",
        plan_ships >= 1 and plan_applied >= 1,
        f"receiver shipped {plan_ships} plan(s), "
        f"sender applied {plan_applied}",
    )
    _check(
        checks,
        "plan actually moved",
        sender["final_plan_edges"] != sender["initial_plan_edges"],
        f"{sender['initial_plan_edges']} -> {sender['final_plan_edges']}",
    )
    _check(
        checks,
        "sender/receiver agree on final plan",
        sender["final_plan_edges"] == receiver["final_plan_edges"],
        f"sender {sender['final_plan_edges']}, "
        f"receiver {receiver['final_plan_edges']}",
    )
    if drop_after > 0:
        transport = sender["transport"]
        _check(
            checks,
            "drop injected",
            int(receiver["drops_injected"]) >= 1,
            f"{receiver['drops_injected']} drop(s)",
        )
        _check(
            checks,
            "sender reconnected",
            int(transport["reconnects"]) >= 1,
            f"{transport['reconnects']} reconnect(s), "
            f"{transport['connections']} connection(s)",
        )
        _check(
            checks,
            "deliveries resumed after drop",
            demodulated > drop_after,
            f"{demodulated} demodulated > drop point {drop_after}",
        )
    # Merged-trace smoke checks: both hosts present, and at least one
    # trace id with spans recorded by both processes (a causal chain
    # that crossed the socket).
    spans = merged.get("spans", [])
    hosts = {s.get("host") for s in spans}
    _check(
        checks,
        "merged trace has both hosts",
        "sender" in hosts and "receiver" in hosts,
        f"hosts: {sorted(h for h in hosts if h)}",
    )
    by_trace: Dict[object, set] = {}
    for span in spans:
        by_trace.setdefault(span["trace"], set()).add(span.get("host"))
    crossing = [
        t
        for t, h in by_trace.items()
        if "sender" in h and "receiver" in h
    ]
    _check(
        checks,
        "cross-process causal trees",
        len(crossing) >= 1,
        f"{len(crossing)} trace(s) span both processes",
    )
    names = {str(s["name"]) for s in spans}
    wanted = {"modulate", "ship", "demodulate"}
    _check(
        checks,
        "span kinds present",
        wanted <= names,
        f"have {sorted(names & (wanted | {'plan.ship', 'plan.apply'}))}",
    )
    transport = sender["transport"]
    _check(
        checks,
        "telemetry negotiated & pushed",
        bool(transport.get("telemetry_negotiated"))
        and int(sender.get("telemetry_seen", 0)) >= 1,
        f"negotiated {transport.get('telemetry_negotiated')}, "
        f"sender ingested {sender.get('telemetry_seen', 0)} frame(s) "
        f"of {receiver.get('telemetry_pushes', 0)} pushed",
    )
    return checks


def run_live_experiment(
    *,
    messages: int = 300,
    samples: int = 64,
    drop_after: int = 40,
    rate_scale: float = 4.0,
    trigger_period: int = 10,
    feedback_period: int = 8,
    interval: float = 0.005,
    timeout: float = 120.0,
    expose: bool = True,
    batching: bool = True,
    profile: bool = False,
    profile_interval: Optional[float] = None,
    outdir: Path = Path("live-results"),
) -> Tuple[Dict[str, object], List[Tuple[str, bool, str]]]:
    """Run the two processes; returns (summary, checks).

    ``expose=True`` (the default) turns on the receiver's adaptation-
    quality accounting and its live ``/metrics`` endpoint, scrapes it
    mid-stream and validates the OpenMetrics text — proving the
    telemetry a long-lived deployment would be monitored through.

    ``batching=False`` passes ``--no-batching`` to the sender, keeping
    the wire plain-framed — the baseline the batched benchmark sweep
    compares against.
    """
    outdir.mkdir(parents=True, exist_ok=True)
    recv_out = outdir / "receiver.json"
    send_out = outdir / "sender.json"
    env = _child_env()

    common = [
        "--messages", str(messages),
        "--samples", str(samples),
        "--timeout", str(timeout),
    ]
    if profile:
        common.append("--profile")
        if profile_interval is not None:
            common += ["--profile-interval", str(profile_interval)]
    receiver_cmd = [
        sys.executable, "-m", "repro.net.live", "receiver",
        *common,
        "--rate-scale", str(rate_scale),
        "--trigger-period", str(trigger_period),
        "--drop-after", str(drop_after),
        "--out", str(recv_out),
    ]
    if expose:
        receiver_cmd += ["--quality", "--expose", "0"]
    receiver = subprocess.Popen(
        receiver_cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    exposition: Optional[Dict[str, object]] = None
    try:
        port, expose_port = _wait_for_ports(
            receiver, timeout=min(30.0, timeout), want_expose=expose
        )
        sender_cmd = [
            sys.executable, "-m", "repro.net.live", "sender",
            *common,
            "--port", str(port),
            "--feedback-period", str(feedback_period),
            "--interval", str(interval),
            "--out", str(send_out),
        ]
        if not batching:
            sender_cmd.append("--no-batching")
        sender = subprocess.Popen(sender_cmd, env=env)
        try:
            if expose_port is not None:
                exposition = _scrape_exposition(
                    expose_port, sender, timeout=timeout
                )
            sender_status = sender.wait(timeout=timeout)
        finally:
            if sender.poll() is None:
                sender.kill()
                sender.wait()
        receiver_status = receiver.wait(timeout=timeout)
    finally:
        if receiver.poll() is None:
            receiver.kill()
            receiver.wait()
    if sender_status != 0:
        raise RuntimeError(f"sender exited with status {sender_status}")
    if receiver_status != 0:
        raise RuntimeError(
            f"receiver exited with status {receiver_status}"
        )

    with open(send_out) as handle:
        sender_result = json.load(handle)
    with open(recv_out) as handle:
        receiver_result = json.load(handle)

    dumps = [
        result["obs"]["tracing"]
        for result in (sender_result, receiver_result)
        if "tracing" in result.get("obs", {})
    ]
    merged = merge_tracer_dumps(dumps)
    merged_path = outdir / "merged_trace.json"
    with open(merged_path, "w") as handle:
        json.dump(merged, handle)
    chrome_path = outdir / "merged_chrome_trace.json"
    with open(chrome_path, "w") as handle:
        json.dump(chrome_trace(merged), handle)
    merged_flight = merge_flight_dumps([
        result.get("obs", {}).get("flight", {})
        for result in (sender_result, receiver_result)
    ])
    with open(outdir / "merged_flight.json", "w") as handle:
        json.dump(merged_flight, handle, indent=2, default=str)
    merged_profile = _merge_profiles(
        [sender_result, receiver_result], outdir
    )

    checks = _verify(
        sender_result, receiver_result, merged, drop_after=drop_after
    )
    if profile:
        hosts = (
            set(merged_profile.get("hosts", []))
            if merged_profile
            else set()
        )
        samples = (
            int(merged_profile["samples"]) if merged_profile else 0
        )
        _check(
            checks,
            "profiles captured on both hosts",
            {"sender", "receiver"} <= hosts and samples > 0,
            f"{samples} samples across hosts {sorted(hosts)}",
        )
    if exposition is not None:
        if exposition["text"]:
            with open(outdir / "metrics.txt", "w") as handle:
                handle.write(str(exposition["text"]))
        _check(
            checks,
            "exposition scraped & valid",
            bool(exposition["valid"]),
            "live /metrics parsed as OpenMetrics"
            if exposition["valid"]
            else f"scrape failed: {exposition['error']}",
        )
        # Fall back to rendering the receiver's final dump when the
        # mid-stream scrapes raced the series' first appearance.
        regret_seen = bool(exposition["regret"])
        drift_seen = bool(exposition["drift"])
        regret_how = drift_how = "live scrape"
        if not (regret_seen and drift_seen):
            from repro.obs.exposition import (
                parse_openmetrics,
                render_openmetrics,
            )

            families = parse_openmetrics(
                render_openmetrics(receiver_result["obs"]["metrics"])
            )
            if not regret_seen and any(
                "pse" in s["labels"]
                for s in families.get("quality_regret", {}).get(
                    "samples", []
                )
            ):
                regret_seen, regret_how = True, "final dump"
            if not drift_seen and families.get(
                "quality_drift_residual", {}
            ).get("samples"):
                drift_seen, drift_how = True, "final dump"
        _check(
            checks,
            "regret series exposed",
            regret_seen,
            f"per-PSE quality_regret present ({regret_how})"
            if regret_seen
            else "no per-PSE quality_regret sample",
        )
        _check(
            checks,
            "drift residual exposed",
            drift_seen,
            f"quality_drift_residual present ({drift_how})"
            if drift_seen
            else "no quality_drift_residual sample",
        )
    summary = {
        "messages": messages,
        "drop_after": drop_after,
        "rate_scale": rate_scale,
        "sender": {
            k: sender_result[k]
            for k in (
                "published",
                "shipped",
                "plan_updates_applied",
                "telemetry_seen",
                "initial_plan_edges",
                "final_plan_edges",
                "transport",
            )
        },
        "receiver": {
            k: receiver_result[k]
            for k in (
                "demodulated",
                "delivered",
                "plan_ships",
                "drops_injected",
                "duplicates_skipped",
                "telemetry_pushes",
                "msgs_per_second",
                "latency_by_pse",
                "final_plan_edges",
            )
        },
        "quality": receiver_result.get("quality"),
        "checks": [
            {"name": n, "passed": p, "detail": d} for n, p, d in checks
        ],
    }
    with open(outdir / "summary.json", "w") as handle:
        json.dump(summary, handle, indent=2)
    return summary, checks


def _wait_for_expose(proc: subprocess.Popen, timeout: float) -> int:
    """Read a process's stdout for its EXPOSING line."""
    deadline = time.time() + timeout
    assert proc.stdout is not None
    while time.time() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"process exited early with status {proc.returncode}"
            )
        line = proc.stdout.readline()
        if not line:
            time.sleep(0.02)
            continue
        text = line.strip()
        if text.startswith("EXPOSING "):
            return int(text.split()[1])
    raise RuntimeError("process never announced its metrics port")


def _scrape_fanout_metrics(
    port: int,
    broker: subprocess.Popen,
    peers: List[str],
    timeout: float,
) -> Dict[str, object]:
    """Poll the broker's /metrics for the per-peer labeled series.

    Stops early once every subscriber shows up as a ``peer=...`` label
    on the broker's queue-depth gauge — the per-peer health the monitor
    dashboard keys on.
    """
    import urllib.request

    from repro.obs.exposition import parse_openmetrics

    url = f"http://127.0.0.1:{port}/metrics"
    state: Dict[str, object] = {
        "valid": False,
        "peers_seen": [],
        "error": None,
    }
    wanted = set(peers)
    deadline = time.time() + timeout
    broker_gone_attempts = 0
    while time.time() < deadline and broker_gone_attempts <= 2:
        if broker.poll() is not None:
            broker_gone_attempts += 1
        try:
            with urllib.request.urlopen(url, timeout=2.0) as response:
                text = response.read().decode()
            families = parse_openmetrics(text)
        except Exception as exc:  # noqa: BLE001 - report the last failure
            state["error"] = repr(exc)
            time.sleep(0.2)
            continue
        state["valid"] = True
        seen = {
            sample["labels"].get("peer")
            for family in families.values()
            for sample in family.get("samples", [])
            if sample["labels"].get("peer")
        }
        state["peers_seen"] = sorted(seen & wanted)
        if wanted <= seen:
            break
        time.sleep(0.2)
    return state


def _verify_fanout(
    broker: Dict[str, object],
    receivers: List[Dict[str, object]],
    merged: Dict[str, object],
    merged_flight: Dict[str, object],
    *,
    wedge_index: int,
) -> List[Tuple[str, bool, str]]:
    checks: List[Tuple[str, bool, str]] = []
    published = int(broker["published"])
    demod = {r["name"]: int(r["demodulated"]) for r in receivers}
    _check(
        checks,
        "all subscribers got traffic",
        published > 0 and all(count > 0 for count in demod.values()),
        f"broker published {published}, demodulated {demod}",
    )
    _check(
        checks,
        "modulation shared once per message",
        int(broker["shared_runs"]) == published,
        f"{broker['shared_runs']} shared runs for {published} publishes",
    )
    finals = {
        r["name"]: tuple(tuple(e) for e in r["final_plan_edges"])
        for r in receivers
    }
    distinct = len(set(finals.values()))
    _check(
        checks,
        "per-peer plans diverged",
        distinct >= 2,
        f"{distinct} distinct final plan(s) across {len(receivers)} "
        f"receivers: {finals}",
    )
    _check(
        checks,
        "plans applied per peer at broker",
        int(broker["plan_updates_applied"]) >= 1,
        f"broker applied {broker['plan_updates_applied']} plan update(s)",
    )
    subs = {s["name"]: s for s in broker["subscribers"]}
    if wedge_index >= 0:
        wedged = receivers[wedge_index]
        wedged_sub = subs[wedged["name"]]
        _check(
            checks,
            "wedge injected",
            int(wedged["wedges_injected"]) >= 1,
            f"{wedged['name']} went dark "
            f"{wedged['wedges_injected']} time(s)",
        )
        _check(
            checks,
            "wedged peer backlog shed (drop-oldest)",
            int(wedged_sub["transport"]["dropped_frames"]) > 0,
            f"broker dropped "
            f"{wedged_sub['transport']['dropped_frames']} frame(s) "
            f"for {wedged['name']}",
        )
        for i, receiver in enumerate(receivers):
            if i == wedge_index:
                continue
            sub = subs[receiver["name"]]
            shipped = int(sub["shipped"])
            count = int(receiver["demodulated"])
            _check(
                checks,
                f"{receiver['name']} unaffected by the wedge",
                shipped > 0 and count >= 0.9 * shipped,
                f"demodulated {count} of {shipped} shipped "
                f"(0 drops: {sub['transport']['dropped_frames'] == 0})",
            )
    spans = merged.get("spans", [])
    hosts = {s.get("host") for s in spans}
    wanted_hosts = {"broker"} | {r["name"] for r in receivers}
    _check(
        checks,
        "merged trace has every host",
        wanted_hosts <= hosts,
        f"hosts: {sorted(h for h in hosts if h)}",
    )
    names = {str(s["name"]) for s in spans}
    wanted = {"modulate", "demodulate"}
    if int(broker["forks"]) > 0:
        wanted = wanted | {"fork"}
    _check(
        checks,
        "span kinds present",
        wanted <= names,
        f"have {sorted(names & (wanted | {'fork', 'ship'}))}",
    )

    # -- fleet telemetry plane ------------------------------------------
    negotiated = {
        name: bool(sub["transport"].get("telemetry_negotiated"))
        and int(sub.get("telemetry_frames", 0)) >= 1
        for name, sub in subs.items()
    }
    _check(
        checks,
        "telemetry negotiated & pushed per peer",
        all(negotiated.values()),
        "per-peer TELEMETRY frames at broker: "
        + ", ".join(
            f"{name}={subs[name].get('telemetry_frames', 0)}"
            for name in sorted(subs)
        ),
    )
    fleet_peers = broker.get("fleet", {}).get("peers", {})
    if wedge_index >= 0:
        wedged_name = receivers[wedge_index]["name"]
        ph = fleet_peers.get(wedged_name, {})
        transitions = ph.get("transitions", [])
        went_wedged = any(t.get("to") == "wedged" for t in transitions)
        recovered = any(
            t.get("from") == "wedged" and t.get("to") == "recovering"
            for t in transitions
        )
        _check(
            checks,
            "broker observed the wedge",
            went_wedged
            and recovered
            and ph.get("state") in ("recovering", "healthy"),
            f"{wedged_name} transitions "
            f"{[(t.get('from'), t.get('to')) for t in transitions]}, "
            f"final {ph.get('state')}",
        )
        live_states = {
            r["name"]: fleet_peers.get(r["name"], {}).get("state")
            for i, r in enumerate(receivers)
            if i != wedge_index
        }
        _check(
            checks,
            "live peers end healthy",
            all(state == "healthy" for state in live_states.values()),
            f"final states: {live_states}",
        )
        flight_events = merged_flight.get("events", [])
        flight_kinds = {e.get("kind") for e in flight_events}
        flight_wedged = any(
            e.get("kind") == "health.transition"
            and e.get("to") == "wedged"
            and e.get("peer") == wedged_name
            for e in flight_events
        )
        _check(
            checks,
            "flight recorder captured the wedge",
            "net.shed" in flight_kinds
            and "fault.wedge" in flight_kinds
            and flight_wedged,
            f"merged flight kinds: {sorted(k for k in flight_kinds if k)}",
        )
    return checks


def run_fanout_experiment(
    *,
    fanout: int = 3,
    messages: int = 300,
    samples: int = 64,
    trigger_period: int = 5,
    feedback_period: int = 8,
    interval: float = 0.005,
    timeout: float = 120.0,
    wedge_after: int = 20,
    wedge_seconds: float = 2.0,
    queue_limit: int = 64,
    profile: bool = False,
    profile_interval: Optional[float] = None,
    outdir: Path = Path("live-results"),
) -> Tuple[Dict[str, object], List[Tuple[str, bool, str]]]:
    """Run one broker against ``fanout`` receiver processes.

    Receiver ``i`` emulates a host ``6*i``× slower than receiver 0
    (``rate_scale``), so the per-peer adaptation loops converge to
    different PSEs.  Receiver 1 (when present) goes dark for
    ``wedge_seconds`` after its ``wedge_after``-th delivery, proving
    per-peer queue isolation.  Writes ``BENCH_net_fanout.json`` with
    the aggregate delivered msg/s.
    """
    if fanout < 2:
        raise ValueError("--fanout needs at least 2 receivers")
    outdir.mkdir(parents=True, exist_ok=True)
    env = _child_env()
    wedge_index = 1 if wedge_after > 0 else -1

    common = [
        "--messages", str(messages),
        "--samples", str(samples),
        "--timeout", str(timeout),
    ]
    if profile:
        common.append("--profile")
        if profile_interval is not None:
            common += ["--profile-interval", str(profile_interval)]
    receiver_procs: List[subprocess.Popen] = []
    receiver_outs: List[Path] = []
    broker_proc: Optional[subprocess.Popen] = None
    try:
        ports: List[int] = []
        for i in range(fanout):
            out = outdir / f"receiver{i}.json"
            receiver_outs.append(out)
            cmd = [
                sys.executable, "-m", "repro.net.live", "receiver",
                *common,
                "--name", f"receiver{i}",
                "--index", str(i),
                "--rate-scale", str(1.0 if i == 0 else 6.0 * i),
                "--trigger-period", str(trigger_period),
                "--out", str(out),
            ]
            if i == wedge_index:
                cmd += [
                    "--wedge-after", str(wedge_after),
                    "--wedge-seconds", str(wedge_seconds),
                ]
            proc = subprocess.Popen(
                cmd,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=env,
            )
            receiver_procs.append(proc)
            port, _ = _wait_for_ports(
                proc, timeout=min(30.0, timeout), want_expose=False
            )
            ports.append(port)

        broker_out = outdir / "broker.json"
        broker_cmd = [
            sys.executable, "-m", "repro.net.live", "broker",
            *common,
            "--ports", ",".join(str(p) for p in ports),
            "--feedback-period", str(feedback_period),
            "--interval", str(interval),
            "--queue-limit", str(queue_limit),
            "--expose", "0",
            "--out", str(broker_out),
        ]
        broker_proc = subprocess.Popen(
            broker_cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        expose_port = _wait_for_expose(
            broker_proc, timeout=min(30.0, timeout)
        )
        exposition = _scrape_fanout_metrics(
            expose_port,
            broker_proc,
            [f"receiver{i}" for i in range(fanout)],
            timeout=timeout,
        )
        broker_status = broker_proc.wait(timeout=timeout)
        receiver_statuses = [
            proc.wait(timeout=timeout) for proc in receiver_procs
        ]
    finally:
        for proc in [broker_proc, *receiver_procs]:
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()
    if broker_status != 0:
        raise RuntimeError(f"broker exited with status {broker_status}")
    for i, status in enumerate(receiver_statuses):
        if status != 0:
            raise RuntimeError(
                f"receiver{i} exited with status {status}"
            )

    with open(broker_out) as handle:
        broker_result = json.load(handle)
    receiver_results = []
    for out in receiver_outs:
        with open(out) as handle:
            receiver_results.append(json.load(handle))

    dumps = [
        result["obs"]["tracing"]
        for result in (broker_result, *receiver_results)
        if "tracing" in result.get("obs", {})
    ]
    merged = merge_tracer_dumps(dumps)
    with open(outdir / "merged_trace.json", "w") as handle:
        json.dump(merged, handle)
    with open(outdir / "merged_chrome_trace.json", "w") as handle:
        json.dump(chrome_trace(merged), handle)
    merged_flight = merge_flight_dumps([
        result.get("obs", {}).get("flight", {})
        for result in (broker_result, *receiver_results)
    ])
    with open(outdir / "merged_flight.json", "w") as handle:
        json.dump(merged_flight, handle, indent=2, default=str)
    merged_profile = _merge_profiles(
        [broker_result, *receiver_results], outdir
    )

    checks = _verify_fanout(
        broker_result,
        receiver_results,
        merged,
        merged_flight,
        wedge_index=wedge_index,
    )
    _check(
        checks,
        "per-peer broker metrics exposed",
        bool(exposition["valid"])
        and len(exposition["peers_seen"]) == fanout,
        f"peer labels seen: {exposition['peers_seen']}"
        if exposition["valid"]
        else f"scrape failed: {exposition['error']}",
    )
    if profile:
        hosts = (
            set(merged_profile.get("hosts", []))
            if merged_profile
            else set()
        )
        samples = (
            int(merged_profile["samples"]) if merged_profile else 0
        )
        wanted_hosts = {"broker"} | {
            f"receiver{i}" for i in range(fanout)
        }
        _check(
            checks,
            "profiles captured on every host",
            wanted_hosts <= hosts and samples > 0,
            f"{samples} samples across hosts {sorted(hosts)}",
        )

    aggregate = sum(
        float(r["msgs_per_second"]) for r in receiver_results
    )
    bench = {
        "benchmark": "net_fanout",
        "n": fanout,
        "messages": messages,
        "aggregate_msgs_per_second": aggregate,
        "broker": {
            "published": broker_result["published"],
            "shared_runs": broker_result["shared_runs"],
            "forks": broker_result["forks"],
            "elapsed_seconds": broker_result["elapsed_seconds"],
            "plan_cache": broker_result["plan_cache"],
        },
        "per_receiver": [
            {
                "name": r["name"],
                "msgs_per_second": r["msgs_per_second"],
                "demodulated": r["demodulated"],
                "duplicates_skipped": r["duplicates_skipped"],
                "final_plan_edges": r["final_plan_edges"],
            }
            for r in receiver_results
        ],
    }
    with open(outdir / "BENCH_net_fanout.json", "w") as handle:
        json.dump(bench, handle, indent=2)

    summary = {
        "fanout": fanout,
        "messages": messages,
        "wedge_index": wedge_index,
        "wedge_after": wedge_after,
        "aggregate_msgs_per_second": aggregate,
        "broker": {
            k: broker_result[k]
            for k in (
                "published",
                "shared_runs",
                "forks",
                "plan_updates_applied",
                "recalibrations",
                "telemetry_frames",
                "fleet",
                "plan_cache",
                "subscribers",
            )
        },
        "receivers": [
            {
                k: r[k]
                for k in (
                    "name",
                    "demodulated",
                    "delivered",
                    "duplicates_skipped",
                    "wedges_injected",
                    "plan_ships",
                    "telemetry_pushes",
                    "self_health",
                    "msgs_per_second",
                    "final_plan_edges",
                )
            }
            for r in receiver_results
        ],
        "checks": [
            {"name": n, "passed": p, "detail": d} for n, p, d in checks
        ],
    }
    with open(outdir / "summary.json", "w") as handle:
        json.dump(summary, handle, indent=2)
    return summary, checks


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.liveexp",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--messages", type=int, default=300)
    parser.add_argument("--samples", type=int, default=64)
    parser.add_argument("--drop-after", type=int, default=40,
                        help="0 disables the injected connection drop")
    parser.add_argument("--rate-scale", type=float, default=4.0)
    parser.add_argument("--trigger-period", type=int, default=10)
    parser.add_argument("--feedback-period", type=int, default=8)
    parser.add_argument("--interval", type=float, default=0.005)
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--outdir", type=Path,
                        default=Path("live-results"))
    parser.add_argument("--no-expose", action="store_true",
                        help="skip the live /metrics endpoint and the "
                        "quality accounting it exposes")
    parser.add_argument("--no-batching", action="store_true",
                        help="keep the sender's wire plain-framed "
                        "(baseline for the batching sweep)")
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--profile", action="store_true",
                        help="run the continuous sampling profiler in "
                        "every process and merge the dumps into "
                        "merged_profile.json + profile.speedscope.json")
    parser.add_argument("--profile-interval", type=float, default=None,
                        help="seconds between profiler samples "
                        "(default 0.01 = 100 Hz)")
    parser.add_argument("--fanout", type=int, default=0, metavar="N",
                        help="broker topology: one modulator publishing "
                        "to N heterogeneous receiver processes")
    parser.add_argument("--wedge-after", type=int, default=20,
                        help="fan-out: receiver 1 goes dark after its "
                        "Nth delivery (0 disables)")
    parser.add_argument("--wedge-seconds", type=float, default=2.0)
    parser.add_argument("--queue-limit", type=int, default=64,
                        help="fan-out: per-subscriber outbound bound")
    parser.add_argument("--chaos", action="store_true",
                        help="run the chaos suite (see "
                        "repro.tools.chaos) instead of the standard "
                        "experiment; honors --quick and --outdir")
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME",
                        help="with --chaos: run only this scenario "
                        "(repeatable)")
    args = parser.parse_args(argv)

    if args.chaos:
        from repro.tools.chaos import run_chaos

        summary, checks = run_chaos(
            outdir=args.outdir,
            quick=args.quick,
            scenarios=args.scenario,
        )
        failed = int(summary["failed"])
        print(
            f"chaos: {len(checks) - failed}/{len(checks)} checks passed, "
            f"artifacts in {args.outdir}/"
        )
        return 1 if failed else 0

    if args.quick:
        args.messages = min(args.messages, 120)
        args.drop_after = min(args.drop_after, 25) if args.drop_after else 0
        args.wedge_after = (
            min(args.wedge_after, 10) if args.wedge_after else 0
        )

    if args.fanout:
        summary, checks = run_fanout_experiment(
            fanout=args.fanout,
            messages=args.messages,
            samples=args.samples,
            trigger_period=min(args.trigger_period, 5),
            feedback_period=args.feedback_period,
            interval=args.interval,
            timeout=args.timeout,
            wedge_after=args.wedge_after,
            wedge_seconds=args.wedge_seconds,
            queue_limit=args.queue_limit,
            profile=args.profile,
            profile_interval=args.profile_interval,
            outdir=args.outdir,
        )
        broker = summary["broker"]
        print(
            f"broker: published {broker['published']}, "
            f"shared runs {broker['shared_runs']}, "
            f"forks {broker['forks']}, "
            f"plans applied {broker['plan_updates_applied']}"
        )
        for receiver in summary["receivers"]:
            print(
                f"{receiver['name']}: "
                f"demodulated {receiver['demodulated']}, "
                f"{receiver['msgs_per_second']:.1f} msg/s, "
                f"plan ships {receiver['plan_ships']}, "
                f"wedges {receiver['wedges_injected']}"
            )
        print(
            f"aggregate: "
            f"{summary['aggregate_msgs_per_second']:.1f} msg/s "
            f"across {summary['fanout']} receivers"
        )
        failed = 0
        for name, passed, detail in checks:
            mark = "ok  " if passed else "FAIL"
            print(f"  [{mark}] {name}: {detail}")
            failed += 0 if passed else 1
        print(f"artifacts in {args.outdir}/")
        return 1 if failed else 0

    summary, checks = run_live_experiment(
        messages=args.messages,
        samples=args.samples,
        drop_after=args.drop_after,
        rate_scale=args.rate_scale,
        trigger_period=args.trigger_period,
        feedback_period=args.feedback_period,
        interval=args.interval,
        timeout=args.timeout,
        expose=not args.no_expose,
        batching=not args.no_batching,
        profile=args.profile,
        profile_interval=args.profile_interval,
        outdir=args.outdir,
    )
    sender = summary["sender"]
    receiver = summary["receiver"]
    print(
        f"sender: published {sender['published']}, "
        f"shipped {sender['shipped']}, "
        f"plans applied {sender['plan_updates_applied']}"
    )
    print(
        f"receiver: demodulated {receiver['demodulated']}, "
        f"delivered {receiver['delivered']}, "
        f"{receiver['msgs_per_second']:.1f} msg/s, "
        f"plan ships {receiver['plan_ships']}, "
        f"drops {receiver['drops_injected']}"
    )
    failed = 0
    for name, passed, detail in checks:
        mark = "ok  " if passed else "FAIL"
        print(f"  [{mark}] {name}: {detail}")
        failed += 0 if passed else 1
    print(f"artifacts in {args.outdir}/")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
