"""Render a sampling-profile dump: component table, top stacks.

Usage::

    python -m repro.tools.profreport live-results/merged_profile.json
    python -m repro.tools.profreport broker.json --top 20
    python -m repro.tools.profreport run.obs.json --json
    python -m repro.tools.profreport prof.json --speedscope out.speedscope.json
    python -m repro.tools.profreport prof.json --collapsed out.collapsed.txt

The input is any of: a raw :meth:`SamplingProfiler.to_dict` dump, a
merged dump from :func:`repro.obs.prof.merge_profile_dumps`, an
``Observability.to_dict()`` dump (profile under ``"profile"``), or a
live result file (obs dump under ``"obs"``).  When the input carries a
metric registry too, the exact ``net.publish.phase_seconds`` phase
timers are rendered next to the sampled attribution so the two can be
cross-checked.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Mapping, Optional

from repro.obs.prof import (
    collapsed_from_dump,
    component_table,
    speedscope_from_dump,
)

_DEFAULT_TOP = 10

_PHASE_METRIC = "net.publish.phase_seconds"


def extract_profile(data: Mapping) -> Optional[Mapping]:
    """Find the profile dump inside whatever file shape was given."""
    if "stacks" in data or "components" in data:
        return data
    if "profile" in data:
        return data["profile"]
    obs = data.get("obs")
    if isinstance(obs, Mapping) and "profile" in obs:
        return obs["profile"]
    return None


def extract_metrics(data: Mapping) -> Optional[Mapping]:
    if "metrics" in data:
        return data["metrics"]
    obs = data.get("obs")
    if isinstance(obs, Mapping) and "metrics" in obs:
        return obs["metrics"]
    return None


def phase_table(metrics: Mapping) -> List[dict]:
    """Exact publish-path phase timings from the metric registry."""
    from repro.obs.exposition import _split_labels

    rows = []
    for name, h in sorted((metrics.get("histograms") or {}).items()):
        base, labels = _split_labels(name)
        if base != _PHASE_METRIC:
            continue
        phase = labels.split('="')[-1].rstrip('"') if labels else "?"
        count = int(h.get("count", 0))
        total = float(h.get("total", 0.0))
        rows.append({
            "phase": phase,
            "count": count,
            "total_seconds": total,
            "mean_seconds": total / count if count else 0.0,
        })
    rows.sort(key=lambda row: -row["total_seconds"])
    return rows


def report_json(
    data: Mapping, *, top: int = _DEFAULT_TOP
) -> Optional[dict]:
    """Machine-readable summary (schema ``mp.profreport.v1``)."""
    profile = extract_profile(data)
    if profile is None:
        return None
    components = component_table(profile)
    attributed = sum(
        row["share"] for row in components if row["component"] != "other"
    )
    metrics = extract_metrics(data)
    return {
        "schema": "mp.profreport.v1",
        "host": profile.get("host"),
        "hosts": profile.get("hosts"),
        "interval": profile.get("interval"),
        "samples": profile.get("samples", 0),
        "passes": profile.get("passes", 0),
        "self_seconds": profile.get("self_seconds", 0.0),
        "wall_seconds": profile.get("wall_seconds"),
        "truncated": profile.get("truncated", 0),
        "components": components,
        "attributed_share": attributed,
        "stacks_kept": len(profile.get("stacks", [])),
        "top_stacks": list(profile.get("stacks", []))[:top],
        "phases": phase_table(metrics) if metrics is not None else None,
    }


def render_report(data: Mapping, *, top: int = _DEFAULT_TOP) -> str:
    """Text report from any supported dump shape."""
    profile = extract_profile(data)
    if profile is None:
        return "(no profile section in this dump)"
    lines: List[str] = []
    samples = profile.get("samples", 0)
    interval = profile.get("interval")
    hosts = profile.get("hosts") or (
        [profile["host"]] if profile.get("host") else []
    )
    header = f"== profile: {samples} samples"
    if interval:
        header += f" @ {1.0 / interval:.0f} Hz"
    if hosts:
        header += f" across {', '.join(str(h) for h in hosts)}"
    lines.append(header + " ==")
    self_seconds = float(profile.get("self_seconds", 0.0))
    wall = profile.get("wall_seconds")
    overhead = f"  sampler self-time: {self_seconds:.6f}s"
    if wall:
        overhead += f" ({self_seconds / float(wall):.3%} of profiled wall)"
    lines.append(overhead)
    if profile.get("truncated"):
        lines.append(
            f"  {profile['truncated']} sample(s) in the overflow bucket "
            "(max_stacks reached)"
        )
    lines.append("")
    lines.append("== components ==")
    for row in component_table(profile):
        bar = "#" * int(round(row["share"] * 40))
        lines.append(
            f"  {row['component']:<14} {row['samples']:>8} "
            f"{row['share']:>8.1%}  {bar}"
        )
    metrics = extract_metrics(data)
    phases = phase_table(metrics) if metrics is not None else []
    if phases:
        lines.append("")
        lines.append("== exact phase timers (net.publish.phase_seconds) ==")
        for row in phases:
            lines.append(
                f"  {row['phase']:<14} n={row['count']:<8} "
                f"total={row['total_seconds']:.6f}s "
                f"mean={row['mean_seconds'] * 1e6:.1f}us"
            )
    stacks = list(profile.get("stacks", []))[:top]
    if stacks:
        lines.append("")
        lines.append(f"== top {len(stacks)} stacks ==")
        for stack in stacks:
            lines.append(
                f"  {stack['count']:>8}  [{stack.get('component', '?')}]"
            )
            for frame in stack["frames"][-8:]:
                lines.append(f"            {frame}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.profreport", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "dump",
        help="profile dump, obs dump, merged profile, or live result JSON",
    )
    parser.add_argument(
        "--top", type=int, default=_DEFAULT_TOP,
        help="how many stacks to show (default %(default)s)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable mp.profreport.v1 summary",
    )
    parser.add_argument(
        "--speedscope", metavar="PATH",
        help="also write a speedscope JSON profile to PATH",
    )
    parser.add_argument(
        "--collapsed", metavar="PATH",
        help="also write collapsed-stack text (flamegraph input) to PATH",
    )
    args = parser.parse_args(argv)
    try:
        with open(args.dump, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"profreport: cannot read {args.dump}: {exc}", file=sys.stderr)
        return 1
    profile = extract_profile(data)
    if profile is None:
        print(
            f"profreport: no profile section in {args.dump} "
            "(was the run profiled? liveexp needs --profile)",
            file=sys.stderr,
        )
        return 1
    if args.speedscope:
        with open(args.speedscope, "w", encoding="utf-8") as handle:
            json.dump(speedscope_from_dump(profile), handle, indent=2)
            handle.write("\n")
    if args.collapsed:
        with open(args.collapsed, "w", encoding="utf-8") as handle:
            handle.write(collapsed_from_dump(profile))
    if args.json:
        json.dump(report_json(data, top=args.top), sys.stdout, indent=2)
        print()
    else:
        print(render_report(data, top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
