"""Chaos suite: scripted faults gated on resilience invariants.

Each scenario injects one failure mode into a live topology (real OS
processes over localhost TCP, or a deterministic in-process script) and
asserts the resilience control plane's contract held:

* ``plan_storm`` — duplicated and reordered PLAN frames against a
  sender, including frames arriving *while the split is retracted*:
  exactly one apply per fresh version, duplicates ignored, deferred
  plans applied newest-first on re-split, absorbed continuations all
  complete locally (conservation holds with the breaker open).
* ``partition`` — the receiver stops its listener mid-stream without a
  Bye (a TCP partition, not a crash).  The sender's health monitor
  must wedge the silent peer, trip the breaker, retract the split and
  absorb the stream locally; on recovery the breaker must walk
  open → half-open → closed and re-split — with **zero message loss**
  (per-source dedupe high-water marks make redelivery effectively-once).
* ``kill_mid_apply`` — the receiver is SIGKILLed right after shipping a
  plan, so the sender takes the plan apply from a peer that no longer
  exists.  The sender must apply the plan, trip the breaker when the
  silence registers, retract, and finish the stream locally, exiting 0.
* ``leader_kill`` — three receivers share one broker and run the bully
  election; the highest-ranked member is SIGKILLed mid-stream.  The
  survivors must elect the next-highest rank within the timeout window
  while the broker retracts the dead peer's split and keeps the healthy
  peers streaming.

Every scenario folds its processes' flight-recorder dumps into one
merged, time-ordered ``merged_flight.json`` and appends to
``chaos_summary.json``; the exit status is nonzero when any invariant
check fails, so CI gates on the suite directly::

    python -m repro.tools.chaos --quick --outdir chaos-results
    python -m repro.tools.liveexp --chaos --quick
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.flight import merge_flight_dumps

__all__ = ["run_chaos", "main", "SCENARIOS"]

Check = Tuple[str, bool, str]


def _check(
    checks: List[Check], name: str, passed: bool, detail: str
) -> None:
    checks.append((name, bool(passed), detail))


def _flight_of(result: Optional[dict]) -> dict:
    if not result:
        return {}
    return result.get("obs", {}).get("flight", {}) or {}


def _load_json(path: Path) -> Optional[dict]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def _transition_path(breaker: dict, *steps: str) -> bool:
    """Whether the breaker's transition log contains ``steps`` in order."""
    log = [t.get("to") for t in breaker.get("transitions", [])]
    i = 0
    for want in steps:
        try:
            i = log.index(want, i) + 1
        except ValueError:
            return False
    return True


# -- in-process scenario ------------------------------------------------------


def _scenario_plan_storm(
    outdir: Path, quick: bool
) -> Tuple[dict, List[Check], List[dict]]:
    """Duplicated / reordered / mid-retraction PLAN frames, scripted.

    No sockets: PLAN frames are fed straight into the sender's inbound
    path, which is exactly where wire frames land — so every ordering
    (duplicate, stale, deferred, superseded) is exercised
    deterministically instead of hoping the network misbehaves.
    """
    from repro.apps.sensor.data import make_reading
    from repro.apps.sensor.pipeline import build_partitioned_process
    from repro.core.plan import receiver_heavy_plan, sender_heavy_plan
    from repro.jecho.events import PlanEnvelope
    from repro.net.endpoint import NetSenderEndpoint
    from repro.net.framing import NetEnvelopeCodec
    from repro.net.resilience import BreakerConfig, CircuitBreaker
    from repro.net.tcp import TcpTransport
    from repro.obs import Observability

    obs = Observability()
    obs.enable_flight(host="plan-storm")
    partitioned, _sink = build_partitioned_process(n_stages=8)
    plan_recv = receiver_heavy_plan(partitioned.cut)
    plan_none = sender_heavy_plan(partitioned.cut)
    transport = TcpTransport(
        NetEnvelopeCodec(partitioned.serializer_registry),
        backoff_base=0.05,
        backoff_cap=0.2,
    ).start()
    # A peer nobody listens on: connects fail and retry in the
    # background, which is irrelevant — the scenario drives the inbound
    # path directly and publishes only while the breaker is open.
    peer = transport.peer("127.0.0.1", 1)
    checks: List[Check] = []
    try:
        sender = NetSenderEndpoint(
            partitioned,
            transport,
            peer,
            plan=plan_recv,
            rate_override=1e-7,
            obs=obs,
        )
        # A scripted clock makes the probe schedule deterministic: the
        # breaker stays firmly open through the absorb phase (no wall
        # time passes) and is walked to half-open by advancing the
        # clock past the backoff by hand.
        fake_now = [0.0]
        sender.breaker = CircuitBreaker(
            peer.name,
            BreakerConfig(success_threshold=1),
            clock=lambda: fake_now[0],
            on_transition=sender._on_breaker_transition,
        )

        def plan_frame(version: int, plan) -> PlanEnvelope:
            return PlanEnvelope(
                subscription_id=1, plan=plan, version=version
            )

        # Fresh version applies once; its duplicate and a stale
        # reordered predecessor are both ignored.
        sender._on_inbound(plan_frame(2, plan_none), peer)
        sender._on_inbound(plan_frame(2, plan_none), peer)
        sender._on_inbound(plan_frame(1, plan_recv), peer)
        _check(
            checks,
            "duplicate and stale plans ignored",
            sender.plan_updates_applied == 1
            and sender.plan_duplicates_ignored == 2,
            f"applied {sender.plan_updates_applied}, "
            f"ignored {sender.plan_duplicates_ignored}",
        )

        # Scripted trip: retraction swaps to the sender-heavy plan and
        # every publish completes locally (the absorb path).
        with sender.lock:
            sender.breaker.trip("chaos: scripted trip")
        _check(
            checks,
            "trip retracts the split",
            sender.retracted and sender.retractions == 1,
            f"retracted={sender.retracted} after trip",
        )
        for i in range(10):
            sender.publish(make_reading(i, 16))
        _check(
            checks,
            "open breaker absorbs the stream locally",
            sender.absorbed == 10
            and sender.published
            == sender.shipped + sender.completed_locally,
            f"absorbed {sender.absorbed}, published {sender.published}, "
            f"shipped {sender.shipped}, "
            f"local {sender.completed_locally}",
        )

        # Plans arriving mid-retraction are parked, newest version wins;
        # a reordered older frame cannot displace a parked newer one.
        sender._on_inbound(plan_frame(3, plan_recv), peer)
        sender._on_inbound(plan_frame(4, plan_none), peer)
        sender._on_inbound(plan_frame(3, plan_recv), peer)
        _check(
            checks,
            "plans deferred while retracted, newest wins",
            sender.plans_deferred == 3
            and sender.pending_plan is not None
            and sender.pending_plan.version == 4,
            f"deferred {sender.plans_deferred}, pending version "
            f"{sender.pending_plan.version if sender.pending_plan else None}",
        )

        # Walk the breaker closed by hand (probe + success) and confirm
        # the re-split applied the deferred version, not the saved one.
        fake_now[0] += 60.0
        with sender.lock:
            assert sender.breaker.allow()
            sender.breaker.record_success()
        _check(
            checks,
            "re-split applies the deferred plan",
            not sender.retracted
            and sender.plan_version_applied == 4
            and sender.resplits == 1,
            f"version {sender.plan_version_applied}, "
            f"resplits {sender.resplits}",
        )
        _check(
            checks,
            "breaker walked open -> half-open -> closed",
            _transition_path(
                sender.breaker.to_dict(), "open", "half_open", "closed"
            ),
            str(
                [
                    t["to"]
                    for t in sender.breaker.to_dict()["transitions"]
                ]
            ),
        )
        summary = {
            "resilience": sender.resilience_dump(),
            "plan_updates_applied": sender.plan_updates_applied,
            "plan_duplicates_ignored": sender.plan_duplicates_ignored,
            "published": sender.published,
        }
    finally:
        transport.close()
    return summary, checks, [obs.flight.to_dict()]


# -- subprocess scenarios -----------------------------------------------------


def _spawn(cmd: List[str], env: Dict[str, str]) -> subprocess.Popen:
    return subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def _receiver_cmd(
    out: Path,
    *,
    name: str = "receiver",
    index: int = 0,
    messages: int,
    timeout: float,
    extra: Optional[List[str]] = None,
) -> List[str]:
    return [
        sys.executable, "-m", "repro.net.live", "receiver",
        "--messages", str(messages),
        "--samples", "32",
        "--timeout", str(timeout),
        "--idle-timeout", str(timeout),
        "--name", name,
        "--index", str(index),
        "--telemetry-interval", "0.1",
        "--out", str(out),
        *(extra or []),
    ]


def _scenario_partition(
    outdir: Path, quick: bool
) -> Tuple[dict, List[Check], List[dict]]:
    """TCP partition: the receiver goes silent without a Bye, then returns."""
    from repro.tools.liveexp import _child_env, _wait_for_ports

    messages = 350 if quick else 500
    timeout = 30.0
    env = _child_env()
    recv_out = outdir / "receiver.json"
    send_out = outdir / "sender.json"
    checks: List[Check] = []
    receiver = _spawn(
        _receiver_cmd(
            recv_out,
            messages=messages,
            timeout=timeout,
            extra=[
                "--rate-scale", "2.0",
                "--trigger-period", "1000000",
                "--wedge-after", "25",
                "--wedge-seconds", "1.0",
            ],
        ),
        env,
    )
    sender = None
    try:
        port, _ = _wait_for_ports(receiver, timeout=20.0, want_expose=False)
        sender = _spawn(
            [
                sys.executable, "-m", "repro.net.live", "sender",
                "--port", str(port),
                "--messages", str(messages),
                "--samples", "32",
                "--interval", "0.01",
                "--heartbeat", "0.2",
                "--timeout", str(timeout),
                "--stale-degraded", "0.3",
                "--stale-wedged", "0.6",
                "--out", str(send_out),
            ],
            env,
        )
        sender_status = sender.wait(timeout=timeout + 30)
        receiver_status = receiver.wait(timeout=timeout + 30)
    finally:
        for proc in (sender, receiver):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()

    send_res = _load_json(send_out)
    recv_res = _load_json(recv_out)
    _check(
        checks,
        "both processes exited clean",
        sender_status == 0 and receiver_status == 0
        and send_res is not None and recv_res is not None,
        f"sender={sender_status} receiver={receiver_status}",
    )
    if send_res is None or recv_res is None:
        return {"error": "missing results"}, checks, []

    res = send_res["resilience"]
    breaker = res["breaker"]
    _check(
        checks,
        "partition tripped the breaker and retracted the split",
        breaker["trips"] >= 1 and res["retractions"] >= 1
        and res["absorbed"] > 0,
        f"trips {breaker['trips']}, retractions {res['retractions']}, "
        f"absorbed {res['absorbed']}",
    )
    _check(
        checks,
        "breaker walked open -> half-open -> closed",
        _transition_path(breaker, "open", "half_open", "closed")
        and breaker["state"] == "closed",
        f"state {breaker['state']}, "
        f"path {[t.get('to') for t in breaker.get('transitions', [])]}",
    )
    _check(
        checks,
        "recovery re-split the plan",
        res["resplits"] >= 1 and not res["retracted"],
        f"resplits {res['resplits']}, retracted {res['retracted']}",
    )
    shipped = int(send_res["shipped"])
    local = int(send_res["completed_locally"])
    published = int(send_res["published"])
    demod = int(recv_res["demodulated"])
    dropped = int(send_res["transport"]["dropped_frames"])
    _check(
        checks,
        "zero message loss across the partition",
        published == shipped + local
        and demod == shipped
        and dropped == 0,
        f"published {published} = shipped {shipped} + local {local}; "
        f"demodulated {demod} (dupes skipped "
        f"{recv_res['duplicates_skipped']}), dropped {dropped}",
    )
    flights = [_flight_of(send_res), _flight_of(recv_res)]
    summary = {
        "sender": {
            "published": published,
            "shipped": shipped,
            "completed_locally": local,
            "resilience": res,
        },
        "receiver": {
            "demodulated": demod,
            "duplicates_skipped": recv_res["duplicates_skipped"],
            "wedges_injected": recv_res["wedges_injected"],
        },
    }
    return summary, checks, flights


def _scenario_kill_mid_apply(
    outdir: Path, quick: bool
) -> Tuple[dict, List[Check], List[dict]]:
    """SIGKILL the receiver right after it ships a plan."""
    from repro.tools.liveexp import _child_env, _wait_for_ports

    messages = 250 if quick else 400
    timeout = 8.0
    env = _child_env()
    recv_out = outdir / "receiver.json"
    send_out = outdir / "sender.json"
    checks: List[Check] = []
    receiver = _spawn(
        _receiver_cmd(
            recv_out,
            messages=messages,
            timeout=timeout,
            extra=[
                "--rate-scale", "8.0",
                "--trigger-period", "3",
                "--kill-after-plan-ships", "1",
            ],
        ),
        env,
    )
    sender = None
    try:
        port, _ = _wait_for_ports(receiver, timeout=20.0, want_expose=False)
        sender = _spawn(
            [
                sys.executable, "-m", "repro.net.live", "sender",
                "--port", str(port),
                "--messages", str(messages),
                "--samples", "32",
                "--interval", "0.01",
                "--heartbeat", "0.2",
                "--timeout", str(timeout),
                "--stale-degraded", "0.3",
                "--stale-wedged", "0.6",
                "--out", str(send_out),
            ],
            env,
        )
        sender_status = sender.wait(timeout=timeout + 30)
        receiver_status = receiver.wait(timeout=timeout + 30)
    finally:
        for proc in (sender, receiver):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()

    send_res = _load_json(send_out)
    _check(
        checks,
        "receiver died by SIGKILL as scripted",
        receiver_status == -signal.SIGKILL,
        f"receiver exit {receiver_status}",
    )
    _check(
        checks,
        "sender survived the kill and exited clean",
        sender_status == 0 and send_res is not None,
        f"sender exit {sender_status}",
    )
    if send_res is None:
        return {"error": "missing sender result"}, checks, []
    res = send_res["resilience"]
    breaker = res["breaker"]
    _check(
        checks,
        "the dying receiver's plan was applied before the silence",
        int(send_res["plan_updates_applied"]) >= 1,
        f"applied {send_res['plan_updates_applied']}",
    )
    _check(
        checks,
        "breaker tripped and stayed open on the vanished peer",
        breaker["trips"] >= 1 and breaker["state"] == "open"
        and res["retracted"],
        f"trips {breaker['trips']}, state {breaker['state']}",
    )
    published = int(send_res["published"])
    shipped = int(send_res["shipped"])
    local = int(send_res["completed_locally"])
    _check(
        checks,
        "stream completed locally after the kill, nothing lost",
        published == messages and published == shipped + local
        and res["absorbed"] > 0,
        f"published {published} = shipped {shipped} + local {local}, "
        f"absorbed {res['absorbed']}",
    )
    summary = {
        "receiver_exit": receiver_status,
        "sender": {
            "published": published,
            "shipped": shipped,
            "completed_locally": local,
            "plan_updates_applied": send_res["plan_updates_applied"],
            "resilience": res,
        },
    }
    return summary, checks, [_flight_of(send_res)]


def _scenario_leader_kill(
    outdir: Path, quick: bool
) -> Tuple[dict, List[Check], List[dict]]:
    """Kill the elected leader out of three broker-relayed receivers."""
    from repro.tools.liveexp import _child_env, _wait_for_ports

    messages = 450 if quick else 650
    timeout = 10.0
    env = _child_env()
    checks: List[Check] = []
    fanout = 3
    kill_index = 2  # highest priority => the bootstrap leader
    receivers: List[subprocess.Popen] = []
    outs: List[Path] = []
    broker = None
    try:
        ports: List[int] = []
        for i in range(fanout):
            out = outdir / f"receiver{i}.json"
            outs.append(out)
            proc = _spawn(
                _receiver_cmd(
                    out,
                    name=f"receiver{i}",
                    index=i,
                    messages=messages,
                    timeout=timeout,
                    extra=[
                        "--rate-scale", str(1.0 + i),
                        "--trigger-period", "1000000",
                        "--election-priority", str(i + 1),
                    ],
                ),
                env,
            )
            receivers.append(proc)
            port, _ = _wait_for_ports(
                proc, timeout=20.0, want_expose=False
            )
            ports.append(port)
        broker_out = outdir / "broker.json"
        broker = _spawn(
            [
                sys.executable, "-m", "repro.net.live", "broker",
                "--ports", ",".join(str(p) for p in ports),
                "--messages", str(messages),
                "--samples", "32",
                "--interval", "0.01",
                "--heartbeat", "0.2",
                "--timeout", str(timeout),
                "--queue-limit", "256",
                "--stale-degraded", "0.3",
                "--stale-wedged", "0.6",
                "--out", str(broker_out),
            ],
            env,
        )
        # Let the bootstrap election settle, then decapitate.
        time.sleep(1.5)
        receivers[kill_index].send_signal(signal.SIGKILL)
        broker_status = broker.wait(timeout=timeout + 40)
        statuses = [
            proc.wait(timeout=timeout + 40) for proc in receivers
        ]
    finally:
        for proc in [broker, *receivers]:
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()

    broker_res = _load_json(broker_out)
    survivor_res = [
        _load_json(outs[i]) for i in range(fanout) if i != kill_index
    ]
    _check(
        checks,
        "leader died by SIGKILL, broker and survivors exited clean",
        statuses[kill_index] == -signal.SIGKILL
        and broker_status == 0
        and all(
            statuses[i] == 0 for i in range(fanout) if i != kill_index
        )
        and broker_res is not None
        and all(r is not None for r in survivor_res),
        f"broker={broker_status} receivers={statuses}",
    )
    if broker_res is None or any(r is None for r in survivor_res):
        return {"error": "missing results"}, checks, []

    leaders = [r["name"] for r in survivor_res if r.get("leader")]
    _check(
        checks,
        "survivors re-elected exactly one leader: the next rank",
        leaders == ["receiver1"],
        f"leaders among survivors: {leaders}",
    )
    broker_leader = str(broker_res.get("leader") or "")
    _check(
        checks,
        "broker observed the new coordinator",
        broker_leader.startswith("receiver1#"),
        f"broker leader: {broker_leader!r}",
    )
    subs = {
        s["name"]: s for s in broker_res["subscribers"]
    }
    dead = subs.get(f"receiver{kill_index}", {})
    dead_breaker = dead.get("breaker") or {}
    _check(
        checks,
        "dead peer's breaker opened and its split retracted",
        dead_breaker.get("state") == "open"
        and dead.get("retracted"),
        f"state {dead_breaker.get('state')}, "
        f"retracted {dead.get('retracted')}",
    )
    floor = messages // 2
    healthy_ok = all(
        int(r["demodulated"]) > floor for r in survivor_res
    )
    _check(
        checks,
        "healthy peers kept streaming while one breaker was open",
        healthy_ok,
        ", ".join(
            f"{r['name']}: {r['demodulated']}/{messages}"
            for r in survivor_res
        ),
    )
    flights = [_flight_of(broker_res)] + [
        _flight_of(r) for r in survivor_res
    ]
    summary = {
        "killed": f"receiver{kill_index}",
        "broker_leader": broker_leader,
        "survivor_leaders": leaders,
        "broker": {
            "published": broker_res.get("published"),
            "retractions": broker_res.get("retractions"),
            "elections_relayed": broker_res.get("elections_relayed"),
        },
        "survivors": [
            {
                "name": r["name"],
                "demodulated": r["demodulated"],
                "leader": r["leader"],
                "election_frames": r["election_frames"],
            }
            for r in survivor_res
        ],
    }
    return summary, checks, flights


SCENARIOS: Dict[
    str, Callable[[Path, bool], Tuple[dict, List[Check], List[dict]]]
] = {
    "plan_storm": _scenario_plan_storm,
    "partition": _scenario_partition,
    "kill_mid_apply": _scenario_kill_mid_apply,
    "leader_kill": _scenario_leader_kill,
}


def run_chaos(
    *,
    outdir: Path,
    quick: bool = False,
    scenarios: Optional[List[str]] = None,
) -> Tuple[dict, List[Check]]:
    """Run the suite; returns (summary, flat check list)."""
    outdir.mkdir(parents=True, exist_ok=True)
    names = scenarios or list(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenario(s): {unknown}")
    all_checks: List[Check] = []
    all_flights: List[dict] = []
    per_scenario: Dict[str, dict] = {}
    for name in names:
        scenario_dir = outdir / name
        scenario_dir.mkdir(parents=True, exist_ok=True)
        started = time.time()
        print(f"== chaos: {name}", flush=True)
        try:
            summary, checks, flights = SCENARIOS[name](
                scenario_dir, quick
            )
        except Exception as exc:  # noqa: BLE001 - a scenario crashing IS a failure
            summary, checks, flights = (
                {"error": repr(exc)},
                [(f"{name} ran to completion", False, repr(exc))],
                [],
            )
        elapsed = time.time() - started
        for check_name, passed, detail in checks:
            mark = "ok  " if passed else "FAIL"
            print(f"  [{mark}] {check_name}: {detail}", flush=True)
            all_checks.append((f"{name}: {check_name}", passed, detail))
        all_flights.extend(flights)
        per_scenario[name] = {
            "elapsed_seconds": elapsed,
            "summary": summary,
            "checks": [
                {"name": n, "passed": p, "detail": d}
                for n, p, d in checks
            ],
        }
    merged = merge_flight_dumps(all_flights)
    with open(outdir / "merged_flight.json", "w") as handle:
        json.dump(merged, handle, indent=2, default=str)
    summary = {
        "quick": quick,
        "scenarios": per_scenario,
        "failed": sum(1 for _, passed, _ in all_checks if not passed),
        "flight_events_merged": len(merged["events"]),
    }
    with open(outdir / "chaos_summary.json", "w") as handle:
        json.dump(summary, handle, indent=2, default=str)
    return summary, all_checks


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.chaos",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--outdir", type=Path,
                        default=Path("chaos-results"))
    parser.add_argument("--quick", action="store_true",
                        help="smaller streams for CI smoke runs")
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME", choices=sorted(SCENARIOS),
                        help="run only this scenario (repeatable); "
                        f"known: {', '.join(sorted(SCENARIOS))}")
    args = parser.parse_args(argv)
    summary, checks = run_chaos(
        outdir=args.outdir, quick=args.quick, scenarios=args.scenario
    )
    failed = summary["failed"]
    print(
        f"chaos: {len(checks) - failed}/{len(checks)} checks passed, "
        f"{summary['flight_events_merged']} flight events merged, "
        f"artifacts in {args.outdir}/"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
