"""Render span traces from an observability dump as text.

Usage::

    python -m repro.tools.experiments figure7 --quick \\
        --obs-report fig7.json --trace-export fig7.trace.json
    python -m repro.tools.tracereport fig7.json
    python -m repro.tools.tracereport fig7.json --traces 5
    python -m repro.tools.tracereport fig7.json --chrome out.trace.json
    python -m repro.tools.tracereport fig7.json --explain

The input is the JSON produced by
:meth:`repro.obs.Observability.to_dict` with tracing enabled (the file
``--obs-report`` writes); a bare :meth:`repro.obs.tracing.Tracer.to_dict`
dump also works for the span views.  The default view prints the trace
summary followed by each trace rendered as an indented span tree —
``modulate → ship → demodulate`` chains read top-to-bottom, control-plane
traces (``trigger → plan.recompute → plan.ship → plan.apply``) likewise.

``--chrome FILE`` re-exports the spans as Chrome-trace / Perfetto
``trace_events`` JSON.  ``--explain`` joins the decision trace's
``PlanRecomputed`` events with their per-candidate-PSE cost breakdown:
for every recomputation it shows which trigger fired (and why), the
chosen split, and the full cost table with the profile observations that
priced each candidate edge.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Mapping, Optional

_DEFAULT_TRACE_LIMIT = 10


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, (list, tuple)):
        return "(" + ",".join(_fmt(v) for v in value) + ")"
    return str(value)


def _fmt_attrs(attrs: Optional[Mapping[str, object]]) -> str:
    if not attrs:
        return ""
    return " " + " ".join(f"{k}={_fmt(v)}" for k, v in sorted(attrs.items()))


def _render_span_line(span: Mapping, depth: int) -> str:
    start = float(span["start"])
    end = span.get("end")
    window = (
        f"{start:.6f}–{float(end):.6f} ({(float(end) - start) * 1e3:.3f}ms)"
        if end is not None
        else f"{start:.6f}– (open)"
    )
    host = span.get("host")
    where = f" [{host}]" if host else ""
    return "{indent}{name}{where} {window}{attrs}".format(
        indent="  " * depth,
        name=span["name"],
        where=where,
        window=window,
        attrs=_fmt_attrs(span.get("attrs")),
    )


def render_trace_trees(
    tracing: Mapping[str, object], *, limit: Optional[int] = None
) -> str:
    """Indented span trees, one per trace id, ordered by first span start.

    Spans are nested under their parents; a span whose parent fell out of
    the ring (or was never recorded) becomes a root of its trace's tree,
    so partially-dropped traces still render.
    """
    spans = list(tracing.get("spans", []))
    by_trace: Dict[object, List[Mapping]] = {}
    for span in spans:
        by_trace.setdefault(span["trace"], []).append(span)

    lines: List[str] = []
    ordered = sorted(
        by_trace.items(), key=lambda kv: min(float(s["start"]) for s in kv[1])
    )
    shown = ordered if limit is None else ordered[:limit]
    for trace_id, members in shown:
        members.sort(key=lambda s: (float(s["start"]), s["span"]))
        ids = {s["span"] for s in members}
        children: Dict[object, List[Mapping]] = {}
        roots: List[Mapping] = []
        for span in members:
            parent = span.get("parent")
            if parent is not None and parent in ids:
                children.setdefault(parent, []).append(span)
            else:
                roots.append(span)
        lines.append(f"trace {trace_id} ({len(members)} spans)")

        def _walk(span: Mapping, depth: int) -> None:
            lines.append(_render_span_line(span, depth))
            for child in children.get(span["span"], ()):
                _walk(child, depth + 1)

        for root in roots:
            _walk(root, 1)
    if limit is not None and len(ordered) > limit:
        lines.append(f"... ({len(ordered) - limit} more traces not shown)")
    return "\n".join(lines)


def _render_breakdown_row(row: Mapping) -> List[str]:
    mark = "<- chosen" if row.get("chosen") else ""
    lines = [
        "    {pse} edge={edge} cost={cost} [{source}] {mark}".format(
            pse=row.get("pse_id", "?"),
            edge=_fmt(tuple(row.get("edge", ()))),
            cost=_fmt(row.get("cost", float("nan"))),
            source=row.get("source", "?"),
            mark=mark,
        ).rstrip()
    ]
    profile = row.get("profile")
    if profile:
        keys = (
            "data_size",
            "t_mod",
            "t_demod",
            "work_before",
            "work_after",
            "path_probability",
            "observed_executions",
        )
        parts = [
            f"{key}={_fmt(profile[key])}"
            for key in keys
            if profile.get(key) is not None
        ]
        if parts:
            lines.append("      profile: " + " ".join(parts))
    return lines


def render_explain(data: Mapping[str, object]) -> str:
    """Join ``PlanRecomputed`` events with their cost breakdowns.

    Walks the decision trace in order, pairing each recomputation with
    the nearest preceding ``TriggerFired`` event, and prints the
    per-candidate cost table that drove the min-cut choice.
    """
    events = data.get("trace", {}).get("events", [])
    lines: List[str] = []
    last_trigger: Optional[Mapping] = None
    n = 0
    for event in events:
        kind = event.get("kind")
        if kind == "TriggerFired":
            last_trigger = event
            continue
        if kind != "PlanRecomputed":
            continue
        n += 1
        lines.append(
            "plan recomputation @ message {at} (cut value {value})".format(
                at=event.get("at_message", "?"),
                value=_fmt(event.get("cut_value", float("nan"))),
            )
        )
        if last_trigger is not None:
            reason = last_trigger.get("reason")
            lines.append(
                "  trigger: {name}{reason}".format(
                    name=last_trigger.get("trigger", "?"),
                    reason=f" reason={_fmt_attrs(reason).strip()}"
                    if reason
                    else "",
                )
            )
        chosen = event.get("pse_ids") or ()
        lines.append(
            "  chosen PSEs: " + (", ".join(chosen) if chosen else "(none)")
        )
        breakdown = event.get("breakdown")
        if breakdown:
            lines.append("  candidate costs:")
            for row in breakdown:
                lines.extend(_render_breakdown_row(row))
        else:
            lines.append("  (no cost breakdown recorded)")
        lines.append("")
    if not n:
        return "no PlanRecomputed events in the decision trace"
    return "\n".join(lines).rstrip()


def report_json(data: Mapping[str, object]) -> dict:
    """Stable machine-readable trace summary (``mp.tracereport.v1``).

    Per-trace span counts and durations plus the joined recomputation
    decisions (trigger, chosen PSEs, candidate cost table) — the pieces
    scripts grep out of the text views, without the formatting.
    """
    tracing = data.get("tracing") if "tracing" in data else data
    spans = list(tracing.get("spans", [])) if isinstance(tracing, dict) else []
    by_trace: Dict[object, List[Mapping]] = {}
    for span in spans:
        by_trace.setdefault(span["trace"], []).append(span)
    traces = []
    for trace_id, members in sorted(
        by_trace.items(), key=lambda kv: min(float(s["start"]) for s in kv[1])
    ):
        starts = [float(s["start"]) for s in members]
        ends = [float(s["end"]) for s in members if s.get("end") is not None]
        names = sorted({s["name"] for s in members})
        traces.append(
            {
                "trace": trace_id,
                "spans": len(members),
                "open_spans": len(members) - len(ends),
                "names": names,
                "start": min(starts),
                "duration_seconds": (
                    max(ends) - min(starts) if ends else None
                ),
                "hosts": sorted(
                    {s["host"] for s in members if s.get("host")}
                ),
            }
        )
    events = data.get("trace", {}).get("events", [])
    decisions = []
    last_trigger: Optional[Mapping] = None
    for event in events:
        kind = event.get("kind")
        if kind == "TriggerFired":
            last_trigger = event
        elif kind == "PlanRecomputed":
            decisions.append(
                {
                    "at_message": event.get("at_message"),
                    "cut_value": event.get("cut_value"),
                    "pse_ids": list(event.get("pse_ids") or ()),
                    "trigger": (
                        {
                            "name": last_trigger.get("trigger"),
                            "reason": last_trigger.get("reason"),
                        }
                        if last_trigger is not None
                        else None
                    ),
                    "breakdown": list(event.get("breakdown") or ()),
                }
            )
    summary = {}
    if isinstance(tracing, dict):
        summary = {
            "recorded": tracing.get("recorded", 0),
            "dropped": tracing.get("dropped", 0),
            "overhead_seconds": tracing.get("overhead_seconds", 0.0),
        }
    return {
        "schema": "mp.tracereport.v1",
        "summary": summary,
        "traces": traces,
        "decisions": decisions,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.tracereport", description=__doc__
    )
    parser.add_argument(
        "dump",
        help="JSON file from Observability.to_dict() with tracing enabled",
    )
    parser.add_argument(
        "--traces",
        type=int,
        default=_DEFAULT_TRACE_LIMIT,
        help="how many trace trees to print (0 for none)",
    )
    parser.add_argument(
        "--chrome",
        metavar="FILE",
        default=None,
        help="also write the spans as Chrome-trace (trace_events) JSON",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the PlanRecomputed cost breakdowns instead of trees",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable mp.tracereport.v1 summary "
        "instead of the text views",
    )
    args = parser.parse_args(argv)
    try:
        with open(args.dump, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"tracereport: cannot read {args.dump}: {exc}", file=sys.stderr)
        return 1

    # Accept both a full Observability dump and a bare tracer dump.
    tracing = data.get("tracing") if "tracing" in data else data
    if not isinstance(tracing, dict) or "spans" not in tracing:
        print(
            f"tracereport: {args.dump} has no tracing section "
            "(was tracing enabled?)",
            file=sys.stderr,
        )
        return 1

    if args.json:
        json.dump(report_json(data), sys.stdout, indent=2)
        print()
    elif args.explain:
        print(render_explain(data))
    else:
        from repro.obs.export import render_trace_summary

        print(render_trace_summary(tracing))
        if args.traces != 0:
            trees = render_trace_trees(
                tracing, limit=None if args.traces < 0 else args.traces
            )
            if trees:
                print()
                print(trees)

    if args.chrome is not None:
        from repro.obs.export import chrome_trace

        try:
            with open(args.chrome, "w", encoding="utf-8") as handle:
                json.dump(chrome_trace(tracing), handle, indent=2)
        except OSError as exc:
            print(
                f"tracereport: cannot write {args.chrome}: {exc}",
                file=sys.stderr,
            )
            return 1
        print(f"(chrome trace written to {args.chrome})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
